//! True multi-threaded core execution with bit-identical determinism.
//!
//! [`ParallelEmulator`] runs every [`EmulatorCore`] on its own OS thread —
//! the execution model of the paper's testbed, where each core node is a
//! separate machine — while producing **bit-identical** results to the
//! cooperative single-thread [`MultiCoreEmulator`]: the same deliveries in
//! the same order at the same virtual times, the same per-core counters,
//! the same RNG streams.
//!
//! # Architecture
//!
//! * **One thread per core.** Each worker owns its `EmulatorCore` outright;
//!   no emulation state is shared between threads. The route table, the
//!   pipe ownership directory and the hardware profile are immutable and
//!   shared through `Arc`s.
//! * **Bounded SPSC rings for tunnels.** A descriptor whose next pipe lives
//!   on a peer core crosses through a [`mn_util::spsc`] ring dedicated to
//!   that (source, target) core pair — the explicit-queue, lock-free
//!   communication pattern of application-defined dataplanes. Rings are
//!   pre-sized; the steady state allocates nothing on the tunnel path
//!   (overflow spills to a worker-local buffer rather than blocking, which
//!   would risk a producer/consumer cycle deadlocking).
//! * **Epoch markers as the time barrier.** The sequential scheduler
//!   advances all cores in rounds: deliver due tunnels, tick every core,
//!   exchange freshly produced tunnels, repeat while any tunnel is due.
//!   The parallel backend reproduces those rounds as *epochs*: after
//!   ticking, each worker pushes an epoch marker down every outgoing ring,
//!   and no worker starts the next epoch before it has collected every
//!   peer's marker for the current one. Virtual clocks therefore never
//!   drift farther apart than one tunnel exchange — the paper's bound on
//!   core cooperation — and each worker files its incoming tunnels in a
//!   deterministic (epoch, source-core, FIFO) order, which is exactly the
//!   `(time, seq)` order the sequential scheduler's global timer wheel
//!   pins.
//! * **Determinism of delivery streams.** Workers stream their deliveries
//!   per epoch to the coordinator, which concatenates them epoch-major,
//!   core-major — the same order `MultiCoreEmulator::advance_into` appends
//!   them.
//!
//! Thread placement: if the binding carries affinity hints
//! (`BindingParams::with_affinity_base`), each worker thread's name records
//! the suggested host CPU (`mn-core-1@cpu5`). The hints are advisory —
//! `std` offers no portable pinning — but they give operators and
//! profilers the intended layout.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use mn_assign::{Binding, CoreId, PipeOwnershipDirectory};
use mn_distill::{DistilledTopology, PipeAttrs, PipeId};
use mn_packet::{Packet, VnId};
use mn_pipe::CbrConfig;
use mn_routing::{RouteTable, RouteUpdate, RoutingMatrix};
use mn_topology::NodeId;
use mn_util::spsc::{self, Consumer, Producer};
use mn_util::{CodecError, DataRate, SimDuration, SimTime, SpinBarrier, SpinWait, TimerWheel};

use crate::chaos::ChaosPlan;
use crate::core::{CoreStats, EmulatorCore, IngressOutcome, TickOutput};
use crate::descriptor::{Delivery, Descriptor};
use crate::error::{EmuError, FailureCause};
use crate::fluid::FluidState;
use crate::hardware::HardwareProfile;
use crate::multicore::{MultiCoreEmulator, SubmitOutcome};
use crate::snapshot::EmulatorSnapshot;

/// Tunnel descriptors buffered per core pair before the producer spills.
const TUNNEL_RING_CAPACITY: usize = 1024;
/// Deliveries and control responses buffered per worker.
const RESPONSE_RING_CAPACITY: usize = 1024;
/// Coordinator commands buffered per worker.
const COMMAND_RING_CAPACITY: usize = 256;
/// Ingress commands a batched submit keeps in flight per core before
/// draining replies; must stay below both ring capacities so neither side
/// of a pipelined batch can block on a full ring.
const MAX_OUTSTANDING_INGRESS: usize = 128;
/// Idle polls of the command ring before a worker parks its thread.
const IDLE_SPINS_BEFORE_PARK: u32 = 256;

/// Coordinator → worker commands. Delivered in FIFO order per worker, so
/// ingress/advance interleaving matches the sequential call order.
enum Command {
    /// A packet admitted at this core's NIC (the ipfw intercept path).
    Ingress {
        now: SimTime,
        descriptor: Descriptor,
    },
    /// Run scheduler epochs at `now` until no tunnel remains due.
    Advance { now: SimTime },
    /// Install the next route-table generation (explicit routing change).
    /// The table is copy-on-write sharded: every worker receives the same
    /// `Arc`, and row shards a change did not touch are the allocations
    /// the worker was already reading.
    SetRoutes(Arc<RouteTable>),
    /// Update one locally installed pipe's parameters.
    UpdatePipe { pipe: PipeId, attrs: PipeAttrs },
    /// Install/replace/remove the CBR injector on one local pipe.
    SetCbr {
        pipe: PipeId,
        config: Option<CbrConfig>,
        from: SimTime,
    },
    /// Apply a new per-pipe fluid demand from the coordinator's fair-share
    /// solve, effective at `at`. Fire-and-forget, like `SetRoutes`: the
    /// coordinator solved deterministically, so there is nothing to report.
    SetFluidDemand {
        pipe: PipeId,
        rate: DataRate,
        at: SimTime,
    },
    /// Report counters and the earliest due work without running anything.
    Query,
    /// Hand back a copy of the core plus the worker-local arrival backlog,
    /// for a coordinator-assembled checkpoint. Read-only: nothing ticks.
    Snapshot,
    /// Install a chaos fault plan (test-only fault injection; see
    /// [`crate::chaos`]).
    SetChaos(ChaosPlan),
    /// Stop: hand the core back and exit the thread.
    Finish,
}

/// Worker → coordinator responses.
enum Response {
    /// Outcome of an [`Command::Ingress`], with refreshed cached state.
    Ingress {
        outcome: IngressOutcome,
        stats: CoreStats,
        next_wakeup: Option<SimTime>,
    },
    /// One packet that exited the emulated network this epoch.
    Delivery(Delivery),
    /// This worker finished an epoch; `more` is the (globally agreed)
    /// decision whether another epoch follows within the same advance.
    EpochEnd { more: bool },
    /// The advance completed; cached state refresh.
    AdvanceDone {
        stats: CoreStats,
        next_wakeup: Option<SimTime>,
    },
    /// Outcome of an [`Command::UpdatePipe`].
    PipeUpdated(bool),
    /// Reply to [`Command::Query`].
    Queried {
        stats: CoreStats,
        next_wakeup: Option<SimTime>,
    },
    /// Reply to [`Command::Snapshot`]: a clone of the core and the
    /// worker-local tunnel arrival backlog in `(time, seq)` wheel order.
    Snapshot {
        core: Box<EmulatorCore>,
        arrivals: Vec<(SimTime, Descriptor)>,
    },
    /// Reply to [`Command::Finish`].
    Core(Box<EmulatorCore>),
}

/// Messages on the core-to-core tunnel rings.
enum TunnelMsg {
    /// A tunnelled descriptor arriving on the target core at `arrival`.
    Descriptor {
        arrival: SimTime,
        descriptor: Descriptor,
    },
    /// End of the sender's epoch: everything the sender tunnels in `epoch`
    /// precedes this marker in the ring. `produced_due` reports whether any
    /// of it is due at the current advance time (the sequential loop's
    /// continue condition).
    Epoch { epoch: u64, produced_due: bool },
}

/// One core's execution thread.
struct Worker {
    me: usize,
    core_count: usize,
    core: EmulatorCore,
    pod: Arc<PipeOwnershipDirectory>,
    profile: HardwareProfile,
    commands: Consumer<Command>,
    responses: Producer<Response>,
    /// Outgoing tunnel rings, indexed by target core (`None` at `me`).
    tunnel_out: Vec<Option<Producer<TunnelMsg>>>,
    /// Incoming tunnel rings, indexed by source core (`None` at `me`).
    tunnel_in: Vec<Option<Consumer<TunnelMsg>>>,
    /// Messages popped from an incoming ring ahead of their turn (the
    /// collect loop drains peer rings opportunistically to keep producers
    /// unblocked); FIFO per source.
    staged: Vec<VecDeque<TunnelMsg>>,
    /// Producer-side overflow per target, flushed in FIFO order whenever the
    /// ring has room. Keeps phase B non-blocking, which is what rules out
    /// producer/consumer deadlock cycles.
    spill: Vec<VecDeque<TunnelMsg>>,
    /// Tunnelled descriptors filed by arrival time. Local insertion order is
    /// (epoch, source core, ring FIFO) — identical to the global push order
    /// of the sequential backend's shared wheel restricted to this core, so
    /// `(time, seq)` pops match bit for bit.
    arrivals: TimerWheel<Descriptor>,
    /// Global epoch counter; every worker holds the same value at every
    /// point of the protocol.
    epoch: u64,
    tick_buf: TickOutput,
    /// Coordinator-raised kill switch. Once set (a peer died or stalled),
    /// every blocking wait in this worker gives up instead of spinning on a
    /// peer that will never answer, and the worker returns to its command
    /// loop so shutdown still completes.
    abort: Arc<AtomicBool>,
    /// Liveness counter the coordinator's stall watchdog reads: bumped on
    /// every command popped and every epoch entered.
    heartbeat: Arc<AtomicU64>,
    /// Armed fault points (inert by default; see [`crate::chaos`]).
    chaos: ChaosPlan,
}

impl Worker {
    fn run(mut self, start: Arc<SpinBarrier>) {
        start.wait();
        let mut idle_spins = 0u32;
        loop {
            let Some(command) = self.commands.try_pop() else {
                idle_spins += 1;
                if idle_spins < IDLE_SPINS_BEFORE_PARK {
                    std::thread::yield_now();
                } else {
                    // The coordinator unparks after every command push, so
                    // parking cannot lose a wakeup (a pre-park unpark leaves
                    // a token).
                    std::thread::park();
                    idle_spins = 0;
                }
                continue;
            };
            idle_spins = 0;
            self.heartbeat.fetch_add(1, Ordering::Relaxed);
            if !matches!(command, Command::SetChaos(_)) {
                self.chaos.check_command();
            }
            match command {
                Command::Ingress { now, descriptor } => {
                    let outcome = self.core.ingress(now, descriptor);
                    let response = Response::Ingress {
                        outcome,
                        stats: *self.core.stats(),
                        next_wakeup: self.next_wakeup(),
                    };
                    self.push_response(response);
                }
                Command::Advance { now } => self.advance(now),
                Command::SetRoutes(routes) => self.core.set_route_table(routes),
                Command::UpdatePipe { pipe, attrs } => {
                    let updated = self.core.update_pipe_attrs(pipe, attrs);
                    self.push_response(Response::PipeUpdated(updated));
                }
                Command::SetCbr { pipe, config, from } => {
                    let updated = self.core.set_pipe_cbr(pipe, config, from);
                    self.push_response(Response::PipeUpdated(updated));
                }
                Command::SetFluidDemand { pipe, rate, at } => {
                    let _ = self.core.set_pipe_fluid_demand(pipe, rate, at);
                }
                Command::Query => {
                    let response = Response::Queried {
                        stats: *self.core.stats(),
                        next_wakeup: self.next_wakeup(),
                    };
                    self.push_response(response);
                }
                Command::Snapshot => {
                    let arrivals = self
                        .arrivals
                        .entries_in_order()
                        .into_iter()
                        .map(|(time, descriptor)| (time, descriptor.clone()))
                        .collect();
                    let response = Response::Snapshot {
                        core: Box::new(self.core.clone()),
                        arrivals,
                    };
                    self.push_response(response);
                }
                Command::SetChaos(plan) => self.chaos = plan,
                Command::Finish => break,
            }
        }
        // Hand the core (accuracy log, pipe counters) back to the
        // coordinator. `Worker` has no `Drop`, so fields move out freely.
        let Worker {
            core,
            mut responses,
            ..
        } = self;
        let mut wait = SpinWait::new();
        let mut message = Response::Core(Box::new(core));
        while let Err(back) = responses.try_push(message) {
            message = back;
            wait.spin();
        }
    }

    /// Mirrors `MultiCoreEmulator::advance_into` for this core: epochs of
    /// (accept due tunnels → tick → exchange), repeated while any core
    /// produced a tunnel that is already due.
    fn advance(&mut self, now: SimTime) {
        loop {
            self.epoch += 1;
            self.heartbeat.fetch_add(1, Ordering::Relaxed);
            self.chaos.check_epoch(self.epoch);
            // Deliver tunnel descriptors that have arrived.
            while let Some((_, descriptor)) = self.arrivals.pop_due(now) {
                let _ = self.core.accept_tunnel(now, descriptor);
            }
            // One scheduler pass through the reusable buffer.
            let mut tick_buf = std::mem::take(&mut self.tick_buf);
            self.core.tick_into(now, &mut tick_buf);
            let mut produced_due = false;
            for (pipe, descriptor, at) in tick_buf.tunnels.drain(..) {
                let owner = self
                    .pod
                    .get_owner(pipe)
                    .expect("route references a pipe covered by the POD");
                debug_assert_ne!(owner.index(), self.me, "own pipes never tunnel");
                let arrival = at.max(now) + self.profile.tunnel_latency;
                produced_due |= arrival <= now;
                self.send_tunnel(
                    owner.index(),
                    TunnelMsg::Descriptor {
                        arrival,
                        descriptor,
                    },
                );
            }
            let epoch = self.epoch;
            for target in 0..self.core_count {
                if target != self.me {
                    self.send_tunnel(
                        target,
                        TunnelMsg::Epoch {
                            epoch,
                            produced_due,
                        },
                    );
                }
            }
            // Stream this epoch's deliveries (they are appended by the
            // coordinator in core order, matching the sequential backend).
            for delivery in tick_buf.deliveries.drain(..) {
                self.push_response(Response::Delivery(delivery));
            }
            self.tick_buf = tick_buf;
            // Epoch barrier: collect every peer's marker, staging their
            // tunnels into the arrival wheel in source-major order.
            let mut any_due = produced_due;
            for source in 0..self.core_count {
                if source != self.me {
                    match self.collect_marker(source, epoch) {
                        Some(due) => any_due |= due,
                        // A peer died or stalled and the coordinator
                        // aborted this advance: bail out (no AdvanceDone —
                        // nobody is listening) and return to the command
                        // loop so Finish still reaches us.
                        None => return,
                    }
                }
            }
            self.push_response(Response::EpochEnd { more: any_due });
            if !any_due {
                break;
            }
        }
        // Settle the fluid byte integral at the advance target, mirroring
        // the sequential backend's per-core integration (the exact-remainder
        // arithmetic makes the result independent of the chop points).
        self.core.integrate_fluid_to(now);
        // Leave no spilled message behind: a peer may still be waiting in
        // its epoch collect for a marker that overflowed our ring (an epoch
        // that tunnelled more than a ring's capacity to one target). While
        // the advance loop runs, `send_tunnel`/`make_progress` retry the
        // spill, but nothing on the exit path would — and a worker parked
        // with a spilled marker deadlocks the whole mesh.
        self.flush_all_spill_blocking();
        let response = Response::AdvanceDone {
            stats: *self.core.stats(),
            next_wakeup: self.next_wakeup(),
        };
        self.push_response(response);
    }

    /// Spins until every spill queue has drained into its ring, keeping
    /// the mesh live (incoming rings are drained into staging throughout,
    /// so the consumers of our full rings can always make room).
    fn flush_all_spill_blocking(&mut self) {
        let mut wait = SpinWait::new();
        while !self.spill.iter().all(VecDeque::is_empty) {
            if self.abort.load(Ordering::Acquire) {
                return;
            }
            self.make_progress();
            wait.spin();
        }
    }

    /// Earliest due work on this core, tick-rounded: pipe deadlines, staged
    /// remote descriptors, and tunnel arrivals filed in the local wheel.
    fn next_wakeup(&self) -> Option<SimTime> {
        let tunnel_next = self
            .arrivals
            .peek_time()
            .map(|t| self.profile.next_tick_at(t));
        [self.core.next_wakeup(), tunnel_next]
            .into_iter()
            .flatten()
            .min()
    }

    /// Queues a tunnel message to `target`, preserving per-ring FIFO order
    /// and never blocking: overflow goes to the local spill, flushed as the
    /// consumer makes room.
    fn send_tunnel(&mut self, target: usize, message: TunnelMsg) {
        self.flush_spill(target);
        let producer = self.tunnel_out[target]
            .as_mut()
            .expect("tunnel targets are always peer cores");
        if self.spill[target].is_empty() {
            if let Err(back) = producer.try_push(message) {
                self.spill[target].push_back(back);
            }
        } else {
            // Ring order would be violated by pushing past older spill.
            self.spill[target].push_back(message);
        }
    }

    /// Pushes as much spilled backlog for `target` as the ring accepts.
    fn flush_spill(&mut self, target: usize) {
        let Some(producer) = self.tunnel_out[target].as_mut() else {
            return;
        };
        while let Some(message) = self.spill[target].pop_front() {
            if let Err(back) = producer.try_push(message) {
                self.spill[target].push_front(back);
                break;
            }
        }
    }

    /// Waits for `source`'s marker for `epoch`, filing every tunnelled
    /// descriptor that precedes it. While waiting, keeps the whole mesh
    /// live: flushes spill and drains other incoming rings into staging so
    /// no producer can stay blocked on a full ring. Returns `None` when the
    /// coordinator raised the abort flag (the marker will never come — a
    /// peer died); the caller must bail out of the advance.
    fn collect_marker(&mut self, source: usize, epoch: u64) -> Option<bool> {
        let mut wait = SpinWait::new();
        loop {
            let message = self.staged[source].pop_front().or_else(|| {
                self.tunnel_in[source]
                    .as_mut()
                    .expect("sources are always peer cores")
                    .try_pop()
            });
            match message {
                Some(TunnelMsg::Descriptor {
                    arrival,
                    descriptor,
                }) => {
                    self.arrivals.push(arrival, descriptor);
                    wait.reset();
                }
                Some(TunnelMsg::Epoch {
                    epoch: e,
                    produced_due,
                }) => {
                    debug_assert_eq!(e, epoch, "epoch markers arrive in lockstep");
                    return Some(produced_due);
                }
                None => {
                    if self.abort.load(Ordering::Acquire) {
                        return None;
                    }
                    self.make_progress();
                    wait.spin();
                }
            }
        }
    }

    /// One liveness pass: flush all spilled tunnels and drain every
    /// incoming ring into its staging queue.
    fn make_progress(&mut self) {
        for target in 0..self.core_count {
            if target != self.me {
                self.flush_spill(target);
            }
        }
        for source in 0..self.core_count {
            if source == self.me {
                continue;
            }
            let consumer = self.tunnel_in[source]
                .as_mut()
                .expect("sources are always peer cores");
            while let Some(message) = consumer.try_pop() {
                self.staged[source].push_back(message);
            }
        }
    }

    /// Blocking response push; the coordinator always drains the ring of
    /// the worker it is waiting on, so this cannot deadlock. After an
    /// abort the coordinator stops draining entirely — the message is
    /// dropped instead (the run's results are void once a worker died).
    fn push_response(&mut self, message: Response) {
        let mut message = message;
        let mut wait = SpinWait::new();
        loop {
            match self.responses.try_push(message) {
                Ok(()) => return,
                Err(back) => {
                    if self.abort.load(Ordering::Acquire) {
                        return;
                    }
                    message = back;
                    self.make_progress();
                    wait.spin();
                }
            }
        }
    }
}

/// Where a submitted packet's outcome comes from: resolved at the
/// coordinator (local delivery, no route) or owed by an entry core.
enum PendingOutcome {
    Immediate(SubmitOutcome),
    FromCore(usize),
}

/// Coordinator-side endpoint of one worker.
struct WorkerHandle {
    /// The core this worker runs, for failure attribution.
    core: CoreId,
    thread: Option<JoinHandle<()>>,
    commands: Producer<Command>,
    responses: Consumer<Response>,
    /// The worker's liveness counter, read by the stall watchdog.
    heartbeat: Arc<AtomicU64>,
    /// Latest counters reported by the worker (refreshed on every ingress
    /// and advance, the only operations that change them).
    stats: CoreStats,
    /// Latest wakeup reported by the worker.
    next_wakeup: Option<SimTime>,
    /// The binding's advisory CPU placement for this worker.
    affinity_hint: Option<usize>,
}

/// Best-effort extraction of a panic payload message (the common
/// `panic!("...")` cases carry a `&str` or `String`).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl WorkerHandle {
    /// Joins a dead worker thread and converts its fate into a typed
    /// [`EmuError::WorkerFailure`] carrying the panic message.
    fn reap(&mut self) -> EmuError {
        let cause = match self.thread.take() {
            Some(thread) => match thread.join() {
                Err(payload) => FailureCause::Panicked(panic_message(payload.as_ref())),
                // A worker never exits cleanly except through Finish, which
                // replies first — treat a silent exit as a panic too.
                Ok(()) => FailureCause::Panicked("worker exited without replying".to_string()),
            },
            None => FailureCause::Panicked("worker already reaped".to_string()),
        };
        EmuError::WorkerFailure {
            core: self.core,
            cause,
        }
    }

    /// Sends a command (FIFO per worker) and wakes the thread if parked.
    ///
    /// A live worker always drains its ring, so a full ring plus a dead
    /// thread means the worker failed: the error carries the panic payload.
    fn send(&mut self, command: Command) -> Result<(), EmuError> {
        let mut command = command;
        let mut wait = SpinWait::new();
        loop {
            match self.commands.try_push(command) {
                Ok(()) => break,
                Err(back) => {
                    command = back;
                    match &self.thread {
                        Some(thread) => {
                            thread.thread().unpark();
                            if thread.is_finished() {
                                return Err(self.reap());
                            }
                        }
                        None => {
                            return Err(EmuError::WorkerFailure {
                                core: self.core,
                                cause: FailureCause::Panicked("worker already reaped".to_string()),
                            })
                        }
                    }
                    wait.spin();
                }
            }
        }
        if let Some(thread) = &self.thread {
            thread.thread().unpark();
        }
        Ok(())
    }

    /// Blocks until the worker's next response.
    ///
    /// Instead of hanging forever on a dead or wedged worker, fails
    /// structurally: a finished thread is reaped into a
    /// [`FailureCause::Panicked`]; with a stall timeout configured, a live
    /// thread whose heartbeat stops moving for that long (wall clock) is
    /// reported as [`FailureCause::Stalled`]. Note the stalled core may be
    /// an innocent victim — the epoch barrier couples all workers, so a
    /// peer's stall freezes this worker's heartbeat too; the error names
    /// the worker the coordinator was waiting on.
    fn wait_response(&mut self, stall_timeout: Option<Duration>) -> Result<Response, EmuError> {
        let mut wait = SpinWait::new();
        // Lazily initialised: the Instant read costs nothing unless a
        // timeout is configured and the first poll missed.
        let mut watchdog: Option<(u64, Instant)> = None;
        let mut polls: u32 = 0;
        loop {
            if let Some(response) = self.responses.try_pop() {
                return Ok(response);
            }
            if self.thread.as_ref().is_some_and(|t| t.is_finished()) {
                // The thread may have pushed its final response right
                // before exiting (the Finish path); re-check once after
                // observing the exit before declaring it dead.
                if let Some(response) = self.responses.try_pop() {
                    return Ok(response);
                }
                return Err(self.reap());
            }
            if let Some(timeout) = stall_timeout {
                polls = polls.wrapping_add(1);
                if polls.is_multiple_of(64) {
                    let beat = self.heartbeat.load(Ordering::Relaxed);
                    match &mut watchdog {
                        Some((last_beat, last_progress)) => {
                            if beat != *last_beat {
                                *last_beat = beat;
                                *last_progress = Instant::now();
                            } else if last_progress.elapsed() >= timeout {
                                return Err(EmuError::WorkerFailure {
                                    core: self.core,
                                    cause: FailureCause::Stalled { waited: timeout },
                                });
                            }
                        }
                        None => watchdog = Some((beat, Instant::now())),
                    }
                }
            }
            wait.spin();
        }
    }
}

/// The multi-threaded execution backend: the same emulation contract as
/// [`MultiCoreEmulator`], with each core running on its own OS thread.
///
/// Construction spawns `pod.core_count()` worker threads; [`Drop`] (or
/// [`ParallelEmulator::finish`]) stops and joins them. Results are
/// bit-identical to the sequential backend — same deliveries, same order,
/// same times, same counters — which the determinism and differential test
/// suites pin.
pub struct ParallelEmulator {
    workers: Vec<WorkerHandle>,
    pod: Arc<PipeOwnershipDirectory>,
    matrix: RoutingMatrix,
    routes: Arc<RouteTable>,
    vn_location: Vec<NodeId>,
    vn_entry_core: Vec<CoreId>,
    /// Live-membership flag per VN (see `MultiCoreEmulator::vn_active`).
    vn_active: Vec<bool>,
    /// Active VNs entering through each core, for least-loaded joins.
    core_load: Vec<u32>,
    local_deliveries: Vec<Delivery>,
    /// Coordinator-owned fluid flow state, driven exactly as the sequential
    /// backend drives its copy: epoch-chopped advances plus mutation-time
    /// recomputes, with changed per-pipe demands pushed to the owning
    /// worker's command ring.
    fluid: FluidState,
    /// The hardware model, kept coordinator-side for checkpoint assembly.
    profile: HardwareProfile,
    /// Shared kill switch raised on the first worker failure so surviving
    /// workers escape their epoch waits instead of spinning forever.
    abort: Arc<AtomicBool>,
    /// First failure observed; poisons the emulator — every subsequent
    /// submit/advance/snapshot returns this same error until the pool is
    /// rebuilt (e.g. from a checkpoint).
    failure: Option<EmuError>,
    /// Wall-clock budget the stall watchdog allows a worker's heartbeat to
    /// stand still while the coordinator waits on it. `None` (the default)
    /// disables the watchdog.
    stall_timeout: Option<Duration>,
}

impl std::fmt::Debug for ParallelEmulator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelEmulator")
            .field("core_count", &self.workers.len())
            .finish()
    }
}

impl ParallelEmulator {
    /// Builds the emulator and spawns one execution thread per core. Same
    /// signature and semantics as [`MultiCoreEmulator::new`].
    ///
    /// # Panics
    ///
    /// Panics if the POD covers a different number of pipes than the
    /// distilled topology contains, or if a worker thread cannot be
    /// spawned.
    pub fn new(
        topo: &DistilledTopology,
        pod: PipeOwnershipDirectory,
        matrix: RoutingMatrix,
        binding: &Binding,
        profile: HardwareProfile,
        seed: u64,
    ) -> Self {
        let sequential = MultiCoreEmulator::new(topo, pod, matrix, binding, profile, seed);
        Self::spawn(sequential, binding)
    }

    /// Converts a sequential emulator (including any in-flight state) into
    /// the threaded backend. Without a binding there are no affinity hints;
    /// use [`ParallelEmulator::new`] to carry them through.
    pub fn from_sequential(emulator: MultiCoreEmulator) -> Self {
        Self::spawn_with_hints(emulator, Vec::new())
    }

    fn spawn(emulator: MultiCoreEmulator, binding: &Binding) -> Self {
        let hints = (0..emulator.core_count())
            .map(|c| binding.thread_affinity(CoreId(c)))
            .collect();
        Self::spawn_with_hints(emulator, hints)
    }

    fn spawn_with_hints(emulator: MultiCoreEmulator, hints: Vec<Option<usize>>) -> Self {
        let parts = emulator.into_parts();
        let n = parts.cores.len();
        let pod = Arc::new(parts.pod);
        let profile = parts.profile;

        // In-flight tunnels of the sequential backend become each target
        // worker's initial arrival backlog; popping the shared wheel here
        // preserves the global (time, seq) order per target.
        let mut backlogs: Vec<Vec<(SimTime, Descriptor)>> = vec![Vec::new(); n];
        let mut tunnels_in_flight = parts.tunnels_in_flight;
        while let Some((arrival, (target, descriptor))) = tunnels_in_flight.pop() {
            backlogs[target.index()].push((arrival, descriptor));
        }

        // Wire the ring mesh: commands/responses per worker plus one tunnel
        // ring per ordered core pair.
        let mut tunnel_producers: Vec<Vec<Option<Producer<TunnelMsg>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        let mut tunnel_consumers: Vec<Vec<Option<Consumer<TunnelMsg>>>> =
            (0..n).map(|_| (0..n).map(|_| None).collect()).collect();
        for source in 0..n {
            for target in 0..n {
                if source != target {
                    let (producer, consumer) = spsc::channel(TUNNEL_RING_CAPACITY);
                    tunnel_producers[source][target] = Some(producer);
                    tunnel_consumers[target][source] = Some(consumer);
                }
            }
        }

        let start = Arc::new(SpinBarrier::new(n));
        let abort = Arc::new(AtomicBool::new(false));
        let mut workers = Vec::with_capacity(n);
        for (me, (core, backlog)) in parts.cores.into_iter().zip(backlogs).enumerate() {
            let (command_tx, command_rx) = spsc::channel(COMMAND_RING_CAPACITY);
            let (response_tx, response_rx) = spsc::channel(RESPONSE_RING_CAPACITY);
            let affinity_hint = hints.get(me).copied().flatten();
            let heartbeat = Arc::new(AtomicU64::new(0));
            let mut arrivals = TimerWheel::new();
            for (arrival, descriptor) in backlog {
                arrivals.push(arrival, descriptor);
            }
            let worker = Worker {
                me,
                core_count: n,
                core,
                pod: pod.clone(),
                profile,
                commands: command_rx,
                responses: response_tx,
                tunnel_out: std::mem::take(&mut tunnel_producers[me]),
                tunnel_in: std::mem::take(&mut tunnel_consumers[me]),
                staged: (0..n).map(|_| VecDeque::new()).collect(),
                spill: (0..n).map(|_| VecDeque::new()).collect(),
                arrivals,
                epoch: 0,
                tick_buf: TickOutput::default(),
                abort: abort.clone(),
                heartbeat: heartbeat.clone(),
                chaos: ChaosPlan::default(),
            };
            let name = match affinity_hint {
                Some(cpu) => format!("mn-core-{me}@cpu{cpu}"),
                None => format!("mn-core-{me}"),
            };
            let barrier = start.clone();
            let thread = std::thread::Builder::new()
                .name(name)
                .spawn(move || worker.run(barrier))
                .expect("spawn emulator core thread");
            workers.push(WorkerHandle {
                core: CoreId(me),
                thread: Some(thread),
                commands: command_tx,
                responses: response_rx,
                heartbeat,
                stats: CoreStats::default(),
                next_wakeup: None,
                affinity_hint,
            });
        }

        let mut emulator = ParallelEmulator {
            workers,
            pod,
            matrix: parts.matrix,
            routes: parts.routes,
            vn_location: parts.vn_location,
            vn_entry_core: parts.vn_entry_core,
            vn_active: parts.vn_active,
            core_load: parts.core_load,
            local_deliveries: parts.local_deliveries,
            fluid: parts.fluid,
            profile,
            abort,
            failure: None,
            stall_timeout: None,
        };
        // Seed the cached per-worker state. A converted emulator may carry
        // counters and scheduled deadlines from its sequential life.
        emulator
            .refresh_caches()
            .expect("freshly spawned worker pool is live");
        emulator
    }

    /// Records the first worker failure: raises the shared abort flag (so
    /// surviving workers escape their epoch waits) and poisons the
    /// emulator. Returns the error for propagation.
    fn fail(&mut self, error: EmuError) -> EmuError {
        self.abort.store(true, Ordering::Release);
        if self.failure.is_none() {
            self.failure = Some(error.clone());
        }
        error
    }

    /// Short-circuits every operation after a worker failure with the
    /// original error.
    fn check_failed(&self) -> Result<(), EmuError> {
        match &self.failure {
            Some(error) => Err(error.clone()),
            None => Ok(()),
        }
    }

    /// The first worker failure observed, if the emulator is poisoned.
    pub fn last_failure(&self) -> Option<&EmuError> {
        self.failure.as_ref()
    }

    /// Arms the stall watchdog: while the coordinator waits on a worker
    /// whose thread is alive but whose heartbeat makes no progress for
    /// `timeout` of wall-clock time, the wait fails with
    /// [`FailureCause::Stalled`] instead of hanging forever. `None`
    /// disables the watchdog (the default — virtual time runs arbitrarily
    /// faster or slower than wall clock, so only a supervisor that knows
    /// the deployment should set this).
    pub fn set_stall_timeout(&mut self, timeout: Option<Duration>) {
        self.stall_timeout = timeout;
    }

    /// Installs a chaos fault plan on one worker core (test-only fault
    /// injection; see [`crate::chaos`]). Fire-and-forget; returns `false`
    /// if the core does not exist or the emulator already failed.
    pub fn set_chaos(&mut self, core: CoreId, plan: ChaosPlan) -> bool {
        if self.failure.is_some() || core.index() >= self.workers.len() {
            return false;
        }
        match self.workers[core.index()].send(Command::SetChaos(plan)) {
            Ok(()) => true,
            Err(error) => {
                self.fail(error);
                false
            }
        }
    }

    /// Refreshes the cached per-worker stats and wakeups with a read-only
    /// round trip (no ticks, no state change on any core).
    fn refresh_caches(&mut self) -> Result<(), EmuError> {
        for worker in &mut self.workers {
            worker.send(Command::Query)?;
        }
        for worker in &mut self.workers {
            match worker.wait_response(self.stall_timeout)? {
                Response::Queried { stats, next_wakeup } => {
                    worker.stats = stats;
                    worker.next_wakeup = next_wakeup;
                }
                _ => unreachable!("Query is answered by Queried"),
            }
        }
        Ok(())
    }

    /// Number of cooperating cores (and worker threads).
    pub fn core_count(&self) -> usize {
        self.workers.len()
    }

    /// The advisory host-CPU hint the binding supplied for a core's thread.
    pub fn affinity_hint(&self, core: CoreId) -> Option<usize> {
        self.workers.get(core.index()).and_then(|w| w.affinity_hint)
    }

    /// Latest counters reported by one core.
    pub fn core_stats(&self, core: CoreId) -> Option<CoreStats> {
        self.workers.get(core.index()).map(|w| w.stats)
    }

    /// Aggregated counters across cores (associative merge of the
    /// per-thread drains).
    pub fn total_stats(&self) -> CoreStats {
        self.workers
            .iter()
            .fold(CoreStats::default(), |acc, w| acc.merged(&w.stats))
    }

    /// The routing matrix in force.
    pub fn routing(&self) -> &RoutingMatrix {
        &self.matrix
    }

    /// The interned route table in force.
    pub fn route_table(&self) -> &RouteTable {
        &self.routes
    }

    /// The topology location a VN is bound to.
    pub fn vn_location(&self, vn: VnId) -> Option<NodeId> {
        self.vn_location.get(vn.index()).copied()
    }

    /// Replaces the routing matrix and installs the rebuilt route table on
    /// every core thread. Route ids already in flight stay valid, exactly
    /// as in [`MultiCoreEmulator::set_routing`].
    pub fn set_routing(&mut self, matrix: RoutingMatrix) {
        if self.failure.is_some() {
            return;
        }
        self.matrix = matrix;
        self.routes = Arc::new(RouteTable::rebuild(
            &self.routes,
            &self.matrix,
            &self.vn_location,
        ));
        if !self.broadcast_routes() {
            return;
        }
        self.fluid.mark_routes_dirty();
        if self.fluid.has_flows() {
            let at = self.fluid.clock();
            self.recompute_fluid(at);
        }
    }

    /// Pushes the current route-table generation to every worker. On a
    /// dead worker the emulator is poisoned and `false` returned.
    fn broadcast_routes(&mut self) -> bool {
        for index in 0..self.workers.len() {
            let routes = self.routes.clone();
            if let Err(error) = self.workers[index].send(Command::SetRoutes(routes)) {
                self.fail(error);
                return false;
            }
        }
        true
    }

    /// Re-solves the fluid fair share at `at` and pushes every changed
    /// per-pipe demand to the owning worker. Command rings are FIFO, so the
    /// demand lands before any subsequent `Advance` ticks past `at` —
    /// the same ordering the sequential backend applies in place.
    fn recompute_fluid(&mut self, at: SimTime) {
        let changed = self.fluid.recompute(at, &self.routes);
        let mut failed = None;
        for &(pipe, bps) in changed {
            let owner = self
                .pod
                .get_owner(pipe)
                .expect("fluid routes reference pipes covered by the POD");
            if let Err(error) = self.workers[owner.index()].send(Command::SetFluidDemand {
                pipe,
                rate: DataRate::from_bps(bps),
                at,
            }) {
                failed = Some(error);
                break;
            }
        }
        if let Some(error) = failed {
            self.fail(error);
        }
    }

    /// Updates a pipe's emulation parameters on whichever core owns it.
    pub fn update_pipe_attrs(&mut self, pipe: PipeId, attrs: PipeAttrs) -> bool {
        if self.failure.is_some() {
            return false;
        }
        let Some(owner) = self.pod.get_owner(pipe) else {
            return false;
        };
        let stall = self.stall_timeout;
        let worker = &mut self.workers[owner.index()];
        let updated = match worker
            .send(Command::UpdatePipe { pipe, attrs })
            .and_then(|()| worker.wait_response(stall))
        {
            Ok(Response::PipeUpdated(updated)) => updated,
            Ok(_) => unreachable!("UpdatePipe is answered by PipeUpdated"),
            Err(error) => {
                self.fail(error);
                return false;
            }
        };
        if !updated {
            return false;
        }
        self.fluid.set_capacity(pipe, attrs.bandwidth);
        if self.fluid.has_flows() {
            let at = self.fluid.clock();
            self.recompute_fluid(at);
        }
        true
    }

    /// Installs, replaces or (with `None`) removes the CBR background
    /// injector on a pipe, on whichever core thread owns it. Same
    /// semantics as [`MultiCoreEmulator::set_pipe_cbr`].
    pub fn set_pipe_cbr(&mut self, pipe: PipeId, config: Option<CbrConfig>, from: SimTime) -> bool {
        if self.failure.is_some() {
            return false;
        }
        let Some(owner) = self.pod.get_owner(pipe) else {
            return false;
        };
        let stall = self.stall_timeout;
        let worker = &mut self.workers[owner.index()];
        let updated = match worker
            .send(Command::SetCbr { pipe, config, from })
            .and_then(|()| worker.wait_response(stall))
        {
            Ok(Response::PipeUpdated(updated)) => updated,
            Ok(_) => unreachable!("SetCbr is answered by PipeUpdated"),
            Err(error) => {
                self.fail(error);
                return false;
            }
        };
        if !updated {
            return false;
        }
        // Mirror the sequential backend: the bandwidth half of the episode
        // is a fixed-rate fluid demand (degenerate configs carry none).
        let rate = config.and_then(|c| c.interval().map(|_| c.rate));
        self.fluid.set_cbr(pipe, rate, from);
        self.recompute_fluid(from);
        true
    }

    /// Installs (or clears) a distillation-compensation rate on `pipe`. Same
    /// semantics as [`MultiCoreEmulator::set_pipe_compensation`]: fluid-only,
    /// no packet injection — the coordinator owns the fluid solver and pushes
    /// residual-capacity changes to the owning worker, exactly as the
    /// sequential backend pushes them to its cores.
    pub fn set_pipe_compensation(
        &mut self,
        pipe: PipeId,
        rate: Option<DataRate>,
        from: SimTime,
    ) -> bool {
        if self.pod.get_owner(pipe).is_none() {
            return false;
        }
        self.fluid.set_cbr(pipe, rate, from);
        self.recompute_fluid(from);
        true
    }

    /// Applies an incremental routing change after the listed pipes of
    /// `topo` were mutated in place, and installs the re-wired route table
    /// on every core thread. Same semantics as
    /// [`MultiCoreEmulator::reroute`]: untouched `RouteId`s (and the
    /// descriptors in flight on them) are preserved.
    pub fn reroute(&mut self, topo: &DistilledTopology, changed: &[PipeId]) -> RouteUpdate {
        let update = crate::multicore::apply_route_change(
            &mut self.matrix,
            &mut self.routes,
            &self.vn_location,
            topo,
            changed,
        );
        if !update.is_empty() {
            if !self.broadcast_routes() {
                return update;
            }
            self.fluid.mark_routes_dirty();
            if self.fluid.has_flows() {
                let at = self.fluid.clock();
                self.recompute_fluid(at);
            }
        }
        update
    }

    /// `true` while a VN is an active member of the emulation.
    pub fn vn_is_active(&self, vn: VnId) -> bool {
        self.vn_active.get(vn.index()).copied().unwrap_or(false)
    }

    /// Number of currently active VNs.
    pub fn active_vn_count(&self) -> usize {
        self.vn_active.iter().filter(|&&a| a).count()
    }

    /// The core a VN's traffic enters through.
    pub fn vn_entry_core(&self, vn: VnId) -> Option<CoreId> {
        self.vn_entry_core.get(vn.index()).copied()
    }

    /// Joins a VN at a client location of `topo` mid-run and installs the
    /// grown route-table generation on every core thread. Same semantics
    /// (and, from identical churn histories, bit-identical state) as
    /// [`MultiCoreEmulator::vn_join`]: all churn bookkeeping runs on the
    /// coordinator, workers only ever receive published table generations.
    pub fn vn_join(
        &mut self,
        topo: &DistilledTopology,
        vn: VnId,
        location: NodeId,
        at: SimTime,
    ) -> bool {
        if !crate::multicore::apply_vn_join(
            &mut self.matrix,
            &mut self.routes,
            &mut self.vn_location,
            &mut self.vn_entry_core,
            &mut self.vn_active,
            &mut self.core_load,
            topo,
            vn,
            location,
        ) {
            return false;
        }
        if !self.broadcast_routes() {
            return false;
        }
        self.fluid.mark_routes_dirty();
        if self.fluid.has_flows() {
            self.recompute_fluid(at);
        }
        true
    }

    /// Removes a VN from the emulation mid-run. Same semantics as
    /// [`MultiCoreEmulator::vn_leave`]: new traffic is refused from this
    /// instant, in-flight descriptors drain on their pre-departure routes,
    /// and the VN's fluid flows are torn down.
    pub fn vn_leave(&mut self, vn: VnId, at: SimTime) -> bool {
        if !crate::multicore::apply_vn_leave(
            &mut self.matrix,
            &mut self.routes,
            &self.vn_location,
            &self.vn_entry_core,
            &mut self.vn_active,
            &mut self.core_load,
            vn,
        ) {
            return false;
        }
        if !self.broadcast_routes() {
            return false;
        }
        let removed = self.fluid.remove_vn_flows(vn, at);
        self.fluid.mark_routes_dirty();
        if removed > 0 || self.fluid.has_flows() {
            self.recompute_fluid(at);
        }
        true
    }

    /// Sets the cadence at which fluid rates are re-solved while flows are
    /// live. Same semantics as [`MultiCoreEmulator::set_fluid_epoch`].
    pub fn set_fluid_epoch(&mut self, epoch: SimDuration) {
        self.fluid.set_epoch(epoch);
    }

    /// Starts a fluid bulk flow. Same semantics as
    /// [`MultiCoreEmulator::add_fluid_flow`].
    pub fn add_fluid_flow(
        &mut self,
        tag: u64,
        src: VnId,
        dst: VnId,
        demand: DataRate,
        clients: u32,
        at: SimTime,
    ) -> bool {
        if !self.fluid.add_flow(tag, src, dst, demand, clients, at) {
            return false;
        }
        self.recompute_fluid(at);
        true
    }

    /// Changes a fluid flow's offered demand and client count mid-run.
    pub fn resize_fluid_flow(
        &mut self,
        tag: u64,
        demand: DataRate,
        clients: u32,
        at: SimTime,
    ) -> bool {
        if !self.fluid.resize_flow(tag, demand, clients, at) {
            return false;
        }
        self.recompute_fluid(at);
        true
    }

    /// Stops a fluid flow, returning its share to the packet path.
    pub fn remove_fluid_flow(&mut self, tag: u64, at: SimTime) -> bool {
        if !self.fluid.remove_flow(tag, at) {
            return false;
        }
        self.recompute_fluid(at);
        true
    }

    /// The rate the last fair-share solve allocated to a fluid flow.
    pub fn fluid_flow_rate(&self, tag: u64) -> Option<DataRate> {
        self.fluid.flow_rate(tag)
    }

    /// Bytes of goodput a fluid flow has accumulated so far.
    pub fn fluid_flow_goodput_bytes(&self, tag: u64) -> Option<u64> {
        self.fluid.flow_goodput_bytes(tag)
    }

    /// Read access to the fluid flow state (flow counts, epoch clock).
    pub fn fluid(&self) -> &FluidState {
        &self.fluid
    }

    /// Routes a packet to its entry core (or resolves it locally), without
    /// waiting for the core's admission decision.
    fn dispatch(&mut self, now: SimTime, packet: Packet) -> Result<PendingOutcome, EmuError> {
        let src_idx = packet.flow.src.index();
        let dst_idx = packet.flow.dst.index();
        let Some(&src_loc) = self.vn_location.get(src_idx) else {
            return Ok(PendingOutcome::Immediate(SubmitOutcome::NoRoute));
        };
        let Some(&dst_loc) = self.vn_location.get(dst_idx) else {
            return Ok(PendingOutcome::Immediate(SubmitOutcome::NoRoute));
        };
        if !self.vn_active[src_idx] || !self.vn_active[dst_idx] {
            return Ok(PendingOutcome::Immediate(SubmitOutcome::NoRoute));
        }
        if src_loc == dst_loc {
            self.local_deliveries.push(Delivery {
                packet,
                delivered_at: now,
                entered_at: now,
                hops: 0,
                emulation_error: mn_util::SimDuration::ZERO,
            });
            return Ok(PendingOutcome::Immediate(SubmitOutcome::Accepted));
        }
        let Some(route) = self.routes.route_id(src_idx, dst_idx) else {
            return Ok(PendingOutcome::Immediate(SubmitOutcome::NoRoute));
        };
        let entry = self
            .vn_entry_core
            .get(src_idx)
            .copied()
            .unwrap_or(CoreId(0));
        let descriptor = Descriptor::new(packet, route, now);
        self.workers[entry.index()].send(Command::Ingress { now, descriptor })?;
        Ok(PendingOutcome::FromCore(entry.index()))
    }

    /// Waits for one ingress reply from `worker`, refreshing its caches.
    fn collect_ingress(
        worker: &mut WorkerHandle,
        stall_timeout: Option<Duration>,
    ) -> Result<SubmitOutcome, EmuError> {
        match worker.wait_response(stall_timeout)? {
            Response::Ingress {
                outcome,
                stats,
                next_wakeup,
            } => {
                worker.stats = stats;
                worker.next_wakeup = next_wakeup;
                Ok(match outcome {
                    IngressOutcome::Accepted => SubmitOutcome::Accepted,
                    IngressOutcome::VirtualDrop => SubmitOutcome::VirtualDrop,
                    IngressOutcome::PhysicalDropNic | IngressOutcome::PhysicalDropCpu => {
                        SubmitOutcome::PhysicalDrop
                    }
                })
            }
            _ => unreachable!("Ingress is answered by Ingress"),
        }
    }

    /// Submits a packet emitted by its source VN's edge node at time `now`.
    /// Identical admission semantics to [`MultiCoreEmulator::submit`]; the
    /// NIC/CPU/first-pipe decision runs on the entry core's thread.
    ///
    /// # Errors
    ///
    /// [`EmuError::WorkerFailure`] if the entry core's thread died or
    /// stalled — and, once failed, on every subsequent call (the emulator
    /// is poisoned; rebuild it, e.g. from a checkpoint).
    pub fn submit(&mut self, now: SimTime, packet: Packet) -> Result<SubmitOutcome, EmuError> {
        self.check_failed()?;
        let stall = self.stall_timeout;
        let pending = match self.dispatch(now, packet) {
            Ok(pending) => pending,
            Err(error) => return Err(self.fail(error)),
        };
        match pending {
            PendingOutcome::Immediate(outcome) => Ok(outcome),
            PendingOutcome::FromCore(index) => {
                match Self::collect_ingress(&mut self.workers[index], stall) {
                    Ok(outcome) => Ok(outcome),
                    Err(error) => Err(self.fail(error)),
                }
            }
        }
    }

    /// Submits a batch of timestamped packets, appending one outcome per
    /// packet (in input order) to `outcomes`.
    ///
    /// Semantically identical to calling [`ParallelEmulator::submit`] per
    /// packet — per-core admission order is the input order, so results are
    /// bit-identical — but the coordinator pipelines the ring round trips
    /// instead of blocking on each packet, which is the fast path for bulk
    /// traffic drivers.
    /// # Errors
    ///
    /// [`EmuError::WorkerFailure`] if a core thread died or stalled
    /// mid-batch; `outcomes` is left untouched in that case (the emulator
    /// is poisoned, so partial results would never be consistent anyway).
    pub fn submit_batch<I>(
        &mut self,
        batch: I,
        outcomes: &mut Vec<SubmitOutcome>,
    ) -> Result<(), EmuError>
    where
        I: IntoIterator<Item = (SimTime, Packet)>,
    {
        self.check_failed()?;
        let stall = self.stall_timeout;
        let n = self.workers.len();
        let mut pending: Vec<PendingOutcome> = Vec::new();
        let mut outstanding = vec![0usize; n];
        let mut collected: Vec<VecDeque<SubmitOutcome>> = vec![VecDeque::new(); n];
        for (now, packet) in batch {
            match self.dispatch(now, packet) {
                Ok(PendingOutcome::FromCore(index)) => {
                    pending.push(PendingOutcome::FromCore(index));
                    outstanding[index] += 1;
                    // Keep the rings bounded: drain a core's replies before
                    // its command/response rings can fill.
                    if outstanding[index] >= MAX_OUTSTANDING_INGRESS {
                        for _ in 0..outstanding[index] {
                            match Self::collect_ingress(&mut self.workers[index], stall) {
                                Ok(outcome) => collected[index].push_back(outcome),
                                Err(error) => return Err(self.fail(error)),
                            }
                        }
                        outstanding[index] = 0;
                    }
                }
                Ok(immediate) => pending.push(immediate),
                Err(error) => return Err(self.fail(error)),
            }
        }
        for (index, count) in outstanding.into_iter().enumerate() {
            for _ in 0..count {
                match Self::collect_ingress(&mut self.workers[index], stall) {
                    Ok(outcome) => collected[index].push_back(outcome),
                    Err(error) => return Err(self.fail(error)),
                }
            }
        }
        for entry in pending {
            outcomes.push(match entry {
                PendingOutcome::Immediate(outcome) => outcome,
                PendingOutcome::FromCore(index) => collected[index]
                    .pop_front()
                    .expect("every dispatched ingress was collected"),
            });
        }
        Ok(())
    }

    /// The earliest time at which any core (or any in-flight tunnel) has
    /// work due.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let local = if self.local_deliveries.is_empty() {
            None
        } else {
            Some(SimTime::ZERO)
        };
        self.workers
            .iter()
            .filter_map(|w| w.next_wakeup)
            .chain(local)
            .chain(self.fluid.next_epoch())
            .min()
    }

    /// Advances the emulation to time `now`, allocating a fresh delivery
    /// buffer; see [`ParallelEmulator::advance_into`].
    pub fn advance(&mut self, now: SimTime) -> Result<Vec<Delivery>, EmuError> {
        let mut deliveries = Vec::new();
        self.advance_into(now, &mut deliveries)?;
        Ok(deliveries)
    }

    /// Advances every core to time `now` concurrently. Deliveries are
    /// appended in the exact order the sequential backend produces them
    /// (local deliveries, then epoch-major / core-major). While fluid flows
    /// are live the advance is chopped at each rate epoch, exactly as the
    /// sequential backend chops: workers run up to the epoch, the fair
    /// share is re-solved, and the changed demands land on the FIFO command
    /// rings ahead of the next advance segment.
    /// # Errors
    ///
    /// [`EmuError::WorkerFailure`] if any core thread died or stalled
    /// during the advance — and, once failed, on every subsequent call (the
    /// emulator is poisoned; rebuild it, e.g. from a checkpoint).
    pub fn advance_into(
        &mut self,
        now: SimTime,
        deliveries: &mut Vec<Delivery>,
    ) -> Result<(), EmuError> {
        self.check_failed()?;
        while let Some(epoch) = self.fluid.next_epoch().filter(|&e| e <= now) {
            self.advance_workers_into(epoch, deliveries)?;
            self.recompute_fluid(epoch);
            self.check_failed()?;
        }
        self.advance_workers_into(now, deliveries)?;
        self.fluid.integrate_to(now);
        Ok(())
    }

    /// Waits for worker `index`'s next response while watching the whole
    /// pool: during an advance the epoch barrier couples every worker, so
    /// the worker being waited on may be innocently wedged behind a dead
    /// peer — the *peer's* death must surface, not hang the coordinator.
    fn wait_advance_response(&mut self, index: usize) -> Result<Response, EmuError> {
        let stall_timeout = self.stall_timeout;
        let mut wait = SpinWait::new();
        let mut watchdog: Option<(u64, Instant)> = None;
        let mut polls: u32 = 0;
        loop {
            if let Some(response) = self.workers[index].responses.try_pop() {
                return Ok(response);
            }
            for i in 0..self.workers.len() {
                if self.workers[i]
                    .thread
                    .as_ref()
                    .is_some_and(|t| t.is_finished())
                {
                    // Workers never exit mid-advance except by panicking,
                    // so a finished thread here is always a failure. The
                    // waited-on worker gets one response re-check to close
                    // the push-then-exit race.
                    if i == index {
                        if let Some(response) = self.workers[index].responses.try_pop() {
                            return Ok(response);
                        }
                    }
                    return Err(self.workers[i].reap());
                }
            }
            if let Some(timeout) = stall_timeout {
                polls = polls.wrapping_add(1);
                if polls.is_multiple_of(64) {
                    let beat = self.workers[index].heartbeat.load(Ordering::Relaxed);
                    match &mut watchdog {
                        Some((last_beat, last_progress)) => {
                            if beat != *last_beat {
                                *last_beat = beat;
                                *last_progress = Instant::now();
                            } else if last_progress.elapsed() >= timeout {
                                return Err(EmuError::WorkerFailure {
                                    core: self.workers[index].core,
                                    cause: FailureCause::Stalled { waited: timeout },
                                });
                            }
                        }
                        None => watchdog = Some((beat, Instant::now())),
                    }
                }
            }
            wait.spin();
        }
    }

    /// One un-chopped advance of every worker to `now`.
    fn advance_workers_into(
        &mut self,
        now: SimTime,
        deliveries: &mut Vec<Delivery>,
    ) -> Result<(), EmuError> {
        deliveries.append(&mut self.local_deliveries);
        for index in 0..self.workers.len() {
            if let Err(error) = self.workers[index].send(Command::Advance { now }) {
                return Err(self.fail(error));
            }
        }
        loop {
            let mut more = false;
            for index in 0..self.workers.len() {
                loop {
                    match self.wait_advance_response(index) {
                        Ok(Response::Delivery(delivery)) => deliveries.push(delivery),
                        Ok(Response::EpochEnd { more: worker_more }) => {
                            if index == 0 {
                                more = worker_more;
                            } else {
                                debug_assert_eq!(
                                    more, worker_more,
                                    "epoch continue decisions agree across cores"
                                );
                            }
                            break;
                        }
                        Ok(_) => unreachable!("advance streams deliveries then EpochEnd"),
                        Err(error) => return Err(self.fail(error)),
                    }
                }
            }
            if !more {
                break;
            }
        }
        for index in 0..self.workers.len() {
            match self.wait_advance_response(index) {
                Ok(Response::AdvanceDone { stats, next_wakeup }) => {
                    let worker = &mut self.workers[index];
                    worker.stats = stats;
                    worker.next_wakeup = next_wakeup;
                }
                Ok(_) => unreachable!("advance ends with AdvanceDone"),
                Err(error) => return Err(self.fail(error)),
            }
        }
        Ok(())
    }

    /// Serializes the complete emulator state into a checkpoint restorable
    /// into either backend (see [`crate::snapshot`]). Read-only: workers
    /// clone their cores and report their arrival backlogs; nothing ticks,
    /// so taking a checkpoint does not perturb the run.
    ///
    /// The encoding is canonical — a snapshot taken here is byte-identical
    /// to one taken by [`MultiCoreEmulator::snapshot`] at the same point of
    /// the same emulation.
    ///
    /// # Errors
    ///
    /// [`EmuError::WorkerFailure`] if a core thread died or stalled.
    pub fn snapshot(&mut self) -> Result<EmulatorSnapshot, EmuError> {
        self.check_failed()?;
        let stall = self.stall_timeout;
        for index in 0..self.workers.len() {
            if let Err(error) = self.workers[index].send(Command::Snapshot) {
                return Err(self.fail(error));
            }
        }
        let mut tunnels: TimerWheel<(CoreId, Descriptor)> = TimerWheel::new();
        let mut cores: Vec<EmulatorCore> = Vec::with_capacity(self.workers.len());
        for index in 0..self.workers.len() {
            match self.workers[index].wait_response(stall) {
                Ok(Response::Snapshot { core, arrivals }) => {
                    // Target-major merge; the canonical (time, target)
                    // encode order is re-established by the encoder.
                    for (arrival, descriptor) in arrivals {
                        tunnels.push(arrival, (CoreId(index), descriptor));
                    }
                    cores.push(*core);
                }
                Ok(_) => unreachable!("Snapshot is answered by Snapshot"),
                Err(error) => return Err(self.fail(error)),
            }
        }
        let mut w = mn_util::ByteWriter::with_capacity(64 * 1024);
        crate::multicore::encode_emulator_state(
            &mut w,
            &self.profile,
            &self.routes,
            &self.matrix,
            &self.pod,
            &self.vn_location,
            &self.vn_entry_core,
            &self.vn_active,
            &self.core_load,
            &tunnels,
            &self.local_deliveries,
            &self.fluid,
            cores.iter(),
        );
        Ok(EmulatorSnapshot::from_payload(w.into_bytes()))
    }

    /// Rebuilds a threaded emulator (fresh worker pool, fresh rings) from a
    /// checkpoint taken on either backend. Resuming is bit-identical to
    /// never having stopped.
    ///
    /// # Errors
    ///
    /// [`CodecError`] if the snapshot is truncated, corrupted, or from an
    /// incompatible format version.
    pub fn restore(snapshot: &EmulatorSnapshot) -> Result<Self, CodecError> {
        Ok(Self::from_sequential(MultiCoreEmulator::restore(snapshot)?))
    }

    /// Stops every worker thread and returns the cores (accuracy logs,
    /// pipe counters) in core order.
    pub fn finish(mut self) -> Vec<EmulatorCore> {
        self.shutdown()
    }

    /// Shutdown must never panic (it also runs from [`Drop`], possibly
    /// during an unwind), so unlike the normal protocol paths it tolerates
    /// a dead worker: stale responses a panicked worker left behind are
    /// skipped, and its core is simply lost from the returned set.
    fn shutdown(&mut self) -> Vec<EmulatorCore> {
        let mut cores = Vec::new();
        for worker in &mut self.workers {
            let Some(thread) = worker.thread.take() else {
                continue;
            };
            worker.send_on_thread(&thread, Command::Finish);
            // Drain until the Core reply; a worker that died mid-protocol
            // may have left deliveries or epoch markers queued ahead of it
            // (or nothing at all).
            loop {
                match worker.wait_response_until_dead(&thread) {
                    Some(Response::Core(core)) => {
                        cores.push(*core);
                        break;
                    }
                    Some(_) => continue,
                    None => break, // panicked worker; join below reaps it
                }
            }
            let _ = thread.join();
        }
        cores
    }
}

impl WorkerHandle {
    /// Like [`WorkerHandle::send`] for the shutdown path, where the join
    /// handle has already been taken out of `self`. Gives up (dropping the
    /// command) if the ring is full and the worker is dead.
    fn send_on_thread(&mut self, thread: &JoinHandle<()>, command: Command) {
        let mut command = command;
        let mut wait = SpinWait::new();
        loop {
            match self.commands.try_push(command) {
                Ok(()) => break,
                Err(back) => {
                    if thread.is_finished() {
                        return;
                    }
                    command = back;
                    thread.thread().unpark();
                    wait.spin();
                }
            }
        }
        thread.thread().unpark();
    }

    /// Non-panicking [`WorkerHandle::wait_response`] for shutdown: returns
    /// `None` if the worker exited without replying (a panicked worker).
    fn wait_response_until_dead(&mut self, thread: &JoinHandle<()>) -> Option<Response> {
        let mut wait = SpinWait::new();
        loop {
            if let Some(response) = self.responses.try_pop() {
                return Some(response);
            }
            if thread.is_finished() {
                // The final response may have been pushed just before exit.
                return self.responses.try_pop();
            }
            wait.spin();
        }
    }
}

impl Drop for ParallelEmulator {
    fn drop(&mut self) {
        // When this drop runs during a panic unwind (e.g. the coordinator
        // detected a dead worker), surviving workers may be wedged in an
        // epoch collect waiting for the dead core forever — an orderly
        // shutdown would hang and mask the original panic. Leak the
        // threads instead; the process is on its way down.
        if std::thread::panicking() {
            return;
        }
        let _ = self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_assign::{greedy_k_clusters, BindingParams};
    use mn_distill::{distill, DistillationMode};
    use mn_packet::{FlowKey, PacketId, Protocol, TcpFlags, TransportHeader};
    use mn_topology::generators::{
        path_pairs_topology, ring_topology, PathPairsParams, RingParams,
    };
    use mn_util::{DataRate, SimDuration};

    fn tcp_packet(id: u64, src: VnId, dst: VnId, payload: u32, now: SimTime) -> Packet {
        Packet::new(
            PacketId(id),
            FlowKey {
                src,
                dst,
                src_port: 1000,
                dst_port: 2000,
                protocol: Protocol::Tcp,
            },
            TransportHeader::Tcp {
                seq: 0,
                ack: 0,
                payload_len: payload,
                flags: TcpFlags::ACK,
                window: 65535,
            },
            now,
        )
    }

    /// One delivery, reduced to the fields bit-identity must pin.
    type DeliveryRecord = (u64, SimTime, SimTime, usize);

    /// A ring workload split over `cores`, drained to idle on both
    /// backends; returns every delivery field that must be bit-identical.
    fn run_both(cores: usize) -> (Vec<DeliveryRecord>, CoreStats, CoreStats) {
        let topo = ring_topology(&RingParams {
            routers: 4,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let build_seq = || {
            let matrix = RoutingMatrix::build(&d);
            let binding = Binding::bind(d.vns(), &BindingParams::new(2, cores));
            let pod = greedy_k_clusters(&d, cores, 7);
            (
                MultiCoreEmulator::new(
                    &d,
                    pod,
                    matrix,
                    &binding,
                    HardwareProfile::unconstrained(),
                    11,
                ),
                binding,
            )
        };
        let (mut seq, binding) = build_seq();
        let seq_log = drive(&mut seq, &binding);
        let (seq2, binding2) = build_seq();
        let mut par = ParallelEmulator::from_sequential(seq2);
        let par_log = drive(&mut par, &binding2);
        assert_eq!(seq_log, par_log, "{cores}-core delivery streams diverge");
        (seq_log, seq.total_stats(), par.total_stats())
    }

    /// One driver for both backends, so the bit-identity comparison cannot
    /// silently diverge between two copies of the schedule.
    fn drive(emu: &mut impl TestBackend, binding: &Binding) -> Vec<DeliveryRecord> {
        let vns: Vec<VnId> = binding.vns().collect();
        let mut log = Vec::new();
        let mut id = 0u64;
        for round in 0..4u64 {
            let now = SimTime::from_micros(round * 900);
            let _ = emu.advance(now);
            for (i, &src) in vns.iter().enumerate() {
                let dst = vns[(i + 3) % vns.len()];
                emu.submit(now, tcp_packet(id, src, dst, 900, now));
                id += 1;
            }
        }
        let mut now = SimTime::ZERO;
        for _ in 0..100_000 {
            let Some(t) = emu.next_wakeup() else { break };
            now = now.max(t);
            for d in emu.advance(now) {
                log.push((d.packet.id.0, d.delivered_at, d.entered_at, d.hops));
            }
        }
        log
    }

    /// The driver operations shared by the two backends under test.
    trait TestBackend {
        fn submit(&mut self, now: SimTime, packet: Packet) -> SubmitOutcome;
        fn next_wakeup(&self) -> Option<SimTime>;
        fn advance(&mut self, now: SimTime) -> Vec<Delivery>;
        fn vn_join(
            &mut self,
            topo: &DistilledTopology,
            vn: VnId,
            location: NodeId,
            at: SimTime,
        ) -> bool;
        fn vn_leave(&mut self, vn: VnId, at: SimTime) -> bool;
    }

    impl TestBackend for MultiCoreEmulator {
        fn submit(&mut self, now: SimTime, packet: Packet) -> SubmitOutcome {
            MultiCoreEmulator::submit(self, now, packet)
        }
        fn next_wakeup(&self) -> Option<SimTime> {
            MultiCoreEmulator::next_wakeup(self)
        }
        fn advance(&mut self, now: SimTime) -> Vec<Delivery> {
            MultiCoreEmulator::advance(self, now)
        }
        fn vn_join(
            &mut self,
            topo: &DistilledTopology,
            vn: VnId,
            location: NodeId,
            at: SimTime,
        ) -> bool {
            MultiCoreEmulator::vn_join(self, topo, vn, location, at)
        }
        fn vn_leave(&mut self, vn: VnId, at: SimTime) -> bool {
            MultiCoreEmulator::vn_leave(self, vn, at)
        }
    }

    impl TestBackend for ParallelEmulator {
        fn submit(&mut self, now: SimTime, packet: Packet) -> SubmitOutcome {
            ParallelEmulator::submit(self, now, packet).expect("workers are healthy")
        }
        fn next_wakeup(&self) -> Option<SimTime> {
            ParallelEmulator::next_wakeup(self)
        }
        fn advance(&mut self, now: SimTime) -> Vec<Delivery> {
            ParallelEmulator::advance(self, now).expect("workers are healthy")
        }
        fn vn_join(
            &mut self,
            topo: &DistilledTopology,
            vn: VnId,
            location: NodeId,
            at: SimTime,
        ) -> bool {
            ParallelEmulator::vn_join(self, topo, vn, location, at)
        }
        fn vn_leave(&mut self, vn: VnId, at: SimTime) -> bool {
            ParallelEmulator::vn_leave(self, vn, at)
        }
    }

    #[test]
    fn single_core_parallel_matches_sequential() {
        let (log, seq_stats, par_stats) = run_both(1);
        assert!(!log.is_empty());
        assert_eq!(seq_stats, par_stats);
        assert_eq!(seq_stats.tunnels_out, 0);
    }

    #[test]
    fn multi_core_parallel_matches_sequential_bit_for_bit() {
        for cores in [2, 3, 4] {
            let (log, seq_stats, par_stats) = run_both(cores);
            assert!(!log.is_empty());
            assert_eq!(seq_stats, par_stats, "{cores}-core stats diverge");
        }
        // The 4-way ring split genuinely tunnels.
        let (_, stats, _) = run_both(4);
        assert!(stats.tunnels_out > 0);
        assert_eq!(stats.tunnels_out, stats.tunnels_in);
    }

    /// Interleaves traffic with leave/rejoin churn: every third VN departs
    /// mid-round (with its descriptors still in flight) and rejoins one
    /// round later. Admission outcomes and delivery streams are recorded
    /// for the bit-identity comparison.
    fn drive_churn(
        emu: &mut impl TestBackend,
        d: &DistilledTopology,
        binding: &Binding,
    ) -> (Vec<DeliveryRecord>, Vec<SubmitOutcome>) {
        let vns: Vec<VnId> = binding.vns().collect();
        let mut log = Vec::new();
        let mut outcomes = Vec::new();
        let mut id = 0u64;
        for round in 0..6u64 {
            let now = SimTime::from_micros(round * 900);
            for delivery in emu.advance(now) {
                log.push((
                    delivery.packet.id.0,
                    delivery.delivered_at,
                    delivery.entered_at,
                    delivery.hops,
                ));
            }
            let churner = vns[((round as usize / 2) * 3) % vns.len()];
            if round % 2 == 0 {
                assert!(emu.vn_leave(churner, now), "{churner} leaves once");
            } else {
                let loc = binding.location(churner).unwrap();
                assert!(emu.vn_join(d, churner, loc, now), "{churner} rejoins");
            }
            for (i, &src) in vns.iter().enumerate() {
                let dst = vns[(i + 3) % vns.len()];
                outcomes.push(emu.submit(now, tcp_packet(id, src, dst, 900, now)));
                id += 1;
            }
        }
        let mut now = SimTime::ZERO;
        for _ in 0..100_000 {
            let Some(t) = emu.next_wakeup() else { break };
            now = now.max(t);
            for delivery in emu.advance(now) {
                log.push((
                    delivery.packet.id.0,
                    delivery.delivered_at,
                    delivery.entered_at,
                    delivery.hops,
                ));
            }
        }
        (log, outcomes)
    }

    #[test]
    fn churn_is_bit_identical_across_backends_and_core_counts() {
        for cores in [1, 2, 4] {
            let topo = ring_topology(&RingParams {
                routers: 4,
                clients_per_router: 2,
                ..RingParams::default()
            });
            let d = distill(&topo, DistillationMode::HopByHop);
            let build = || {
                let matrix = RoutingMatrix::build(&d);
                let binding = Binding::bind(d.vns(), &BindingParams::new(2, cores));
                let pod = greedy_k_clusters(&d, cores, 7);
                (
                    MultiCoreEmulator::new(
                        &d,
                        pod,
                        matrix,
                        &binding,
                        HardwareProfile::unconstrained(),
                        11,
                    ),
                    binding,
                )
            };
            let (mut seq, binding) = build();
            let seq_run = drive_churn(&mut seq, &d, &binding);
            let (seq2, binding2) = build();
            let mut par = ParallelEmulator::from_sequential(seq2);
            let par_run = drive_churn(&mut par, &d, &binding2);
            assert_eq!(seq_run, par_run, "{cores}-core churn run diverges");
            assert_eq!(
                seq.total_stats(),
                par.total_stats(),
                "{cores}-core churn stats diverge"
            );
            // The churn was real: some admissions were refused while a VN
            // was away, yet traffic kept flowing.
            let (log, outcomes) = seq_run;
            assert!(outcomes.contains(&SubmitOutcome::NoRoute));
            assert!(outcomes.iter().filter(|o| o.is_accepted()).count() > log.len() / 2);
            assert!(!log.is_empty());
        }
    }

    #[test]
    fn zero_latency_tunnels_iterate_epochs_like_the_sequential_loop() {
        // Unconstrained profile: tunnel latency zero, so a descriptor can
        // cross cores several times within one advance call (multiple
        // epochs). An 8-hop path split over 2 cores exercises it.
        let (topo, pairs) = path_pairs_topology(&PathPairsParams {
            pairs: 1,
            hops: 8,
            bandwidth: DataRate::from_mbps(10),
            end_to_end_latency: SimDuration::from_millis(10),
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, 2));
        let pod = greedy_k_clusters(&d, 2, 7);
        let mut emu = ParallelEmulator::new(
            &d,
            pod,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            1,
        );
        let src = binding.vn_at(pairs[0].0).unwrap();
        let dst = binding.vn_at(pairs[0].1).unwrap();
        for i in 0..10 {
            let t = SimTime::from_micros(i * 500);
            emu.advance(t).unwrap();
            emu.submit(t, tcp_packet(i, src, dst, 1460, t)).unwrap();
        }
        let mut delivered = 0;
        let mut now = SimTime::ZERO;
        for _ in 0..100_000 {
            let Some(t) = emu.next_wakeup() else { break };
            now = now.max(t);
            delivered += emu.advance(now).unwrap().len();
        }
        assert_eq!(delivered, 10);
        let stats = emu.total_stats();
        assert!(stats.tunnels_out > 0, "split 8-hop path must tunnel");
        assert_eq!(stats.packets_delivered, 10);
    }

    #[test]
    fn epoch_overflowing_a_tunnel_ring_does_not_deadlock_the_mesh() {
        // 1200 disjoint 2-hop paths with the first hop on core 0 and the
        // second on core 1: one scheduler tick emits 1200 tunnel messages
        // core0 -> core1 in a single epoch — more than the ring capacity
        // (1024), so the tail (including the epoch marker) spills. With a
        // nonzero tunnel latency nothing is due after that epoch, the
        // advance exits immediately, and the exit path must still flush
        // the spill or core 1 waits for the marker forever.
        const PATHS: u64 = 1200;
        let (topo, pairs) = path_pairs_topology(&PathPairsParams {
            pairs: PATHS as usize,
            hops: 2,
            bandwidth: DataRate::from_mbps(100),
            end_to_end_latency: SimDuration::from_millis(2),
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        // Bind every VN's entry to core 0 (a one-core binding over a
        // two-core POD) so all 1200 second-hop tunnels land in one epoch.
        let binding = Binding::bind(d.vns(), &BindingParams::new(1, 1));
        let mut owners = vec![CoreId(0); d.pipe_count()];
        for &(a, b) in &pairs {
            let route = matrix.lookup(a, b).expect("disjoint path routes");
            owners[route.pipes[1].index()] = CoreId(1);
        }
        let pod = PipeOwnershipDirectory::from_owners(owners, 2);
        let mut profile = HardwareProfile::unconstrained();
        profile.tunnel_latency = SimDuration::from_micros(20);
        let mut emu = ParallelEmulator::new(&d, pod, matrix, &binding, profile, 3);
        // Every packet enters at t=0 and exits its identical first pipe at
        // the same tick.
        for (i, &(a, b)) in pairs.iter().enumerate() {
            let src = binding.vn_at(a).unwrap();
            let dst = binding.vn_at(b).unwrap();
            let outcome = emu
                .submit(
                    SimTime::ZERO,
                    tcp_packet(i as u64, src, dst, 1000, SimTime::ZERO),
                )
                .unwrap();
            assert!(outcome.is_accepted());
        }
        let mut delivered = 0u64;
        let mut now = SimTime::ZERO;
        for _ in 0..100_000 {
            let Some(t) = emu.next_wakeup() else { break };
            now = now.max(t);
            delivered += emu.advance(now).unwrap().len() as u64;
        }
        assert_eq!(delivered, PATHS);
        let stats = emu.total_stats();
        assert_eq!(stats.tunnels_out, PATHS, "every path crosses cores once");
        assert_eq!(stats.tunnels_in, PATHS);
    }

    #[test]
    fn batched_submits_are_bit_identical_to_per_packet_submits() {
        // submit_batch pipelines the ring round trips but must preserve
        // per-core admission order — outcomes, deliveries and counters all
        // match the one-at-a-time path, across both backends.
        let topo = ring_topology(&RingParams {
            routers: 4,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let build = |cores: usize| {
            let matrix = RoutingMatrix::build(&d);
            let binding = Binding::bind(d.vns(), &BindingParams::new(2, cores));
            let pod = greedy_k_clusters(&d, cores, 7);
            (
                MultiCoreEmulator::new(
                    &d,
                    pod,
                    matrix,
                    &binding,
                    HardwareProfile::unconstrained(),
                    11,
                ),
                binding,
            )
        };
        let make_batch = |binding: &Binding| {
            let vns: Vec<VnId> = binding.vns().collect();
            let mut batch = Vec::new();
            for i in 0..400u64 {
                let now = SimTime::from_micros(i * 3);
                let src = vns[i as usize % vns.len()];
                let dst = vns[(i as usize + 3) % vns.len()];
                batch.push((now, tcp_packet(i, src, dst, 700, now)));
            }
            batch
        };
        for cores in [1usize, 3] {
            // Per-packet reference on the parallel backend.
            let (seq, binding) = build(cores);
            let mut one_by_one = ParallelEmulator::from_sequential(seq);
            let reference: Vec<SubmitOutcome> = make_batch(&binding)
                .into_iter()
                .map(|(now, p)| one_by_one.submit(now, p).unwrap())
                .collect();
            let drain = |emu: &mut ParallelEmulator| {
                let mut log = Vec::new();
                let mut now = SimTime::ZERO;
                for _ in 0..100_000 {
                    let Some(t) = emu.next_wakeup() else { break };
                    now = now.max(t);
                    for d in emu.advance(now).unwrap() {
                        log.push((d.packet.id.0, d.delivered_at, d.hops));
                    }
                }
                log
            };
            let reference_log = drain(&mut one_by_one);
            // Batched run.
            let (seq, binding) = build(cores);
            let mut batched = ParallelEmulator::from_sequential(seq);
            let mut outcomes = Vec::new();
            batched
                .submit_batch(make_batch(&binding), &mut outcomes)
                .unwrap();
            assert_eq!(outcomes, reference, "{cores}-core outcomes diverge");
            assert_eq!(drain(&mut batched), reference_log);
            assert_eq!(batched.total_stats(), one_by_one.total_stats());
            // And the sequential backend's batch shape agrees too.
            let (mut seq, binding) = build(cores);
            let mut seq_outcomes = Vec::new();
            seq.submit_batch(make_batch(&binding), &mut seq_outcomes);
            assert_eq!(seq_outcomes, reference);
        }
    }

    #[test]
    fn mid_run_reconfiguration_is_bit_identical_across_backends() {
        // The reconfiguration primitives themselves — in-place pipe
        // renegotiation, CBR injector installation/removal, incremental
        // reroute after a failure and after the restore — must leave the
        // threaded backend bit-identical to the sequential one: same
        // deliveries in the same order at the same times, same counters
        // (including the CBR injection count).
        use mn_pipe::CbrConfig;
        // Test-local dispatch over the two backends (the production enum
        // lives in the façade crate, which this crate cannot depend on).
        #[allow(clippy::large_enum_variant)]
        enum Either {
            Seq(MultiCoreEmulator),
            Par(ParallelEmulator),
        }
        impl Either {
            fn advance(&mut self, now: SimTime) -> Vec<Delivery> {
                match self {
                    Either::Seq(e) => e.advance(now),
                    Either::Par(e) => e.advance(now).expect("workers are healthy"),
                }
            }
            fn submit(&mut self, now: SimTime, p: Packet) -> SubmitOutcome {
                match self {
                    Either::Seq(e) => e.submit(now, p),
                    Either::Par(e) => e.submit(now, p).expect("workers are healthy"),
                }
            }
            fn next_wakeup(&self) -> Option<SimTime> {
                match self {
                    Either::Seq(e) => e.next_wakeup(),
                    Either::Par(e) => e.next_wakeup(),
                }
            }
            fn update_pipe_attrs(&mut self, pipe: PipeId, attrs: PipeAttrs) -> bool {
                match self {
                    Either::Seq(e) => e.update_pipe_attrs(pipe, attrs),
                    Either::Par(e) => e.update_pipe_attrs(pipe, attrs),
                }
            }
            fn set_pipe_cbr(
                &mut self,
                pipe: PipeId,
                config: Option<CbrConfig>,
                from: SimTime,
            ) -> bool {
                match self {
                    Either::Seq(e) => e.set_pipe_cbr(pipe, config, from),
                    Either::Par(e) => e.set_pipe_cbr(pipe, config, from),
                }
            }
            fn reroute(&mut self, topo: &DistilledTopology, changed: &[PipeId]) -> RouteUpdate {
                match self {
                    Either::Seq(e) => e.reroute(topo, changed),
                    Either::Par(e) => e.reroute(topo, changed),
                }
            }
            fn total_stats(&self) -> CoreStats {
                match self {
                    Either::Seq(e) => e.total_stats(),
                    Either::Par(e) => e.total_stats(),
                }
            }
        }
        let topo = ring_topology(&RingParams {
            routers: 4,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let make_distilled = || distill(&topo, DistillationMode::HopByHop);
        for cores in [1usize, 2, 4] {
            let run = |threaded: bool| {
                let mut d = make_distilled();
                let matrix = RoutingMatrix::build(&d);
                let binding = Binding::bind(d.vns(), &BindingParams::new(2, cores));
                let pod = greedy_k_clusters(&d, cores, 7);
                let seq = MultiCoreEmulator::new(
                    &d,
                    pod,
                    matrix,
                    &binding,
                    HardwareProfile::unconstrained(),
                    11,
                );
                let mut emu = if threaded {
                    Either::Par(ParallelEmulator::from_sequential(seq))
                } else {
                    Either::Seq(seq)
                };
                let vns: Vec<VnId> = binding.vns().collect();
                let victim = {
                    let src = binding.location(vns[0]).unwrap();
                    d.out_pipes(src)[0]
                };
                let original = d.pipe(victim).attrs;
                let mut log = Vec::new();
                let mut id = 0u64;
                for round in 0..12u64 {
                    let now = SimTime::from_millis(round * 2);
                    for d in emu.advance(now) {
                        log.push((d.packet.id.0, d.delivered_at, d.hops));
                    }
                    match round {
                        2 => {
                            // Bandwidth renegotiation in place.
                            let mut slow = original;
                            slow.bandwidth = DataRate::from_mbps(2);
                            assert!(emu.update_pipe_attrs(victim, slow));
                        }
                        4 => {
                            assert!(emu.set_pipe_cbr(
                                victim,
                                Some(CbrConfig::new(
                                    DataRate::from_mbps(1),
                                    mn_util::ByteSize::from_bytes(500),
                                )),
                                now,
                            ));
                        }
                        6 => {
                            let mut dead = original;
                            dead.bandwidth = DataRate::ZERO;
                            *d.pipe_attrs_mut(victim).unwrap() = dead;
                            let _ = emu.reroute(&d, &[victim]);
                        }
                        8 => {
                            *d.pipe_attrs_mut(victim).unwrap() = original;
                            let _ = emu.reroute(&d, &[victim]);
                            assert!(emu.set_pipe_cbr(victim, None, now));
                        }
                        _ => {}
                    }
                    for (i, &src) in vns.iter().enumerate() {
                        let dst = vns[(i + 3) % vns.len()];
                        let _ = emu.submit(now, tcp_packet(id, src, dst, 700, now));
                        id += 1;
                    }
                }
                let mut now = SimTime::from_millis(24);
                let horizon = SimTime::from_millis(200);
                while let Some(t) = emu.next_wakeup() {
                    // CBR was removed at round 8, so the emulator does go
                    // idle; the horizon only bounds a regression.
                    if t > horizon {
                        break;
                    }
                    now = now.max(t);
                    for d in emu.advance(now) {
                        log.push((d.packet.id.0, d.delivered_at, d.hops));
                    }
                }
                (log, emu.total_stats())
            };
            let sequential = run(false);
            let threaded = run(true);
            assert!(!sequential.0.is_empty());
            assert!(sequential.1.cbr_injected > 0, "CBR ran for 4 rounds");
            assert_eq!(
                sequential, threaded,
                "{cores}-core reconfigured runs diverge"
            );
        }
    }

    #[test]
    fn finish_returns_cores_with_their_logs() {
        let topo = ring_topology(&RingParams {
            routers: 4,
            clients_per_router: 1,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, 2));
        let pod = greedy_k_clusters(&d, 2, 3);
        let mut emu = ParallelEmulator::new(
            &d,
            pod,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            5,
        );
        let vns: Vec<VnId> = binding.vns().collect();
        emu.submit(
            SimTime::ZERO,
            tcp_packet(0, vns[0], vns[2], 500, SimTime::ZERO),
        )
        .unwrap();
        let mut now = SimTime::ZERO;
        let mut delivered = 0;
        for _ in 0..10_000 {
            let Some(t) = emu.next_wakeup() else { break };
            now = now.max(t);
            delivered += emu.advance(now).unwrap().len();
        }
        assert_eq!(delivered, 1);
        let cores = emu.finish();
        assert_eq!(cores.len(), 2);
        let recorded: u64 = cores.iter().map(|c| c.accuracy().delivered()).sum();
        assert_eq!(recorded, 1, "the delivery was recorded on some core");
    }

    #[test]
    fn affinity_hints_flow_from_the_binding() {
        let topo = ring_topology(&RingParams {
            routers: 4,
            clients_per_router: 1,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, 2).with_affinity_base(8));
        let pod = greedy_k_clusters(&d, 2, 3);
        let emu = ParallelEmulator::new(
            &d,
            pod,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            5,
        );
        assert_eq!(emu.affinity_hint(CoreId(0)), Some(8));
        assert_eq!(emu.affinity_hint(CoreId(1)), Some(9));
        assert_eq!(emu.affinity_hint(CoreId(7)), None);
    }

    /// A 2-core emulator over the standard ring fixture, for the failure
    /// and chaos tests.
    fn two_core_emulator() -> (ParallelEmulator, Binding) {
        let topo = ring_topology(&RingParams {
            routers: 4,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, 2));
        let pod = greedy_k_clusters(&d, 2, 7);
        let emu = ParallelEmulator::new(
            &d,
            pod,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            11,
        );
        (emu, binding)
    }

    #[test]
    fn worker_panic_surfaces_as_typed_error_on_the_wait_path() {
        let (mut emu, binding) = two_core_emulator();
        assert!(emu.set_chaos(CoreId(1), ChaosPlan::new().panic_at_epoch(1)));
        // The advance drives every worker into its epoch loop; worker 1's
        // injected panic must surface as a structured error — not a hang
        // (the old behavior when a peer held the barrier) and not a
        // coordinator panic.
        let err = emu.advance(SimTime::from_millis(1)).unwrap_err();
        match &err {
            EmuError::WorkerFailure {
                core,
                cause: FailureCause::Panicked(msg),
            } => {
                assert_eq!(core.index(), 1, "the failing core is attributed");
                assert!(msg.contains("chaos"), "panic payload preserved: {msg}");
            }
            other => panic!("expected a panicked worker failure, got {other:?}"),
        }
        // The emulator is poisoned: every path reports the same failure.
        assert_eq!(emu.last_failure(), Some(&err));
        assert_eq!(emu.advance(SimTime::from_millis(2)).unwrap_err(), err);
        let vns: Vec<VnId> = binding.vns().collect();
        let now = SimTime::from_millis(2);
        let packet = tcp_packet(9, vns[0], vns[3], 500, now);
        assert_eq!(emu.submit(now, packet).unwrap_err(), err);
        let mut outcomes = Vec::new();
        assert!(emu.submit_batch(Vec::new(), &mut outcomes).is_err());
        assert!(emu.snapshot().is_err());
        // Dropping `emu` here must not hang: the abort flag released the
        // surviving worker from its epoch wait.
    }

    #[test]
    fn dead_worker_surfaces_as_typed_error_on_the_send_path() {
        let (mut emu, _binding) = two_core_emulator();
        assert!(emu.set_chaos(CoreId(1), ChaosPlan::new().panic_on_next_command()));
        // Flood fire-and-forget commands: the first SetRoutes kills worker
        // 1, the rest pile into its command ring until it fills — the point
        // where the old code asserted (aborting the process) and the new
        // code must record a typed failure instead.
        for _ in 0..600 {
            let matrix = emu.routing().clone();
            emu.set_routing(matrix);
            if emu.last_failure().is_some() {
                break;
            }
        }
        match emu.last_failure() {
            Some(EmuError::WorkerFailure {
                core,
                cause: FailureCause::Panicked(msg),
            }) => {
                assert_eq!(core.index(), 1);
                assert!(msg.contains("chaos"), "panic payload preserved: {msg}");
            }
            other => panic!("expected a panicked worker failure, got {other:?}"),
        }
        // The wait path reports the same poisoned state.
        assert!(emu.advance(SimTime::from_millis(1)).is_err());
    }

    #[test]
    fn stall_watchdog_converts_a_wedged_worker_into_an_error() {
        let (mut emu, _binding) = two_core_emulator();
        emu.set_stall_timeout(Some(Duration::from_millis(40)));
        assert!(emu.set_chaos(
            CoreId(1),
            ChaosPlan::new().stall_at_epoch(1, Duration::from_millis(400)),
        ));
        // Worker 1 sleeps through the epoch barrier; without the watchdog
        // the coordinator would spin forever on a thread that is alive but
        // making no progress. The error may name either core — the barrier
        // couples them, so the waited-on worker freezes too.
        let err = emu.advance(SimTime::from_millis(1)).unwrap_err();
        assert!(
            matches!(
                err,
                EmuError::WorkerFailure {
                    cause: FailureCause::Stalled { .. },
                    ..
                }
            ),
            "expected a stall, got {err:?}"
        );
        assert!(emu.last_failure().is_some());
        // Drop completes once the sleeper wakes and drains its Finish.
    }

    /// Drives a deterministic partial workload, leaving descriptors (and,
    /// on multi-core splits, tunnels) in flight.
    fn drive_partial(emu: &mut impl TestBackend, binding: &Binding) {
        let vns: Vec<VnId> = binding.vns().collect();
        let mut id = 0u64;
        for round in 0..3u64 {
            let now = SimTime::from_micros(round * 700);
            emu.advance(now);
            for (i, &src) in vns.iter().enumerate() {
                let dst = vns[(i + 3) % vns.len()];
                emu.submit(now, tcp_packet(id, src, dst, 900, now));
                id += 1;
            }
        }
        emu.advance(SimTime::from_micros(2100));
    }

    /// Drains an emulation to idle, returning the delivery record stream.
    fn finish_run(emu: &mut impl TestBackend) -> Vec<DeliveryRecord> {
        let mut log = Vec::new();
        let mut now = SimTime::ZERO;
        for _ in 0..100_000 {
            let Some(t) = emu.next_wakeup() else { break };
            now = now.max(t);
            for d in emu.advance(now) {
                log.push((d.packet.id.0, d.delivered_at, d.entered_at, d.hops));
            }
        }
        log
    }

    #[test]
    fn parallel_snapshot_is_byte_identical_to_sequential_and_resumes_exactly() {
        for cores in [1usize, 2, 4] {
            let topo = ring_topology(&RingParams {
                routers: 4,
                clients_per_router: 2,
                ..RingParams::default()
            });
            let d = distill(&topo, DistillationMode::HopByHop);
            let build = || {
                let matrix = RoutingMatrix::build(&d);
                let binding = Binding::bind(d.vns(), &BindingParams::new(2, cores));
                let pod = greedy_k_clusters(&d, cores, 7);
                (
                    MultiCoreEmulator::new(
                        &d,
                        pod,
                        matrix,
                        &binding,
                        HardwareProfile::unconstrained(),
                        11,
                    ),
                    binding,
                )
            };
            // Identical partial runs on both backends.
            let (mut seq, binding) = build();
            drive_partial(&mut seq, &binding);
            let seq_snap = seq.snapshot();
            let (seq2, binding2) = build();
            let mut par = ParallelEmulator::from_sequential(seq2);
            drive_partial(&mut par, &binding2);
            let par_snap = par.snapshot().unwrap();
            // The canonical encoding makes the two checkpoints equal down
            // to the byte, so either can restore into either backend.
            assert_eq!(
                seq_snap.to_bytes(),
                par_snap.to_bytes(),
                "{cores}-core snapshots diverge across backends"
            );
            // Resuming the threaded restore finishes bit-identically to the
            // uninterrupted sequential run.
            let mut restored = ParallelEmulator::restore(&par_snap).unwrap();
            let expected = finish_run(&mut seq);
            let resumed = finish_run(&mut restored);
            assert!(!expected.is_empty(), "the tail of the run delivers");
            assert_eq!(expected, resumed, "{cores}-core resumed tail diverges");
            assert_eq!(seq.total_stats(), restored.total_stats());
        }
    }
}
