//! The ad-hoc wireless emulation extension (§5 of the paper).
//!
//! Two properties distinguish wireless emulation from the wired pipe model:
//!
//! * **broadcast**: a transmission consumes bandwidth at *every* node within
//!   communication range of the sender, not just at the addressed receiver;
//! * **mobility**: nodes move, so the set of reachable neighbours — in
//!   effect, the topology — changes continuously rather than exceptionally.
//!
//! The paper states the ModelNet extension supports both but omits a detailed
//! evaluation; this module provides the equivalent machinery: a shared-medium
//! cell emulator in which each node's radio is a bandwidth queue charged for
//! every frame it can hear, plus a waypoint mobility model that re-derives
//! the neighbour sets as positions evolve.

use std::collections::HashMap;

use rand::Rng;
use serde::{Deserialize, Serialize};

use mn_packet::VnId;
use mn_util::rngs::derived_rng;
use mn_util::{ByteSize, DataRate, SimDuration, SimTime};

/// A node's position on the plane, in metres.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Position {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
}

impl Position {
    /// Euclidean distance to another position.
    pub fn distance(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// Configuration of the shared wireless medium.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct WirelessParams {
    /// Radio bit rate (e.g. 11 Mb/s for 802.11b).
    pub bit_rate: DataRate,
    /// Communication range in metres.
    pub range: f64,
    /// Per-frame loss probability once within range.
    pub loss_rate: f64,
    /// Size of the arena (square side, metres) for the mobility model.
    pub arena: f64,
    /// Maximum node speed (metres/second) for the waypoint model.
    pub max_speed: f64,
}

impl Default for WirelessParams {
    fn default() -> Self {
        WirelessParams {
            bit_rate: DataRate::from_mbps(11),
            range: 250.0,
            loss_rate: 0.01,
            arena: 1000.0,
            max_speed: 5.0,
        }
    }
}

/// Outcome of a broadcast transmission.
#[derive(Debug, Clone)]
pub struct TransmissionResult {
    /// Nodes that received the frame.
    pub received_by: Vec<VnId>,
    /// Nodes in range that lost the frame.
    pub lost_by: Vec<VnId>,
    /// Time the medium finishes carrying the frame (busy-until).
    pub medium_free_at: SimTime,
    /// Whether the frame was deferred because the medium was busy.
    pub deferred: bool,
}

#[derive(Debug, Clone)]
struct WirelessNode {
    position: Position,
    waypoint: Position,
    speed: f64,
    bytes_heard: u64,
}

/// A single wireless cell: a set of mobile nodes sharing one medium.
#[derive(Debug)]
pub struct WirelessCell {
    params: WirelessParams,
    nodes: HashMap<VnId, WirelessNode>,
    medium_busy_until: SimTime,
    last_mobility_update: SimTime,
    rng: rand::rngs::StdRng,
    frames_sent: u64,
    frames_received: u64,
}

impl WirelessCell {
    /// Creates an empty cell.
    pub fn new(params: WirelessParams, seed: u64) -> Self {
        WirelessCell {
            params,
            nodes: HashMap::new(),
            medium_busy_until: SimTime::ZERO,
            last_mobility_update: SimTime::ZERO,
            rng: derived_rng(seed, 0x217E),
            frames_sent: 0,
            frames_received: 0,
        }
    }

    /// Adds a node at a random position with a random waypoint.
    pub fn add_node(&mut self, vn: VnId) -> Position {
        let pos = Position {
            x: self.rng.gen_range(0.0..self.params.arena),
            y: self.rng.gen_range(0.0..self.params.arena),
        };
        let waypoint = Position {
            x: self.rng.gen_range(0.0..self.params.arena),
            y: self.rng.gen_range(0.0..self.params.arena),
        };
        let speed = self.rng.gen_range(0.1..self.params.max_speed.max(0.2));
        self.nodes.insert(
            vn,
            WirelessNode {
                position: pos,
                waypoint,
                speed,
                bytes_heard: 0,
            },
        );
        pos
    }

    /// Adds a node at an explicit position (stationary until it picks a new
    /// waypoint).
    pub fn add_node_at(&mut self, vn: VnId, position: Position) {
        self.nodes.insert(
            vn,
            WirelessNode {
                position,
                waypoint: position,
                speed: 0.0,
                bytes_heard: 0,
            },
        );
    }

    /// Number of nodes in the cell.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Current position of a node.
    pub fn position(&self, vn: VnId) -> Option<Position> {
        self.nodes.get(&vn).map(|n| n.position)
    }

    /// Total frames offered to the medium.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Total successful receptions (across all receivers).
    pub fn frames_received(&self) -> u64 {
        self.frames_received
    }

    /// Moves every node toward its waypoint for the time elapsed since the
    /// last update; nodes that reach their waypoint pick a fresh one
    /// (random-waypoint mobility).
    pub fn update_mobility(&mut self, now: SimTime) {
        let dt = now.duration_since(self.last_mobility_update).as_secs_f64();
        self.last_mobility_update = now;
        if dt <= 0.0 {
            return;
        }
        let arena = self.params.arena;
        for node in self.nodes.values_mut() {
            let dx = node.waypoint.x - node.position.x;
            let dy = node.waypoint.y - node.position.y;
            let dist = (dx * dx + dy * dy).sqrt();
            let step = node.speed * dt;
            if dist <= step || dist < 1e-9 {
                node.position = node.waypoint;
                node.waypoint = Position {
                    x: self.rng.gen_range(0.0..arena),
                    y: self.rng.gen_range(0.0..arena),
                };
            } else {
                node.position.x += dx / dist * step;
                node.position.y += dy / dist * step;
            }
        }
    }

    /// Nodes currently within communication range of `vn` (excluding itself).
    pub fn neighbours(&self, vn: VnId) -> Vec<VnId> {
        let Some(me) = self.nodes.get(&vn) else {
            return Vec::new();
        };
        self.nodes
            .iter()
            .filter(|(&other, n)| {
                other != vn && me.position.distance(&n.position) <= self.params.range
            })
            .map(|(&other, _)| other)
            .collect()
    }

    /// Returns `true` if the connectivity graph over current positions is a
    /// single connected component.
    pub fn is_connected(&self) -> bool {
        if self.nodes.is_empty() {
            return true;
        }
        let ids: Vec<VnId> = self.nodes.keys().copied().collect();
        let mut seen = std::collections::HashSet::new();
        let mut stack = vec![ids[0]];
        seen.insert(ids[0]);
        while let Some(u) = stack.pop() {
            for v in self.neighbours(u) {
                if seen.insert(v) {
                    stack.push(v);
                }
            }
        }
        seen.len() == self.nodes.len()
    }

    /// Broadcasts a frame of `size` from `sender` at time `now`.
    ///
    /// The transmission consumes the shared medium for the frame's airtime
    /// (so concurrent senders defer), charges every in-range node's "heard
    /// bytes" account, and delivers to each in-range node subject to the
    /// configured loss rate.
    pub fn transmit(&mut self, now: SimTime, sender: VnId, size: ByteSize) -> TransmissionResult {
        self.update_mobility(now);
        self.frames_sent += 1;
        let deferred = now < self.medium_busy_until;
        let start = now.max(self.medium_busy_until);
        let airtime = self.params.bit_rate.transmission_time(size);
        self.medium_free_at_update(start, airtime);

        let in_range = self.neighbours(sender);
        let mut received_by = Vec::new();
        let mut lost_by = Vec::new();
        for vn in in_range {
            if let Some(node) = self.nodes.get_mut(&vn) {
                node.bytes_heard += size.as_bytes();
            }
            if self.rng.gen::<f64>() < self.params.loss_rate {
                lost_by.push(vn);
            } else {
                self.frames_received += 1;
                received_by.push(vn);
            }
        }
        TransmissionResult {
            received_by,
            lost_by,
            medium_free_at: self.medium_busy_until,
            deferred,
        }
    }

    fn medium_free_at_update(&mut self, start: SimTime, airtime: SimDuration) {
        self.medium_busy_until = start + airtime;
    }

    /// Bytes a node has overheard (its share of the broadcast medium cost).
    pub fn bytes_heard(&self, vn: VnId) -> u64 {
        self.nodes.get(&vn).map_or(0, |n| n.bytes_heard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cell() -> WirelessCell {
        let mut cell = WirelessCell::new(
            WirelessParams {
                range: 300.0,
                loss_rate: 0.0,
                ..WirelessParams::default()
            },
            1,
        );
        cell.add_node_at(VnId(0), Position { x: 0.0, y: 0.0 });
        cell.add_node_at(VnId(1), Position { x: 100.0, y: 0.0 });
        cell.add_node_at(VnId(2), Position { x: 250.0, y: 0.0 });
        cell.add_node_at(VnId(3), Position { x: 900.0, y: 900.0 });
        cell
    }

    #[test]
    fn neighbours_respect_range() {
        let cell = small_cell();
        let mut n0 = cell.neighbours(VnId(0));
        n0.sort();
        assert_eq!(n0, vec![VnId(1), VnId(2)]);
        assert!(cell.neighbours(VnId(3)).is_empty());
        assert!(!cell.is_connected());
    }

    #[test]
    fn broadcast_charges_every_listener() {
        let mut cell = small_cell();
        let result = cell.transmit(SimTime::ZERO, VnId(0), ByteSize::from_bytes(1000));
        assert_eq!(result.received_by.len(), 2);
        assert!(result.lost_by.is_empty());
        assert!(!result.deferred);
        assert_eq!(cell.bytes_heard(VnId(1)), 1000);
        assert_eq!(cell.bytes_heard(VnId(2)), 1000);
        assert_eq!(cell.bytes_heard(VnId(3)), 0);
    }

    #[test]
    fn medium_serialises_concurrent_senders() {
        let mut cell = small_cell();
        let first = cell.transmit(SimTime::ZERO, VnId(0), ByteSize::from_bytes(1375));
        // 1375 B at 11 Mb/s = 1 ms of airtime.
        assert_eq!(first.medium_free_at, SimTime::from_millis(1));
        let second = cell.transmit(
            SimTime::from_micros(200),
            VnId(1),
            ByteSize::from_bytes(1375),
        );
        assert!(second.deferred);
        assert_eq!(second.medium_free_at, SimTime::from_millis(2));
    }

    #[test]
    fn loss_rate_drops_some_receptions() {
        let mut cell = WirelessCell::new(
            WirelessParams {
                loss_rate: 0.5,
                range: 500.0,
                ..WirelessParams::default()
            },
            7,
        );
        cell.add_node_at(VnId(0), Position { x: 0.0, y: 0.0 });
        cell.add_node_at(VnId(1), Position { x: 10.0, y: 0.0 });
        let mut received = 0;
        for i in 0..1000u64 {
            let r = cell.transmit(SimTime::from_millis(i), VnId(0), ByteSize::from_bytes(100));
            received += r.received_by.len();
        }
        let rate = received as f64 / 1000.0;
        assert!((rate - 0.5).abs() < 0.06, "reception rate {rate}");
    }

    #[test]
    fn mobility_moves_nodes_and_changes_topology() {
        let mut cell = WirelessCell::new(WirelessParams::default(), 3);
        for i in 0..20 {
            cell.add_node(VnId(i));
        }
        let before: Vec<Position> = (0..20).map(|i| cell.position(VnId(i)).unwrap()).collect();
        cell.update_mobility(SimTime::from_secs(60));
        let moved = (0..20)
            .filter(|&i| cell.position(VnId(i as u32)).unwrap().distance(&before[i]) > 1.0)
            .count();
        assert!(
            moved >= 15,
            "after a minute most nodes should have moved ({moved}/20)"
        );
    }

    #[test]
    fn node_count_and_positions() {
        let mut cell = WirelessCell::new(WirelessParams::default(), 9);
        let p = cell.add_node(VnId(0));
        assert_eq!(cell.node_count(), 1);
        assert!(p.x >= 0.0 && p.x <= 1000.0);
        assert_eq!(cell.position(VnId(1)), None);
    }
}
