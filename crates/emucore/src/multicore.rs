//! Multi-core emulation: several cores cooperating through the pipe
//! ownership directory.
//!
//! When the next pipe on a descriptor's route is owned by a different core,
//! the current core tunnels the descriptor to the owner (found by a POD
//! lookup). The tunnel costs CPU on both sides, occupies the physical
//! inter-core link, and adds the switch-crossing latency — which is exactly
//! why Table 1 shows aggregate throughput degrading as the fraction of
//! cross-core traffic grows. With payload caching enabled only the
//! descriptor, not the packet contents, crosses the core network.

use std::sync::Arc;

use mn_assign::{Binding, CoreId, PipeOwnershipDirectory};
use mn_distill::{DistilledTopology, PipeAttrs, PipeId};
use mn_packet::{Packet, VnId};
use mn_pipe::CbrConfig;
use mn_routing::{RouteTable, RouteUpdate, RoutingMatrix};
use mn_topology::NodeId;
use mn_util::{DataRate, SimDuration, SimTime, TimerWheel};

use crate::core::{CoreStats, EmulatorCore, IngressOutcome, TickOutput};
use crate::descriptor::{Delivery, Descriptor};
use crate::fluid::FluidState;
use crate::hardware::HardwareProfile;

/// The backend-independent half of an incremental routing change: updates
/// the matrix in place against the mutated `topo`, and — only if any route
/// actually changed — builds the next route-table generation and swaps it
/// into `routes`. This is the copy-on-write publish: the "clone" is
/// structural (row shards, route chunks and the content index are shared
/// by reference, so it costs O(endpoints) shard handles, not O(endpoints²)
/// entries), `rewire_in_place` then replaces only the row shards whose
/// routes changed, and cores still reading the previous `Arc` keep a
/// consistent table until they pick up the new one. Both execution
/// backends call this and then distribute the new `Arc` their own way, so
/// the sequence (and with it the bit-identity contract) cannot drift
/// between them.
pub(crate) fn apply_route_change(
    matrix: &mut RoutingMatrix,
    routes: &mut Arc<RouteTable>,
    locations: &[NodeId],
    topo: &DistilledTopology,
    changed: &[PipeId],
) -> RouteUpdate {
    let update = matrix.update_pipes(topo, changed);
    if !update.is_empty() {
        let mut table = (**routes).clone();
        table.rewire_in_place(matrix, locations, &update.changed_pairs);
        *routes = Arc::new(table);
    }
    update
}

/// The backend-independent half of a VN join: ensure the location has a
/// source tree in the matrix (one component-scoped Dijkstra if it does
/// not), bind the endpoint's row shard into the next route-table
/// generation copy-on-write, and assign an entry core (least-loaded,
/// lowest index — a pure function of the load vector, so identical churn
/// histories yield identical assignments on both backends). Everything is
/// coordinator-side; workers only ever see the published `Arc`.
///
/// Returns `false` (changing nothing) for an id that is already active or
/// not the next fresh index, or a location outside the topology.
#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_vn_join(
    matrix: &mut RoutingMatrix,
    routes: &mut Arc<RouteTable>,
    vn_location: &mut Vec<NodeId>,
    vn_entry_core: &mut Vec<CoreId>,
    vn_active: &mut Vec<bool>,
    core_load: &mut [u32],
    topo: &DistilledTopology,
    vn: VnId,
    location: NodeId,
) -> bool {
    let idx = vn.index();
    if idx > vn_location.len() || location.index() >= topo.node_count() {
        return false;
    }
    if idx < vn_location.len() && vn_active[idx] {
        return false;
    }
    let added_tree = if matrix.vn_index(location).is_none() {
        if !matrix.add_source(topo, location) {
            return false;
        }
        true
    } else {
        false
    };
    let mut next = (**routes).clone();
    if !next.bind_endpoint(matrix, idx, location) {
        if added_tree {
            matrix.remove_source(location);
        }
        return false;
    }
    let entry = CoreId(mn_assign::least_loaded(core_load));
    core_load[entry.index()] += 1;
    if idx == vn_location.len() {
        vn_location.push(location);
        vn_entry_core.push(entry);
        vn_active.push(true);
    } else {
        vn_location[idx] = location;
        vn_entry_core[idx] = entry;
        vn_active[idx] = true;
    }
    *routes = Arc::new(next);
    true
}

/// The backend-independent half of a VN leave: the endpoint's row shard is
/// cleared in the next route-table generation (new traffic from it fails)
/// and its entry-core load slot is released; if it was the last endpoint
/// at its location the matrix source tree is removed too. Routes *toward*
/// the departed endpoint — and every interned `RouteId` — are retained, so
/// descriptors already in flight drain deterministically on their
/// pre-departure routes. Returns `false` for an id that is not active.
pub(crate) fn apply_vn_leave(
    matrix: &mut RoutingMatrix,
    routes: &mut Arc<RouteTable>,
    vn_location: &[NodeId],
    vn_entry_core: &[CoreId],
    vn_active: &mut [bool],
    core_load: &mut [u32],
    vn: VnId,
) -> bool {
    let idx = vn.index();
    if idx >= vn_active.len() || !vn_active[idx] {
        return false;
    }
    let mut next = (**routes).clone();
    if !next.unbind_endpoint(idx) {
        return false;
    }
    vn_active[idx] = false;
    core_load[vn_entry_core[idx].index()] -= 1;
    if !next.has_endpoints_at(vn_location[idx]) {
        matrix.remove_source(vn_location[idx]);
    }
    *routes = Arc::new(next);
    true
}

/// Result of submitting a packet to the emulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The packet entered the emulated network.
    Accepted,
    /// The packet was dropped physically at the entry core's NIC (overload).
    PhysicalDrop,
    /// The packet was dropped by the first pipe (virtual drop).
    VirtualDrop,
    /// The packet's source or destination VN has no location or no route.
    NoRoute,
}

impl SubmitOutcome {
    /// Returns `true` if the packet entered the emulation.
    pub fn is_accepted(&self) -> bool {
        matches!(self, SubmitOutcome::Accepted)
    }
}

/// The state a [`MultiCoreEmulator`] hands over when it is converted into a
/// parallel backend.
pub(crate) struct EmulatorParts {
    pub cores: Vec<EmulatorCore>,
    pub pod: PipeOwnershipDirectory,
    pub matrix: RoutingMatrix,
    pub routes: Arc<RouteTable>,
    pub vn_location: Vec<NodeId>,
    pub vn_entry_core: Vec<CoreId>,
    pub vn_active: Vec<bool>,
    pub core_load: Vec<u32>,
    pub tunnels_in_flight: TimerWheel<(CoreId, Descriptor)>,
    pub local_deliveries: Vec<Delivery>,
    pub profile: HardwareProfile,
    pub fluid: FluidState,
}

/// The set of cooperating core nodes emulating one distilled topology.
#[derive(Debug)]
pub struct MultiCoreEmulator {
    cores: Vec<EmulatorCore>,
    pod: PipeOwnershipDirectory,
    matrix: RoutingMatrix,
    /// Interned routes plus the sharded VN-pair -> route row shards, shared
    /// with every core. Republished copy-on-write by
    /// [`MultiCoreEmulator::set_routing`] / [`MultiCoreEmulator::reroute`];
    /// untouched row shards keep the same allocation across generations.
    routes: Arc<RouteTable>,
    /// Topology location of each VN, indexed densely by `VnId`. An id at or
    /// beyond the table is an unknown VN and yields `SubmitOutcome::NoRoute`.
    vn_location: Vec<NodeId>,
    /// Entry core of each VN, indexed densely by `VnId`.
    vn_entry_core: Vec<CoreId>,
    /// Live-membership flag of each VN, indexed densely by `VnId`. A VN
    /// that left keeps its (stale) location and entry-core entries for
    /// geometry consistency; only this flag gates traffic.
    vn_active: Vec<bool>,
    /// Number of active VNs entering through each core — the load vector
    /// the join path's least-loaded entry-core assignment reads.
    core_load: Vec<u32>,
    /// Tunnel descriptors in flight between cores, keyed by arrival time on
    /// the same O(1) timing wheel the cores schedule pipes on.
    tunnels_in_flight: TimerWheel<(CoreId, Descriptor)>,
    /// Same-location packets that bypass the core network entirely.
    local_deliveries: Vec<Delivery>,
    /// Reusable per-core scheduler-pass buffer; capacity persists across
    /// [`MultiCoreEmulator::advance`] calls so the steady state allocates
    /// nothing.
    tick_buf: TickOutput,
    profile: HardwareProfile,
    /// Coordinator-owned fluid flow state. Rate recomputes happen here (at
    /// epoch boundaries and on flow/topology mutations) and the changed
    /// per-pipe demands are pushed to the owning cores, so both execution
    /// backends observe identical piecewise-constant residuals.
    fluid: FluidState,
}

impl MultiCoreEmulator {
    /// Builds the emulator: installs each pipe on the core the POD assigns it
    /// to, and records each VN's topology location and entry core from the
    /// binding.
    ///
    /// # Panics
    ///
    /// Panics if the POD covers a different number of pipes than the
    /// distilled topology contains.
    pub fn new(
        topo: &DistilledTopology,
        pod: PipeOwnershipDirectory,
        matrix: RoutingMatrix,
        binding: &Binding,
        profile: HardwareProfile,
        seed: u64,
    ) -> Self {
        assert_eq!(
            pod.pipe_count(),
            topo.pipe_count(),
            "POD must cover every pipe of the distilled topology"
        );
        // Dense per-VN tables: `Binding` numbers VNs 0..vn_count, so plain
        // vectors indexed by `VnId::index` cover every bound VN.
        let vn_location: Vec<NodeId> = binding
            .vns()
            .map(|vn| binding.location(vn).expect("binding locates every VN"))
            .collect();
        let vn_entry_core: Vec<CoreId> = binding
            .vns()
            .map(|vn| {
                // Clamp to the actual core count: a binding may reference more
                // cores than the POD uses (e.g. single-core emulation of a
                // multi-edge cluster).
                let core = binding.entry_core(vn).unwrap_or(CoreId(0));
                CoreId(core.index() % pod.core_count())
            })
            .collect();
        let routes = Arc::new(RouteTable::build(&matrix, &vn_location));
        let vn_active = vec![true; vn_location.len()];
        let mut core_load = vec![0u32; pod.core_count()];
        for core in &vn_entry_core {
            core_load[core.index()] += 1;
        }
        let mut cores: Vec<EmulatorCore> = (0..pod.core_count())
            .map(|c| {
                EmulatorCore::new(
                    CoreId(c),
                    profile,
                    seed.wrapping_add(c as u64),
                    routes.clone(),
                    topo.pipe_count(),
                )
            })
            .collect();
        let mut capacity_bps = vec![0u64; topo.pipe_count()];
        for (pipe_id, pipe) in topo.pipes() {
            let owner = pod.owner(pipe_id);
            cores[owner.index()].install_pipe(pipe_id, pipe.attrs);
            capacity_bps[pipe_id.index()] = pipe.attrs.bandwidth.as_bps();
        }
        MultiCoreEmulator {
            cores,
            pod,
            matrix,
            routes,
            vn_location,
            vn_entry_core,
            vn_active,
            core_load,
            tunnels_in_flight: TimerWheel::new(),
            local_deliveries: Vec::new(),
            tick_buf: TickOutput::default(),
            profile,
            fluid: FluidState::new(capacity_bps),
        }
    }

    /// Convenience constructor for single-core emulation.
    pub fn single_core(
        topo: &DistilledTopology,
        matrix: RoutingMatrix,
        binding: &Binding,
        profile: HardwareProfile,
        seed: u64,
    ) -> Self {
        let pod = PipeOwnershipDirectory::single_core(topo.pipe_count());
        Self::new(topo, pod, matrix, binding, profile, seed)
    }

    /// Number of cooperating cores.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Decomposes the emulator into the pieces the parallel backend takes
    /// ownership of (see [`crate::ParallelEmulator::from_sequential`]).
    pub(crate) fn into_parts(self) -> EmulatorParts {
        EmulatorParts {
            cores: self.cores,
            pod: self.pod,
            matrix: self.matrix,
            routes: self.routes,
            vn_location: self.vn_location,
            vn_entry_core: self.vn_entry_core,
            vn_active: self.vn_active,
            core_load: self.core_load,
            tunnels_in_flight: self.tunnels_in_flight,
            local_deliveries: self.local_deliveries,
            profile: self.profile,
            fluid: self.fluid,
        }
    }

    /// Access to one core's counters.
    pub fn core_stats(&self, core: CoreId) -> Option<&CoreStats> {
        self.cores.get(core.index()).map(|c| c.stats())
    }

    /// Aggregated counters across cores (an associative
    /// [`CoreStats::merge`] fold, so it matches what the parallel backend's
    /// per-thread stats drain reports).
    pub fn total_stats(&self) -> CoreStats {
        self.cores
            .iter()
            .fold(CoreStats::default(), |acc, c| acc.merged(c.stats()))
    }

    /// Access to the cores themselves (accuracy logs, utilisation, pipes).
    pub fn cores(&self) -> &[EmulatorCore] {
        &self.cores
    }

    /// The routing matrix in force.
    pub fn routing(&self) -> &RoutingMatrix {
        &self.matrix
    }

    /// The interned route table in force.
    pub fn route_table(&self) -> &RouteTable {
        &self.routes
    }

    /// Replaces the routing matrix (after a failure recomputation) and
    /// rebuilds the interned route table on every core. The rebuild is
    /// explicit and total — there is no incremental cache whose stale entries
    /// could survive a routing change — but still structurally shared: the
    /// retained route chunks and the content-dedup index carry over by
    /// reference instead of being re-interned. Route ids handed out before
    /// the rebuild stay valid, so descriptors already in flight finish on
    /// their pre-failure routes — exactly like packets already inside the
    /// paper's cores.
    pub fn set_routing(&mut self, matrix: RoutingMatrix) {
        self.matrix = matrix;
        self.routes = Arc::new(RouteTable::rebuild(
            &self.routes,
            &self.matrix,
            &self.vn_location,
        ));
        for core in &mut self.cores {
            core.set_route_table(self.routes.clone());
        }
        self.fluid.mark_routes_dirty();
        if self.fluid.has_flows() {
            let at = self.fluid.clock();
            self.recompute_fluid(at);
        }
    }

    /// Re-solves the fluid fair share at `at` and pushes every changed
    /// per-pipe demand to the owning core. Called on every fluid mutation
    /// and at each epoch boundary; the cores see only the piecewise-constant
    /// per-pipe totals.
    fn recompute_fluid(&mut self, at: SimTime) {
        let changed = self.fluid.recompute(at, &self.routes);
        for &(pipe, bps) in changed {
            let owner = self
                .pod
                .get_owner(pipe)
                .expect("fluid routes reference pipes covered by the POD");
            let _ =
                self.cores[owner.index()].set_pipe_fluid_demand(pipe, DataRate::from_bps(bps), at);
        }
    }

    /// Updates a pipe's emulation parameters on whichever core owns it. The
    /// fluid model tracks the new capacity; live flows re-share immediately.
    pub fn update_pipe_attrs(&mut self, pipe: PipeId, attrs: PipeAttrs) -> bool {
        let Some(owner) = self.pod.get_owner(pipe) else {
            return false;
        };
        if !self.cores[owner.index()].update_pipe_attrs(pipe, attrs) {
            return false;
        }
        self.fluid.set_capacity(pipe, attrs.bandwidth);
        if self.fluid.has_flows() {
            let at = self.fluid.clock();
            self.recompute_fluid(at);
        }
        true
    }

    /// Installs, replaces or (with `None`) removes the CBR background
    /// injector on a pipe, on whichever core owns it. Injection starts at
    /// `from` (the paper's hop-by-hop compensation for distilled-away
    /// links, and the cross-traffic half of runtime reconfiguration).
    pub fn set_pipe_cbr(&mut self, pipe: PipeId, config: Option<CbrConfig>, from: SimTime) -> bool {
        let Some(owner) = self.pod.get_owner(pipe) else {
            return false;
        };
        if !self.cores[owner.index()].set_pipe_cbr(pipe, config, from) {
            return false;
        }
        // The bandwidth half of the episode is a fixed-rate fluid demand on
        // the pipe; degenerate configs (which inject nothing) carry none.
        let rate = config.and_then(|c| c.interval().map(|_| c.rate));
        self.fluid.set_cbr(pipe, rate, from);
        self.recompute_fluid(from);
        true
    }

    /// Installs (or clears, with `None`) a distillation-compensation rate on
    /// `pipe`: a fixed-rate background demand standing in for the contention
    /// of the hops the pipe collapsed (§4.1, "background CBR cross traffic").
    ///
    /// Unlike [`set_pipe_cbr`](Self::set_pipe_cbr) this is fluid-only — no
    /// packets are synthesised, foreground traffic just sees the pipe's
    /// residual capacity — so the steady state allocates nothing and both
    /// backends stay bit-identical. It shares the per-pipe background demand
    /// slot with scheduled CBR episodes: installing one replaces the other.
    ///
    /// Returns `false` if the pipe is unknown.
    pub fn set_pipe_compensation(
        &mut self,
        pipe: PipeId,
        rate: Option<DataRate>,
        from: SimTime,
    ) -> bool {
        if self.pod.get_owner(pipe).is_none() {
            return false;
        }
        self.fluid.set_cbr(pipe, rate, from);
        self.recompute_fluid(from);
        true
    }

    /// Applies an **incremental** routing change after the listed pipes of
    /// `topo` were mutated in place (failure, restore, latency
    /// renegotiation): the matrix's per-pipe reverse index names exactly
    /// the shortest-route trees a worsened pipe sat on, only those (plus
    /// the label-bounded candidates of an improvement) are recomputed
    /// ([`RoutingMatrix::update_pipes`]), and only the
    /// endpoint pairs whose route actually changed are re-wired in the
    /// interned route table ([`RouteTable::rewire_in_place`]). Untouched
    /// `RouteId`s are preserved, so descriptors in flight keep resolving to
    /// the routes they started on — like packets already inside the paper's
    /// cores — while new packets see only the post-change routes.
    pub fn reroute(&mut self, topo: &DistilledTopology, changed: &[PipeId]) -> RouteUpdate {
        let update = apply_route_change(
            &mut self.matrix,
            &mut self.routes,
            &self.vn_location,
            topo,
            changed,
        );
        if !update.is_empty() {
            for core in &mut self.cores {
                core.set_route_table(self.routes.clone());
            }
            self.fluid.mark_routes_dirty();
            if self.fluid.has_flows() {
                let at = self.fluid.clock();
                self.recompute_fluid(at);
            }
        }
        update
    }

    /// Sets the cadence at which fluid rates are re-solved while flows are
    /// live (effective from the next epoch).
    pub fn set_fluid_epoch(&mut self, epoch: SimDuration) {
        self.fluid.set_epoch(epoch);
    }

    /// Starts a fluid bulk flow: `demand` offered from `src` to `dst`,
    /// standing in for `clients` modelled clients (its max-min weight).
    /// The flow crosses the same interned route packets between the pair
    /// would take; its share of every pipe shows up to the packet path as
    /// consumed capacity. Returns `false` if the tag is already in use.
    pub fn add_fluid_flow(
        &mut self,
        tag: u64,
        src: VnId,
        dst: VnId,
        demand: DataRate,
        clients: u32,
        at: SimTime,
    ) -> bool {
        if !self.fluid.add_flow(tag, src, dst, demand, clients, at) {
            return false;
        }
        self.recompute_fluid(at);
        true
    }

    /// Changes a fluid flow's offered demand and client count mid-run.
    pub fn resize_fluid_flow(
        &mut self,
        tag: u64,
        demand: DataRate,
        clients: u32,
        at: SimTime,
    ) -> bool {
        if !self.fluid.resize_flow(tag, demand, clients, at) {
            return false;
        }
        self.recompute_fluid(at);
        true
    }

    /// Stops a fluid flow, returning its share to the packet path.
    pub fn remove_fluid_flow(&mut self, tag: u64, at: SimTime) -> bool {
        if !self.fluid.remove_flow(tag, at) {
            return false;
        }
        self.recompute_fluid(at);
        true
    }

    /// The rate the last fair-share solve allocated to a fluid flow.
    pub fn fluid_flow_rate(&self, tag: u64) -> Option<DataRate> {
        self.fluid.flow_rate(tag)
    }

    /// Bytes of goodput a fluid flow has accumulated so far.
    pub fn fluid_flow_goodput_bytes(&self, tag: u64) -> Option<u64> {
        self.fluid.flow_goodput_bytes(tag)
    }

    /// Read access to the fluid flow state (flow counts, epoch clock).
    pub fn fluid(&self) -> &FluidState {
        &self.fluid
    }

    /// The topology location a VN is bound to.
    pub fn vn_location(&self, vn: VnId) -> Option<NodeId> {
        self.vn_location.get(vn.index()).copied()
    }

    /// `true` while a VN is an active member of the emulation.
    pub fn vn_is_active(&self, vn: VnId) -> bool {
        self.vn_active.get(vn.index()).copied().unwrap_or(false)
    }

    /// Number of currently active VNs.
    pub fn active_vn_count(&self) -> usize {
        self.vn_active.iter().filter(|&&a| a).count()
    }

    /// The core a VN's traffic enters through.
    pub fn vn_entry_core(&self, vn: VnId) -> Option<CoreId> {
        self.vn_entry_core.get(vn.index()).copied()
    }

    /// Joins a VN at a client location of `topo` mid-run — a first-class
    /// churn event, not a rebuild: the location's source tree is added to
    /// the matrix if absent (O(component log component)), the endpoint's
    /// row shard is bound into a copy-on-write route-table generation
    /// (O(affected rows), flat in the total VN count), and the newcomer
    /// enters through the least-loaded core. `vn` must be either a fresh
    /// contiguous id (`VnId(n)` when `n` VNs exist) or a departed id
    /// rejoining. Returns `false` (changing nothing) otherwise.
    pub fn vn_join(
        &mut self,
        topo: &DistilledTopology,
        vn: VnId,
        location: NodeId,
        at: SimTime,
    ) -> bool {
        if !apply_vn_join(
            &mut self.matrix,
            &mut self.routes,
            &mut self.vn_location,
            &mut self.vn_entry_core,
            &mut self.vn_active,
            &mut self.core_load,
            topo,
            vn,
            location,
        ) {
            return false;
        }
        for core in &mut self.cores {
            core.set_route_table(self.routes.clone());
        }
        self.fluid.mark_routes_dirty();
        if self.fluid.has_flows() {
            self.recompute_fluid(at);
        }
        true
    }

    /// Removes a VN from the emulation mid-run. New traffic to or from it
    /// is refused from this instant; descriptors already in flight drain
    /// deterministically on their pre-departure routes (every interned
    /// `RouteId` survives the departure); its fluid flows are torn down
    /// and their share returned to the network. Returns `false` when the
    /// VN is not an active member.
    pub fn vn_leave(&mut self, vn: VnId, at: SimTime) -> bool {
        if !apply_vn_leave(
            &mut self.matrix,
            &mut self.routes,
            &self.vn_location,
            &self.vn_entry_core,
            &mut self.vn_active,
            &mut self.core_load,
            vn,
        ) {
            return false;
        }
        for core in &mut self.cores {
            core.set_route_table(self.routes.clone());
        }
        let removed = self.fluid.remove_vn_flows(vn, at);
        self.fluid.mark_routes_dirty();
        if removed > 0 || self.fluid.has_flows() {
            self.recompute_fluid(at);
        }
        true
    }

    /// Submits a packet emitted by its source VN's edge node at time `now`.
    ///
    /// This is the per-packet fast path: every lookup is an indexed array
    /// read (VN location, VN-pair route id, entry core) — no hashing, no
    /// route clone, no allocation.
    pub fn submit(&mut self, now: SimTime, packet: Packet) -> SubmitOutcome {
        let src_idx = packet.flow.src.index();
        let dst_idx = packet.flow.dst.index();
        let Some(&src_loc) = self.vn_location.get(src_idx) else {
            return SubmitOutcome::NoRoute;
        };
        let Some(&dst_loc) = self.vn_location.get(dst_idx) else {
            return SubmitOutcome::NoRoute;
        };
        // Departed endpoints refuse new traffic immediately (descriptors
        // already inside the network still drain on their retained routes).
        if !self.vn_active[src_idx] || !self.vn_active[dst_idx] {
            return SubmitOutcome::NoRoute;
        }
        if src_loc == dst_loc {
            // Both VNs bound to the same topology location: traffic never
            // crosses the emulated network (local loopback at the edge).
            self.local_deliveries.push(Delivery {
                packet,
                delivered_at: now,
                entered_at: now,
                hops: 0,
                emulation_error: mn_util::SimDuration::ZERO,
            });
            return SubmitOutcome::Accepted;
        }
        let Some(route) = self.routes.route_id(src_idx, dst_idx) else {
            return SubmitOutcome::NoRoute;
        };
        let entry = self
            .vn_entry_core
            .get(src_idx)
            .copied()
            .unwrap_or(CoreId(0));
        let descriptor = Descriptor::new(packet, route, now);
        match self.cores[entry.index()].ingress(now, descriptor) {
            IngressOutcome::Accepted => SubmitOutcome::Accepted,
            IngressOutcome::VirtualDrop => SubmitOutcome::VirtualDrop,
            IngressOutcome::PhysicalDropNic | IngressOutcome::PhysicalDropCpu => {
                SubmitOutcome::PhysicalDrop
            }
        }
    }

    /// Submits a batch of timestamped packets, appending one outcome per
    /// packet (in input order) to `outcomes`. Exactly equivalent to calling
    /// [`MultiCoreEmulator::submit`] per packet; provided so bulk traffic
    /// drivers can run against either backend through one call shape (the
    /// parallel backend pipelines this path).
    pub fn submit_batch<I>(&mut self, batch: I, outcomes: &mut Vec<SubmitOutcome>)
    where
        I: IntoIterator<Item = (SimTime, Packet)>,
    {
        for (now, packet) in batch {
            outcomes.push(self.submit(now, packet));
        }
    }

    /// The earliest time at which any core (or any in-flight tunnel) has work
    /// due.
    pub fn next_wakeup(&self) -> Option<SimTime> {
        let core_next = self.cores.iter().filter_map(|c| c.next_wakeup()).min();
        let tunnel_next = self
            .tunnels_in_flight
            .peek_time()
            .map(|t| self.profile.next_tick_at(t));
        let local = if self.local_deliveries.is_empty() {
            None
        } else {
            Some(SimTime::ZERO)
        };
        let fluid_next = self.fluid.next_epoch();
        [core_next, tunnel_next, local, fluid_next]
            .into_iter()
            .flatten()
            .min()
    }

    /// Advances the emulation to time `now`, allocating a fresh delivery
    /// buffer. Steady-state callers use [`MultiCoreEmulator::advance_into`]
    /// with a long-lived buffer instead.
    pub fn advance(&mut self, now: SimTime) -> Vec<Delivery> {
        let mut deliveries = Vec::new();
        self.advance_into(now, &mut deliveries);
        deliveries
    }

    /// Advances the emulation to time `now`: delivers due tunnels, runs every
    /// core's scheduler, and forwards freshly produced tunnels. Every packet
    /// that exited the emulated network since the previous call is appended
    /// to `deliveries`; with warmed buffers the pass allocates nothing.
    ///
    /// While fluid flows are live the advance is chopped at each rate
    /// epoch: cores run up to the epoch, the fair share is re-solved there,
    /// and the changed per-pipe demands take effect before emulation
    /// continues — so packet contention always sees the residual of the
    /// current piecewise-constant fluid rates, identically on both
    /// backends.
    pub fn advance_into(&mut self, now: SimTime, deliveries: &mut Vec<Delivery>) {
        while let Some(epoch) = self.fluid.next_epoch().filter(|&e| e <= now) {
            self.advance_cores_into(epoch, deliveries);
            self.recompute_fluid(epoch);
        }
        self.advance_cores_into(now, deliveries);
        for core in &mut self.cores {
            core.integrate_fluid_to(now);
        }
        self.fluid.integrate_to(now);
    }

    /// Serializes the complete emulator state into a checkpoint restorable
    /// by [`MultiCoreEmulator::restore`] (or into the threaded backend via
    /// [`crate::ParallelEmulator::restore`]). Resuming from the snapshot is
    /// bit-identical to never having stopped. Scratch buffers (tick pass,
    /// solver scratch) hold no state and are not captured.
    pub fn snapshot(&self) -> crate::snapshot::EmulatorSnapshot {
        let mut w = mn_util::ByteWriter::with_capacity(64 * 1024);
        self.encode_state(&mut w);
        crate::snapshot::EmulatorSnapshot::from_payload(w.into_bytes())
    }

    /// Rebuilds an emulator from a checkpoint taken by
    /// [`MultiCoreEmulator::snapshot`] on either backend.
    pub fn restore(
        snapshot: &crate::snapshot::EmulatorSnapshot,
    ) -> Result<Self, mn_util::CodecError> {
        Self::decode_state(&mut snapshot.reader())
    }

    /// Writes the backend-independent emulator payload. Kept separate from
    /// [`MultiCoreEmulator::snapshot`] so the parallel backend can emit the
    /// identical layout from its collected worker cores.
    pub(crate) fn encode_state(&self, w: &mut mn_util::ByteWriter) {
        encode_emulator_state(
            w,
            &self.profile,
            &self.routes,
            &self.matrix,
            &self.pod,
            &self.vn_location,
            &self.vn_entry_core,
            &self.vn_active,
            &self.core_load,
            &self.tunnels_in_flight,
            &self.local_deliveries,
            &self.fluid,
            self.cores.iter(),
        );
    }

    /// Reads the payload written by [`MultiCoreEmulator::encode_state`].
    pub(crate) fn decode_state(r: &mut mn_util::ByteReader) -> Result<Self, mn_util::CodecError> {
        use crate::snapshot::{get_delivery, get_descriptor};
        use mn_util::CodecError;

        let profile = HardwareProfile {
            nic_rate: r.get_rate()?,
            nic_buffer: mn_util::ByteSize::from_bytes(r.get_u64()?),
            per_packet_cpu: r.get_duration()?,
            per_hop_cpu: r.get_duration()?,
            tunnel_cpu: r.get_duration()?,
            tunnel_latency: r.get_duration()?,
            tick: r.get_duration()?,
            saturation_backlog: r.get_duration()?,
            packet_debt_correction: r.get_bool()?,
            payload_caching: r.get_bool()?,
        };
        let routes = Arc::new(RouteTable::decode(r)?);
        let matrix = RoutingMatrix::decode(r)?;
        let core_count = r.get_usize()?;
        let pipe_count = r.get_len()?;
        let mut owners = Vec::with_capacity(pipe_count);
        for _ in 0..pipe_count {
            let owner = r.get_usize()?;
            if owner >= core_count {
                return Err(CodecError::Invalid("pipe owner out of range"));
            }
            owners.push(CoreId(owner));
        }
        let pod = PipeOwnershipDirectory::from_owners(owners, core_count.max(1));
        let vn_count = r.get_len()?;
        let mut vn_location = Vec::with_capacity(vn_count);
        for _ in 0..vn_count {
            vn_location.push(NodeId(r.get_usize()?));
        }
        let mut vn_entry_core = Vec::with_capacity(vn_count);
        for _ in 0..vn_count {
            vn_entry_core.push(CoreId(r.get_usize()?));
        }
        let mut vn_active = Vec::with_capacity(vn_count);
        for _ in 0..vn_count {
            vn_active.push(r.get_bool()?);
        }
        let load_count = r.get_len()?;
        let mut core_load = Vec::with_capacity(load_count);
        for _ in 0..load_count {
            core_load.push(r.get_u32()?);
        }
        let tunnel_count = r.get_len()?;
        let mut tunnels_in_flight = TimerWheel::new();
        for _ in 0..tunnel_count {
            let time = r.get_time()?;
            let target = CoreId(r.get_usize()?);
            let descriptor = get_descriptor(r)?;
            tunnels_in_flight.push(time, (target, descriptor));
        }
        let local_count = r.get_len()?;
        let mut local_deliveries = Vec::with_capacity(local_count);
        for _ in 0..local_count {
            local_deliveries.push(get_delivery(r)?);
        }
        let fluid = FluidState::decode(r)?;
        let encoded_cores = r.get_len()?;
        if encoded_cores != core_count {
            return Err(CodecError::Invalid("core count mismatch"));
        }
        let mut cores = Vec::with_capacity(core_count);
        for idx in 0..core_count {
            let core = EmulatorCore::decode_state(r, profile, routes.clone())?;
            if core.id().index() != idx {
                return Err(CodecError::Invalid("core ids out of order"));
            }
            cores.push(core);
        }
        Ok(MultiCoreEmulator {
            cores,
            pod,
            matrix,
            routes,
            vn_location,
            vn_entry_core,
            vn_active,
            core_load,
            tunnels_in_flight,
            local_deliveries,
            tick_buf: TickOutput::default(),
            profile,
            fluid,
        })
    }

    /// One un-chopped advance of every core (and the tunnel wheel) to `now`.
    fn advance_cores_into(&mut self, now: SimTime, deliveries: &mut Vec<Delivery>) {
        deliveries.append(&mut self.local_deliveries);
        let mut tick_buf = std::mem::take(&mut self.tick_buf);
        // Iterate: tunnel arrivals can enqueue work that completes within the
        // same pass only if latency is zero; the loop is bounded by the
        // longest route.
        loop {
            // Deliver tunnel descriptors that have arrived.
            while let Some((_, (target, descriptor))) = self.tunnels_in_flight.pop_due(now) {
                let _ = self.cores[target.index()].accept_tunnel(now, descriptor);
            }
            // Run every core's scheduler through the reusable pass buffer.
            let mut produced_tunnel = false;
            for core in &mut self.cores {
                core.tick_into(now, &mut tick_buf);
                deliveries.append(&mut tick_buf.deliveries);
                for (pipe, descriptor, at) in tick_buf.tunnels.drain(..) {
                    let owner = self
                        .pod
                        .get_owner(pipe)
                        .expect("route references a pipe covered by the POD");
                    let arrival = at.max(now) + self.profile.tunnel_latency;
                    self.tunnels_in_flight.push(arrival, (owner, descriptor));
                    produced_tunnel = true;
                }
            }
            let more_due = self.tunnels_in_flight.peek_time().is_some_and(|t| t <= now);
            if !(produced_tunnel && more_due) {
                break;
            }
        }
        self.tick_buf = tick_buf;
    }
}

/// Writes the backend-independent emulator payload from its constituent
/// pieces. Both backends call this — the sequential emulator with its own
/// fields, the parallel coordinator with the cores collected from its
/// workers — so the two can never drift into incompatible layouts.
#[allow(clippy::too_many_arguments)]
pub(crate) fn encode_emulator_state<'a>(
    w: &mut mn_util::ByteWriter,
    profile: &HardwareProfile,
    routes: &RouteTable,
    matrix: &RoutingMatrix,
    pod: &PipeOwnershipDirectory,
    vn_location: &[NodeId],
    vn_entry_core: &[CoreId],
    vn_active: &[bool],
    core_load: &[u32],
    tunnels_in_flight: &TimerWheel<(CoreId, Descriptor)>,
    local_deliveries: &[Delivery],
    fluid: &FluidState,
    cores: impl ExactSizeIterator<Item = &'a EmulatorCore>,
) {
    use crate::snapshot::{put_delivery, put_descriptor};

    w.put_rate(profile.nic_rate);
    w.put_u64(profile.nic_buffer.as_bytes());
    w.put_duration(profile.per_packet_cpu);
    w.put_duration(profile.per_hop_cpu);
    w.put_duration(profile.tunnel_cpu);
    w.put_duration(profile.tunnel_latency);
    w.put_duration(profile.tick);
    w.put_duration(profile.saturation_backlog);
    w.put_bool(profile.packet_debt_correction);
    w.put_bool(profile.payload_caching);
    routes.encode(w);
    matrix.encode(w);
    w.put_usize(pod.core_count());
    w.put_len(pod.pipe_count());
    for pipe in 0..pod.pipe_count() {
        w.put_usize(pod.owner(PipeId(pipe)).index());
    }
    w.put_len(vn_location.len());
    for loc in vn_location {
        w.put_usize(loc.index());
    }
    for core in vn_entry_core {
        w.put_usize(core.index());
    }
    for &active in vn_active {
        w.put_bool(active);
    }
    w.put_len(core_load.len());
    for &load in core_load {
        w.put_u32(load);
    }
    // Canonical tunnel order: (arrival time, target core), with per-target
    // FIFO preserved by the stable sort. Same-time tunnels to *different*
    // targets commute (each `accept_tunnel` touches only its own core), so
    // sorting does not change the restored run — it makes the encoding
    // independent of which backend produced the wheel, so a sequential and a
    // threaded snapshot of the same emulation point are byte-identical and
    // snapshot → restore → snapshot is byte-stable on both backends.
    let mut tunnels = tunnels_in_flight.entries_in_order();
    tunnels.sort_by_key(|&(time, &(target, _))| (time, target.index()));
    w.put_len(tunnels.len());
    for (time, (target, descriptor)) in tunnels {
        w.put_time(time);
        w.put_usize(target.index());
        put_descriptor(w, descriptor);
    }
    w.put_len(local_deliveries.len());
    for delivery in local_deliveries {
        put_delivery(w, delivery);
    }
    fluid.encode(w);
    w.put_len(cores.len());
    for core in cores {
        core.encode_state(w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_assign::{greedy_k_clusters, BindingParams};
    use mn_distill::{distill, DistillationMode};
    use mn_packet::{FlowKey, PacketId, Protocol, TcpFlags, TransportHeader};
    use mn_topology::generators::{
        path_pairs_topology, star_topology, PathPairsParams, StarParams,
    };
    use mn_util::{DataRate, SimDuration};

    fn tcp_packet(id: u64, src: VnId, dst: VnId, payload: u32, now: SimTime) -> Packet {
        Packet::new(
            PacketId(id),
            FlowKey {
                src,
                dst,
                src_port: 1000,
                dst_port: 2000,
                protocol: Protocol::Tcp,
            },
            TransportHeader::Tcp {
                seq: 0,
                ack: 0,
                payload_len: payload,
                flags: TcpFlags::ACK,
                window: 65535,
            },
            now,
        )
    }

    /// One sender/receiver pair over `hops` 10 Mb/s pipes, 10 ms end to end.
    fn single_path(hops: usize, cores: usize) -> (MultiCoreEmulator, VnId, VnId) {
        let (topo, pairs) = path_pairs_topology(&PathPairsParams {
            pairs: 1,
            hops,
            bandwidth: DataRate::from_mbps(10),
            end_to_end_latency: SimDuration::from_millis(10),
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, cores));
        let pod = greedy_k_clusters(&d, cores, 7);
        let emu = MultiCoreEmulator::new(
            &d,
            pod,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            1,
        );
        // VNs are bound in vn-list order; find sender and receiver.
        let sender = binding.vn_at(pairs[0].0).unwrap();
        let receiver = binding.vn_at(pairs[0].1).unwrap();
        (emu, sender, receiver)
    }

    fn run_until_idle(emu: &mut MultiCoreEmulator, mut now: SimTime) -> Vec<Delivery> {
        let mut all = Vec::new();
        for _ in 0..100_000 {
            match emu.next_wakeup() {
                Some(t) => {
                    now = now.max(t);
                    all.extend(emu.advance(now));
                }
                None => break,
            }
        }
        all
    }

    #[test]
    fn snapshot_mid_run_resumes_bit_identically() {
        // Run A straight through; run B snapshots mid-flight (tunnels in the
        // air, packets queued in pipes, RNG streams advanced), restores, and
        // continues. Both must produce identical deliveries and stats — and
        // snapshot → restore → snapshot must be byte-stable.
        let drive = |emu: &mut MultiCoreEmulator,
                     src: VnId,
                     dst: VnId,
                     from: u64,
                     to: u64,
                     out: &mut Vec<Delivery>| {
            for i in from..to {
                let t = SimTime::from_micros(i * 700);
                emu.submit(t, tcp_packet(i, src, dst, 1460, t));
                out.extend(emu.advance(t));
            }
        };
        let record = |d: &Delivery| (d.packet.id.0, d.delivered_at, d.entered_at, d.hops);

        let (mut uninterrupted, src, dst) = single_path(6, 2);
        let mut a = Vec::new();
        drive(&mut uninterrupted, src, dst, 0, 40, &mut a);
        a.extend(run_until_idle(&mut uninterrupted, SimTime::ZERO));

        let (mut first_half, src, dst) = single_path(6, 2);
        let mut b = Vec::new();
        drive(&mut first_half, src, dst, 0, 20, &mut b);
        let snap = first_half.snapshot();
        assert!(first_half.total_stats().packets_admitted > 0);
        drop(first_half);

        let mut resumed = MultiCoreEmulator::restore(&snap).unwrap();
        let resnap = resumed.snapshot();
        assert_eq!(
            snap.to_bytes(),
            resnap.to_bytes(),
            "snapshot → restore → snapshot must be byte-stable"
        );
        drive(&mut resumed, src, dst, 20, 40, &mut b);
        b.extend(run_until_idle(&mut resumed, SimTime::ZERO));

        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.iter().map(record).collect::<Vec<_>>(),
            b.iter().map(record).collect::<Vec<_>>()
        );
        assert_eq!(uninterrupted.total_stats(), resumed.total_stats());
        assert_eq!(
            uninterrupted.cores()[0].accuracy().mean_error_us(),
            resumed.cores()[0].accuracy().mean_error_us()
        );
    }

    #[test]
    fn snapshot_preserves_fluid_cbr_and_churn_state() {
        // Exercise the non-packet state: CBR episodes, fluid flows, a VN
        // leave, and a reroute all precede the snapshot; afterwards both
        // copies must evolve identically (epoch boundaries included).
        let (topo, [a, b, c], [_r1, _r2]) = detour_topology();
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(1, 1));
        let mut emu = MultiCoreEmulator::single_core(
            &d,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            11,
        );
        let vn = |node| binding.vn_at(node).unwrap();
        let t0 = SimTime::ZERO;
        assert!(emu.set_pipe_cbr(
            mn_distill::PipeId(0),
            Some(CbrConfig::new(
                DataRate::from_mbps(2),
                mn_util::ByteSize::from_bytes(500),
            )),
            t0,
        ));
        assert!(emu.add_fluid_flow(7, vn(a), vn(b), DataRate::from_mbps(4), 3, t0));
        assert!(emu.vn_leave(vn(c), t0));
        let _ = emu.advance(SimTime::from_millis(30));

        let snap = emu.snapshot();
        let mut restored = MultiCoreEmulator::restore(&snap).unwrap();
        assert_eq!(snap.to_bytes(), restored.snapshot().to_bytes());
        assert_eq!(restored.active_vn_count(), emu.active_vn_count());
        assert!(!restored.vn_is_active(vn(c)));
        assert_eq!(restored.fluid_flow_rate(7), emu.fluid_flow_rate(7));

        // Both copies cross several fluid epochs and keep agreeing.
        for step in 1..=5u64 {
            let t = SimTime::from_millis(30 + step * 20);
            let da = emu.advance(t);
            let db = restored.advance(t);
            assert_eq!(da.len(), db.len());
        }
        assert_eq!(emu.total_stats(), restored.total_stats());
        assert_eq!(
            emu.fluid_flow_goodput_bytes(7),
            restored.fluid_flow_goodput_bytes(7)
        );
        assert_eq!(emu.next_wakeup(), restored.next_wakeup());
    }

    #[test]
    fn single_hop_delivery_timing() {
        let (mut emu, src, dst) = single_path(1, 1);
        let pkt = tcp_packet(1, src, dst, 1460, SimTime::ZERO);
        assert_eq!(emu.submit(SimTime::ZERO, pkt), SubmitOutcome::Accepted);
        let deliveries = run_until_idle(&mut emu, SimTime::ZERO);
        assert_eq!(deliveries.len(), 1);
        let d = &deliveries[0];
        // 1500 B at 10 Mb/s = 1.2 ms transmission + 10 ms latency, delivered
        // at the next 100 µs tick.
        let ideal = SimDuration::from_micros(1200) + SimDuration::from_millis(10);
        let delay = d.core_delay();
        assert!(delay >= ideal, "delay {delay} below ideal {ideal}");
        assert!(
            delay <= ideal + SimDuration::from_micros(100),
            "delay {delay} more than one tick late"
        );
        assert_eq!(d.hops, 1);
    }

    #[test]
    fn multi_hop_delay_accumulates_per_hop() {
        let (mut emu, src, dst) = single_path(4, 1);
        let pkt = tcp_packet(1, src, dst, 1460, SimTime::ZERO);
        emu.submit(SimTime::ZERO, pkt);
        let deliveries = run_until_idle(&mut emu, SimTime::ZERO);
        assert_eq!(deliveries.len(), 1);
        // 4 hops: 4 × 1.2 ms store-and-forward + 10 ms total latency.
        let ideal = SimDuration::from_micros(4 * 1200) + SimDuration::from_millis(10);
        let delay = deliveries[0].core_delay();
        assert!(delay >= ideal);
        assert!(
            delay <= ideal + SimDuration::from_micros(400),
            "delay {delay}"
        );
        assert_eq!(deliveries[0].hops, 4);
        // Accuracy bound: error within one tick per hop.
        assert!(emu.cores()[0]
            .accuracy()
            .within_bound(SimDuration::from_micros(100)));
    }

    #[test]
    fn unknown_vn_is_no_route() {
        let (mut emu, src, _) = single_path(1, 1);
        let pkt = tcp_packet(1, src, VnId(999), 100, SimTime::ZERO);
        assert_eq!(emu.submit(SimTime::ZERO, pkt), SubmitOutcome::NoRoute);
    }

    #[test]
    fn out_of_range_vn_ids_never_panic_the_dense_tables() {
        // The dense per-VN tables are indexed by VnId: any id at or beyond
        // the bound VN count — unknown source, unknown destination, or both,
        // up to the extreme u32::MAX — must come back as NoRoute, not an
        // out-of-bounds panic, and must not disturb the emulation.
        let (mut emu, src, dst) = single_path(1, 1);
        let now = SimTime::ZERO;
        for bad in [VnId(2), VnId(999), VnId(u32::MAX)] {
            assert_eq!(
                emu.submit(now, tcp_packet(1, bad, dst, 100, now)),
                SubmitOutcome::NoRoute,
                "unknown source {bad}"
            );
            assert_eq!(
                emu.submit(now, tcp_packet(2, src, bad, 100, now)),
                SubmitOutcome::NoRoute,
                "unknown destination {bad}"
            );
            assert_eq!(
                emu.submit(now, tcp_packet(3, bad, bad, 100, now)),
                SubmitOutcome::NoRoute,
                "both endpoints unknown {bad}"
            );
            assert_eq!(emu.vn_location(bad), None);
        }
        // The emulator still works for bound VNs afterwards.
        assert_eq!(
            emu.submit(now, tcp_packet(4, src, dst, 100, now)),
            SubmitOutcome::Accepted
        );
        let delivered = run_until_idle(&mut emu, now);
        assert_eq!(delivered.len(), 1);
        assert_eq!(emu.total_stats().packets_offered, 1, "NoRoute is pre-NIC");
    }

    #[test]
    fn two_core_path_tunnels_descriptors() {
        let (mut emu, src, dst) = single_path(8, 2);
        assert_eq!(emu.core_count(), 2);
        for i in 0..10 {
            let t = SimTime::from_micros(i * 500);
            emu.submit(t, tcp_packet(i, src, dst, 1460, t));
        }
        let deliveries = run_until_idle(&mut emu, SimTime::ZERO);
        assert_eq!(deliveries.len(), 10);
        let stats = emu.total_stats();
        assert!(
            stats.tunnels_out > 0,
            "an 8-hop route split over two cores must tunnel"
        );
        assert_eq!(stats.tunnels_out, stats.tunnels_in);
        assert_eq!(stats.packets_delivered, 10);
    }

    #[test]
    fn star_traffic_all_pairs_delivered() {
        let topo = star_topology(&StarParams {
            clients: 10,
            spoke_bandwidth: DataRate::from_mbps(10),
            spoke_latency: SimDuration::from_millis(5),
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, 1));
        let mut emu = MultiCoreEmulator::single_core(
            &d,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            3,
        );
        let vns: Vec<VnId> = binding.vns().collect();
        let mut sent = 0;
        for (i, &a) in vns.iter().enumerate() {
            let b = vns[(i + 1) % vns.len()];
            emu.submit(
                SimTime::ZERO,
                tcp_packet(i as u64, a, b, 1000, SimTime::ZERO),
            );
            sent += 1;
        }
        let deliveries = run_until_idle(&mut emu, SimTime::ZERO);
        assert_eq!(deliveries.len(), sent);
        for d in &deliveries {
            assert_eq!(d.hops, 2, "star routes are two pipes");
            // 1040 B at 10 Mb/s = 0.832 ms per hop + 2 × 5 ms latency.
            assert!(d.core_delay() >= SimDuration::from_millis(10));
        }
    }

    #[test]
    fn congestion_produces_virtual_drops_not_physical() {
        // One 1 Mb/s hop with a 5-packet queue; blast 100 packets at once.
        let (topo, pairs) = path_pairs_topology(&PathPairsParams {
            pairs: 1,
            hops: 1,
            bandwidth: DataRate::from_mbps(1),
            end_to_end_latency: SimDuration::from_millis(5),
        });
        let mut d = distill(&topo, DistillationMode::HopByHop);
        for id in d.pipe_ids().collect::<Vec<_>>() {
            d.pipe_attrs_mut(id).unwrap().queue_len = 5;
        }
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(1, 1));
        let mut emu = MultiCoreEmulator::single_core(
            &d,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            5,
        );
        let src = binding.vn_at(pairs[0].0).unwrap();
        let dst = binding.vn_at(pairs[0].1).unwrap();
        let mut virtual_drops = 0;
        for i in 0..100 {
            match emu.submit(SimTime::ZERO, tcp_packet(i, src, dst, 1460, SimTime::ZERO)) {
                SubmitOutcome::VirtualDrop => virtual_drops += 1,
                SubmitOutcome::Accepted => {}
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!(
            virtual_drops > 50,
            "most of the burst should overflow the queue"
        );
        let delivered = run_until_idle(&mut emu, SimTime::ZERO).len();
        assert_eq!(delivered as u64 + virtual_drops, 100);
        assert_eq!(emu.total_stats().physical_drops_nic, 0);
    }

    #[test]
    fn overload_produces_physical_drops() {
        // Constrained profile with a tiny NIC: flooding must hit the NIC
        // ceiling and drop physically.
        let (topo, pairs) = path_pairs_topology(&PathPairsParams {
            pairs: 1,
            hops: 1,
            bandwidth: DataRate::from_mbps(1000),
            end_to_end_latency: SimDuration::from_millis(1),
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(1, 1));
        let mut profile = HardwareProfile::paper_core();
        profile.nic_rate = DataRate::from_mbps(10);
        profile.nic_buffer = mn_util::ByteSize::from_kb(16);
        let mut emu = MultiCoreEmulator::single_core(&d, matrix, &binding, profile, 5);
        let src = binding.vn_at(pairs[0].0).unwrap();
        let dst = binding.vn_at(pairs[0].1).unwrap();
        let mut physical = 0;
        for i in 0..200u64 {
            let t = SimTime::from_micros(i * 10);
            if emu.submit(t, tcp_packet(i, src, dst, 1460, t)) == SubmitOutcome::PhysicalDrop {
                physical += 1;
            }
            let _ = emu.advance(t);
        }
        assert!(
            physical > 0,
            "a 10 Mb/s NIC cannot absorb 1.2 Gb/s of offered load"
        );
        assert_eq!(emu.total_stats().physical_drops(), physical);
    }

    #[test]
    fn same_location_vns_bypass_the_core() {
        // Two VNs bound to the same client node: traffic is delivered locally.
        let (topo, pairs) = path_pairs_topology(&PathPairsParams::default());
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        // Bind both VNs to the same location by hand.
        let loc = pairs[0].0;
        let binding = Binding::bind(&[loc, loc], &BindingParams::new(1, 1));
        let mut emu = MultiCoreEmulator::single_core(
            &d,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            1,
        );
        let outcome = emu.submit(
            SimTime::from_millis(1),
            tcp_packet(1, VnId(0), VnId(1), 100, SimTime::from_millis(1)),
        );
        assert_eq!(outcome, SubmitOutcome::Accepted);
        let deliveries = emu.advance(SimTime::from_millis(1));
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].hops, 0);
        assert_eq!(emu.total_stats().packets_admitted, 0);
    }

    #[test]
    fn split_core_stats_merge_to_single_core_totals() {
        // The same loss-free workload on one core and split over two cores:
        // per-core counters drained independently and merged must agree with
        // the single-core totals on every emulated-behaviour field (the
        // tunnelling book-keeping and the wire bytes it adds are the only
        // legitimate differences, exactly what Table 1 charges for the
        // split).
        let run = |cores: usize| {
            let (mut emu, src, dst) = single_path(6, cores);
            for i in 0..25 {
                let t = SimTime::from_micros(i * 1400);
                emu.submit(t, tcp_packet(i, src, dst, 1460, t));
            }
            let _ = run_until_idle(&mut emu, SimTime::ZERO);
            let merged = (0..emu.core_count())
                .map(|c| *emu.core_stats(CoreId(c)).expect("core exists"))
                .fold(CoreStats::default(), |acc, s| acc.merged(&s));
            assert_eq!(merged, emu.total_stats(), "drain order must not matter");
            merged
        };
        let single = run(1);
        let split = run(2);
        assert_eq!(single.packets_offered, split.packets_offered);
        assert_eq!(single.packets_admitted, split.packets_admitted);
        assert_eq!(single.packets_delivered, split.packets_delivered);
        assert_eq!(single.physical_drops(), split.physical_drops());
        assert_eq!(single.tunnels_out, 0);
        assert!(split.tunnels_out > 0, "a 6-hop split path tunnels");
        assert_eq!(split.tunnels_out, split.tunnels_in);
    }

    /// Three clients over two stub routers with power-of-two link latencies
    /// (unique shortest paths): `a-r1-b` is the fast a↔b route, `r2` the
    /// detour that also serves `c`.
    fn detour_topology() -> (
        mn_topology::Topology,
        [NodeId; 3], // a, b, c
        [NodeId; 2], // r1, r2
    ) {
        use mn_topology::{LinkAttrs, NodeKind, Topology};
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let b = topo.add_node(NodeKind::Client);
        let c = topo.add_node(NodeKind::Client);
        let r1 = topo.add_node(NodeKind::Stub);
        let r2 = topo.add_node(NodeKind::Stub);
        let link = |ms: u64| LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(ms));
        // Latencies chosen so every shortest path is unique and `c`'s
        // routes to both `a` and `b` go straight over `r2`, never touching
        // the `a-r1` link the test fails.
        topo.add_link(a, r1, link(1)).unwrap();
        topo.add_link(r1, b, link(2)).unwrap();
        topo.add_link(a, r2, link(4)).unwrap();
        topo.add_link(r2, b, link(5)).unwrap();
        topo.add_link(c, r2, link(16)).unwrap();
        (topo, [a, b, c], [r1, r2])
    }

    #[test]
    fn reroute_preserves_untouched_and_inflight_route_ids() {
        // The incremental path behind runtime reconfiguration: failing one
        // link must (1) leave every unaffected pair's RouteId untouched,
        // (2) let descriptors already in flight finish on their pre-failure
        // route, and (3) steer packets submitted afterwards around the
        // failure.
        let (topo, [a, b, c], [r1, _r2]) = detour_topology();
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(1, 1));
        let mut emu = MultiCoreEmulator::single_core(
            &d,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            1,
        );
        let vn = |node| binding.vn_at(node).unwrap();
        let pair_id = |emu: &MultiCoreEmulator, x: VnId, y: VnId| {
            emu.route_table().route_id(x.index(), y.index()).unwrap()
        };
        let ab_before = pair_id(&emu, vn(a), vn(b));
        let cb_before = pair_id(&emu, vn(c), vn(b));
        let ca_before = pair_id(&emu, vn(c), vn(a));
        // One packet in flight on the fast a->b route.
        let t0 = SimTime::ZERO;
        assert!(emu
            .submit(t0, tcp_packet(1, vn(a), vn(b), 1000, t0))
            .is_accepted());
        // Fail a-r1 in both directions and reroute incrementally.
        let down = [d.find_pipe(a, r1).unwrap(), d.find_pipe(r1, a).unwrap()];
        for p in down {
            d.pipe_attrs_mut(p).unwrap().bandwidth = DataRate::ZERO;
        }
        let update = emu.reroute(&d, &down);
        assert!(update.recomputed_sources >= 1);
        // (1) pairs not using the failed link keep their exact RouteId.
        assert_eq!(pair_id(&emu, vn(c), vn(b)), cb_before);
        assert_eq!(pair_id(&emu, vn(c), vn(a)), ca_before);
        // (3) the a->b pair is rewired to the detour.
        let ab_after = pair_id(&emu, vn(a), vn(b));
        assert_ne!(ab_after, ab_before);
        let detour = emu.route_table().pipes(ab_after).to_vec();
        assert!(!detour.contains(&down[0]) && !detour.contains(&down[1]));
        // (2) the in-flight packet drains over its pre-failure route: the
        // retained RouteId still resolves, and the delivery shows the fast
        // path's 3 ms propagation, not the 12 ms detour.
        let deliveries = run_until_idle(&mut emu, t0);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].hops, 2);
        let delay = deliveries[0].core_delay();
        assert!(
            delay < SimDuration::from_millis(6),
            "drained old route: {delay}"
        );
        // New traffic takes the detour end to end.
        let t1 = SimTime::from_millis(50);
        assert!(emu
            .submit(t1, tcp_packet(2, vn(a), vn(b), 1000, t1))
            .is_accepted());
        let deliveries = run_until_idle(&mut emu, t1);
        assert_eq!(deliveries.len(), 1);
        let delay = deliveries[0].core_delay();
        assert!(
            delay >= SimDuration::from_millis(9),
            "detour latency: {delay}"
        );
    }

    #[test]
    fn cbr_cross_traffic_contends_for_bandwidth_and_queue() {
        // A 10 Mb/s hop carrying an 8 Mb/s foreground stream fits; with a
        // 5 Mb/s CBR injector on the pipe the aggregate exceeds capacity,
        // so the foreground stream must lose packets to queue overflow.
        let run = |cbr: bool| {
            let (mut emu, src, dst) = single_path(1, 1);
            if cbr {
                assert!(emu.set_pipe_cbr(
                    mn_distill::PipeId(0),
                    Some(CbrConfig::new(
                        DataRate::from_mbps(5),
                        mn_util::ByteSize::from_bytes(1000),
                    )),
                    SimTime::ZERO,
                ));
            }
            let mut accepted = 0u64;
            let horizon = SimTime::from_secs(2);
            let mut now = SimTime::ZERO;
            let mut id = 0u64;
            while now < horizon {
                // 1000-byte packets every millisecond = 8 Mb/s offered.
                let pkt = tcp_packet(id, src, dst, 960, now);
                if emu.submit(now, pkt).is_accepted() {
                    accepted += 1;
                }
                id += 1;
                now += SimDuration::from_millis(1);
                let _ = emu.advance(now);
            }
            // Drain the queues (bounded: CBR keeps the emulator non-idle).
            let _ = emu.advance(horizon + SimDuration::from_secs(1));
            (accepted, id, emu.total_stats())
        };
        let (clean_accepted, offered, clean_stats) = run(false);
        assert_eq!(clean_accepted, offered, "8 Mb/s fits a 10 Mb/s pipe");
        assert_eq!(clean_stats.cbr_injected, 0);
        let (loaded_accepted, offered, loaded_stats) = run(true);
        assert!(
            loaded_stats.cbr_injected > 500,
            "CBR ran for 2 s at 625 pkt/s"
        );
        assert!(
            loaded_accepted < offered,
            "13 Mb/s aggregate must overflow the 10 Mb/s queue"
        );
        // Background packets never surface as deliveries.
        assert_eq!(loaded_stats.packets_delivered, loaded_accepted);
    }

    #[test]
    fn cbr_injector_can_be_replaced_and_removed() {
        let (mut emu, _, _) = single_path(1, 1);
        let pipe = mn_distill::PipeId(0);
        let cbr = CbrConfig::new(DataRate::from_mbps(2), mn_util::ByteSize::from_bytes(500));
        assert!(emu.set_pipe_cbr(pipe, Some(cbr), SimTime::ZERO));
        assert!(
            emu.next_wakeup().is_some(),
            "an injector is always due work"
        );
        let sources = |emu: &MultiCoreEmulator| -> Vec<_> {
            emu.cores().iter().flat_map(|c| c.cbr_sources()).collect()
        };
        // 500 B at 2 Mb/s: one injection every 2 ms.
        assert_eq!(
            sources(&emu),
            vec![(
                pipe,
                mn_util::ByteSize::from_bytes(500),
                SimDuration::from_millis(2)
            )]
        );
        let _ = emu.advance(SimTime::from_millis(100));
        let after_run = emu.total_stats().cbr_injected;
        assert!(after_run > 0);
        // Replacing halves the rate (doubles the gap) without stacking a
        // second source on the pipe.
        let slower = CbrConfig::new(DataRate::from_mbps(1), mn_util::ByteSize::from_bytes(500));
        assert!(emu.set_pipe_cbr(pipe, Some(slower), SimTime::from_millis(100)));
        assert_eq!(
            sources(&emu),
            vec![(
                pipe,
                mn_util::ByteSize::from_bytes(500),
                SimDuration::from_millis(4)
            )]
        );
        assert!(emu.set_pipe_cbr(pipe, None, SimTime::from_millis(100)));
        assert!(sources(&emu).is_empty());
        let _ = emu.advance(SimTime::from_millis(200));
        assert_eq!(
            emu.total_stats().cbr_injected,
            after_run,
            "removed: no more injections"
        );
        // Unknown pipes are rejected.
        assert!(!emu.set_pipe_cbr(mn_distill::PipeId(999), Some(cbr), SimTime::ZERO));
    }

    #[test]
    fn payload_caching_reduces_tunnel_bytes() {
        let run = |caching: bool| {
            let (topo, pairs) = path_pairs_topology(&PathPairsParams {
                pairs: 1,
                hops: 4,
                ..PathPairsParams::default()
            });
            let d = distill(&topo, DistillationMode::HopByHop);
            let matrix = RoutingMatrix::build(&d);
            let binding = Binding::bind(d.vns(), &BindingParams::new(2, 2));
            let pod = greedy_k_clusters(&d, 2, 3);
            let mut profile = HardwareProfile::unconstrained();
            profile.payload_caching = caching;
            let mut emu = MultiCoreEmulator::new(&d, pod, matrix, &binding, profile, 1);
            let src = binding.vn_at(pairs[0].0).unwrap();
            let dst = binding.vn_at(pairs[0].1).unwrap();
            for i in 0..20 {
                let t = SimTime::from_micros(i * 1300);
                emu.submit(t, tcp_packet(i, src, dst, 1460, t));
            }
            let _ = run_until_idle(&mut emu, SimTime::ZERO);
            emu.total_stats()
        };
        let without = run(false);
        let with = run(true);
        assert_eq!(without.packets_delivered, 20);
        assert_eq!(with.packets_delivered, 20);
        if without.tunnels_out > 0 {
            assert!(with.bytes_out < without.bytes_out);
        }
    }

    #[test]
    fn descriptors_toward_a_downed_node_are_counted_not_stranded() {
        let (topo, pairs) = path_pairs_topology(&PathPairsParams {
            pairs: 1,
            hops: 4,
            bandwidth: DataRate::from_mbps(10),
            end_to_end_latency: SimDuration::from_millis(10),
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, 1));
        let pod = greedy_k_clusters(&d, 1, 7);
        let third_hop = matrix.lookup(pairs[0].0, pairs[0].1).unwrap().pipes[2];
        let mut emu = MultiCoreEmulator::new(
            &d,
            pod,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            1,
        );
        let src = binding.vn_at(pairs[0].0).unwrap();
        let dst = binding.vn_at(pairs[0].1).unwrap();
        let now = SimTime::ZERO;
        for i in 0..5 {
            assert!(emu
                .submit(now, tcp_packet(i, src, dst, 1460, now))
                .is_accepted());
        }
        // A node on the route fails while all five descriptors are still on
        // earlier hops: its incident pipe drops to zero bandwidth, exactly
        // as the dynamics engine's NodeDown handler configures it.
        let mut failed = d.pipe(third_hop).attrs;
        failed.bandwidth = DataRate::ZERO;
        assert!(emu.update_pipe_attrs(third_hop, failed));
        let deliveries = run_until_idle(&mut emu, now);
        // Nothing strands and nothing vanishes: every admitted packet is
        // accounted as an unreachable drop at the failed hop.
        assert!(deliveries.is_empty());
        let stats = emu.total_stats();
        assert_eq!(stats.packets_admitted, 5);
        assert_eq!(stats.dropped_unreachable, 5);
        assert_eq!(
            stats.packets_admitted,
            stats.packets_delivered + stats.dropped_unreachable + stats.physical_drops()
        );
        assert_eq!(emu.cores()[0].in_flight(), 0, "no descriptor strands");
    }

    #[test]
    fn vn_leave_drains_in_flight_and_refuses_new_traffic() {
        let (mut emu, src, dst) = single_path(8, 2);
        let now = SimTime::ZERO;
        for i in 0..10 {
            assert!(emu
                .submit(now, tcp_packet(i, src, dst, 1460, now))
                .is_accepted());
        }
        // The receiver departs with ten descriptors still in flight.
        assert!(emu.vn_leave(dst, now));
        assert!(!emu.vn_is_active(dst));
        assert!(emu.vn_is_active(src));
        assert_eq!(emu.active_vn_count(), 1);
        // New traffic touching the departed VN is refused pre-NIC...
        assert_eq!(
            emu.submit(now, tcp_packet(99, src, dst, 100, now)),
            SubmitOutcome::NoRoute
        );
        assert_eq!(
            emu.submit(now, tcp_packet(99, dst, src, 100, now)),
            SubmitOutcome::NoRoute
        );
        // ...but the pre-departure descriptors drain to delivery on their
        // retained route ids, tunnels included.
        let deliveries = run_until_idle(&mut emu, now);
        assert_eq!(deliveries.len(), 10);
        let stats = emu.total_stats();
        assert_eq!(stats.packets_delivered, 10);
        assert!(stats.tunnels_out > 0, "8 hops over 2 cores must tunnel");
        // Leaving twice is refused and changes nothing.
        assert!(!emu.vn_leave(dst, now));
    }

    #[test]
    fn vn_rejoin_restores_connectivity_and_recycles_the_source_tree() {
        let (topo, pairs) = path_pairs_topology(&PathPairsParams {
            pairs: 1,
            hops: 4,
            bandwidth: DataRate::from_mbps(10),
            end_to_end_latency: SimDuration::from_millis(10),
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, 1));
        let pod = greedy_k_clusters(&d, 1, 7);
        let mut emu = MultiCoreEmulator::new(
            &d,
            pod,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            1,
        );
        let src = binding.vn_at(pairs[0].0).unwrap();
        let dst = binding.vn_at(pairs[0].1).unwrap();
        let now = SimTime::ZERO;
        let live = emu.routing().live_source_count();
        assert!(emu.vn_leave(dst, now));
        // dst was the only endpoint at its location, so its source tree is
        // retired with it — O(component), no rebuild of anyone else's state.
        assert_eq!(emu.routing().live_source_count(), live - 1);
        assert_eq!(
            emu.submit(now, tcp_packet(1, src, dst, 100, now)),
            SubmitOutcome::NoRoute
        );
        // Rejoining re-grows the tree and rebinds the row shard in place.
        assert!(emu.vn_join(&d, dst, pairs[0].1, now));
        assert!(emu.vn_is_active(dst));
        assert_eq!(emu.routing().live_source_count(), live);
        assert!(emu
            .submit(now, tcp_packet(2, src, dst, 1460, now))
            .is_accepted());
        let deliveries = run_until_idle(&mut emu, now);
        assert_eq!(deliveries.len(), 1);
        assert_eq!(deliveries[0].hops, 4);
        // Refused churn: already-active id, gap id, unknown location.
        assert!(!emu.vn_join(&d, dst, pairs[0].1, now));
        assert!(!emu.vn_join(&d, VnId(999), pairs[0].1, now));
        assert!(!emu.vn_join(&d, VnId(2), NodeId(usize::MAX), now));
    }

    #[test]
    fn fresh_vn_joins_alongside_a_sibling_on_the_least_loaded_core() {
        let topo = star_topology(&StarParams {
            clients: 4,
            spoke_bandwidth: DataRate::from_mbps(10),
            spoke_latency: SimDuration::from_millis(5),
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let binding = Binding::bind(d.vns(), &BindingParams::new(2, 2));
        let pod = greedy_k_clusters(&d, 2, 7);
        let mut emu = MultiCoreEmulator::new(
            &d,
            pod,
            matrix,
            &binding,
            HardwareProfile::unconstrained(),
            3,
        );
        let now = SimTime::ZERO;
        assert_eq!(emu.active_vn_count(), 4);
        // Seed entry loads are 2/2; a departure tilts them to 2/1.
        assert!(emu.vn_leave(VnId(3), now));
        // The newcomer multiplexes onto VN 0's client node (sharing its
        // row shard) and must enter through the now least-loaded core 1.
        let newcomer = VnId(4);
        let sibling_loc = emu.vn_location(VnId(0)).unwrap();
        assert!(emu.vn_join(&d, newcomer, sibling_loc, now));
        assert_eq!(emu.vn_entry_core(newcomer), Some(CoreId(1)));
        assert_eq!(emu.vn_location(newcomer), Some(sibling_loc));
        assert_eq!(emu.active_vn_count(), 4);
        // Traffic to and from the newcomer flows like any seed VN's.
        assert!(emu
            .submit(now, tcp_packet(1, newcomer, VnId(1), 1000, now))
            .is_accepted());
        assert!(emu
            .submit(now, tcp_packet(2, VnId(2), newcomer, 1000, now))
            .is_accepted());
        let deliveries = run_until_idle(&mut emu, now);
        assert_eq!(deliveries.len(), 2);
        assert!(deliveries.iter().all(|d| d.hops == 2));
    }
}
