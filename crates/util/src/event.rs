//! A deterministic event queue keyed by virtual time.
//!
//! Both the simulation driver (in the `modelnet` façade crate) and the core's
//! pipe scheduler need "earliest deadline first" ordering. [`EventHeap`] is a
//! thin wrapper over a binary heap that breaks ties by insertion order so that
//! runs are reproducible regardless of heap internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Ordering key for heap entries: deadline first, then insertion sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// The virtual time at which the event fires.
    pub time: SimTime,
    /// Monotonic insertion sequence number, used to break ties
    /// deterministically (FIFO among equal deadlines).
    pub seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    key: EventKey,
    value: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A min-heap of `(SimTime, T)` with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use mn_util::{EventHeap, SimTime};
///
/// let mut heap = EventHeap::new();
/// heap.push(SimTime::from_millis(5), "later");
/// heap.push(SimTime::from_millis(1), "sooner");
/// assert_eq!(heap.pop().unwrap().1, "sooner");
/// assert_eq!(heap.pop().unwrap().1, "later");
/// assert!(heap.is_empty());
/// ```
#[derive(Debug)]
pub struct EventHeap<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

impl<T> Default for EventHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventHeap<T> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        EventHeap {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty heap with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventHeap {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `value` to fire at `time`. Returns the key, which can be used
    /// by callers that keep their own cancellation sets.
    pub fn push(&mut self, time: SimTime, value: T) -> EventKey {
        let key = EventKey {
            time,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { key, value }));
        key
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.key.time, e.value))
    }

    /// Removes and returns the earliest event together with its key.
    pub fn pop_with_key(&mut self) -> Option<(EventKey, T)> {
        self.heap.pop().map(|Reverse(e)| (e.key, e.value))
    }

    /// Returns the deadline of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.key.time)
    }

    /// Removes and returns the earliest event only if its deadline is at or
    /// before `now`.
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        match self.peek_time() {
            Some(t) if t <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        h.push(SimTime::from_millis(30), 3);
        h.push(SimTime::from_millis(10), 1);
        h.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| h.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut h = EventHeap::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            h.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| h.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut h = EventHeap::new();
        h.push(SimTime::from_millis(10), "a");
        h.push(SimTime::from_millis(20), "b");
        assert_eq!(h.pop_due(SimTime::from_millis(5)), None);
        assert_eq!(h.pop_due(SimTime::from_millis(10)).unwrap().1, "a");
        assert_eq!(h.pop_due(SimTime::from_millis(15)), None);
        assert_eq!(h.pop_due(SimTime::from_millis(25)).unwrap().1, "b");
        assert!(h.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut h = EventHeap::new();
        h.push(SimTime::from_secs(1), ());
        assert_eq!(h.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut h = EventHeap::new();
        h.push(SimTime::ZERO, 1);
        h.push(SimTime::ZERO, 2);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn keys_are_unique_and_monotone() {
        let mut h = EventHeap::new();
        let k1 = h.push(SimTime::ZERO, ());
        let k2 = h.push(SimTime::ZERO, ());
        assert!(k2.seq > k1.seq);
    }
}
