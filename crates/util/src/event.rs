//! A deterministic event queue keyed by virtual time.
//!
//! Both the simulation driver (in the `modelnet` façade crate) and the core's
//! pipe scheduler need "earliest deadline first" ordering. [`EventHeap`] is a
//! thin wrapper over a binary heap that breaks ties by insertion order so that
//! runs are reproducible regardless of heap internals.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// Ordering key for heap entries: deadline first, then insertion sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct EventKey {
    /// The virtual time at which the event fires.
    pub time: SimTime,
    /// Monotonic insertion sequence number, used to break ties
    /// deterministically (FIFO among equal deadlines).
    pub seq: u64,
}

#[derive(Debug)]
struct Entry<T> {
    key: EventKey,
    value: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// A min-heap of `(SimTime, T)` with FIFO tie-breaking.
///
/// # Examples
///
/// ```
/// use mn_util::{EventHeap, SimTime};
///
/// let mut heap = EventHeap::new();
/// heap.push(SimTime::from_millis(5), "later");
/// heap.push(SimTime::from_millis(1), "sooner");
/// assert_eq!(heap.pop().unwrap().1, "sooner");
/// assert_eq!(heap.pop().unwrap().1, "later");
/// assert!(heap.is_empty());
/// ```
#[derive(Debug)]
pub struct EventHeap<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    next_seq: u64,
}

impl<T> Default for EventHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventHeap<T> {
    /// Creates an empty heap.
    pub fn new() -> Self {
        EventHeap {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty heap with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventHeap {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
        }
    }

    /// Schedules `value` to fire at `time`. Returns the key, which can be used
    /// by callers that keep their own cancellation sets.
    #[inline]
    pub fn push(&mut self, time: SimTime, value: T) -> EventKey {
        let key = EventKey {
            time,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.heap.push(Reverse(Entry { key, value }));
        key
    }

    /// Removes and returns the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|Reverse(e)| (e.key.time, e.value))
    }

    /// Removes and returns the earliest event together with its key.
    #[inline]
    pub fn pop_with_key(&mut self) -> Option<(EventKey, T)> {
        self.heap.pop().map(|Reverse(e)| (e.key, e.value))
    }

    /// Returns the earliest event without removing it.
    #[inline]
    pub fn peek(&self) -> Option<(SimTime, &T)> {
        self.heap.peek().map(|Reverse(e)| (e.key.time, &e.value))
    }

    /// Returns the deadline of the earliest event without removing it.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.key.time)
    }

    /// Removes and returns the earliest event only if its deadline is at or
    /// before `now`. The due check peeks before popping, so the common
    /// nothing-due case is a single branch on the heap root.
    #[inline]
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        match self.heap.peek() {
            Some(Reverse(e)) if e.key.time <= now => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut h = EventHeap::new();
        h.push(SimTime::from_millis(30), 3);
        h.push(SimTime::from_millis(10), 1);
        h.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| h.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut h = EventHeap::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            h.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| h.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut h = EventHeap::new();
        h.push(SimTime::from_millis(10), "a");
        h.push(SimTime::from_millis(20), "b");
        assert_eq!(h.pop_due(SimTime::from_millis(5)), None);
        assert_eq!(h.pop_due(SimTime::from_millis(10)).unwrap().1, "a");
        assert_eq!(h.pop_due(SimTime::from_millis(15)), None);
        assert_eq!(h.pop_due(SimTime::from_millis(25)).unwrap().1, "b");
        assert!(h.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut h = EventHeap::new();
        h.push(SimTime::from_secs(1), ());
        assert_eq!(h.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn clear_empties() {
        let mut h = EventHeap::new();
        h.push(SimTime::ZERO, 1);
        h.push(SimTime::ZERO, 2);
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.pop(), None);
    }

    #[test]
    fn keys_are_unique_and_monotone() {
        let mut h = EventHeap::new();
        let k1 = h.push(SimTime::ZERO, ());
        let k2 = h.push(SimTime::ZERO, ());
        assert!(k2.seq > k1.seq);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Pop order is globally sorted by deadline, FIFO among equal
            /// deadlines — the invariant the deterministic scheduler rests
            /// on. Deadlines are drawn from a tiny domain so collisions are
            /// guaranteed.
            #[test]
            fn pops_sorted_by_time_then_insertion(times in prop::collection::vec(0u64..8, 1..300)) {
                let mut h = EventHeap::new();
                for (i, &t) in times.iter().enumerate() {
                    h.push(SimTime::from_micros(t), i);
                }
                let mut popped = Vec::new();
                while let Some((t, i)) = h.pop() {
                    popped.push((t, i));
                }
                prop_assert_eq!(popped.len(), times.len());
                for w in popped.windows(2) {
                    prop_assert!(w[0].0 <= w[1].0, "deadlines out of order");
                    if w[0].0 == w[1].0 {
                        prop_assert!(
                            w[0].1 < w[1].1,
                            "equal deadlines must pop in insertion order"
                        );
                    }
                }
            }

            /// Interleaving pops with pushes never breaks the FIFO tie-break:
            /// among events that share a deadline, earlier insertion always
            /// pops first, even when insertions straddle pops.
            #[test]
            fn fifo_survives_interleaved_pops(
                batches in prop::collection::vec(prop::collection::vec(0u64..4, 1..10), 1..40),
            ) {
                let mut h = EventHeap::new();
                let mut seq = 0usize;
                let mut popped: Vec<(SimTime, usize)> = Vec::new();
                for batch in &batches {
                    for &t in batch {
                        h.push(SimTime::from_micros(t), seq);
                        seq += 1;
                    }
                    // Drain only what is due "now" (the smallest deadline).
                    if let Some(t0) = h.peek_time() {
                        while let Some(e) = h.pop_due(t0) {
                            popped.push(e);
                        }
                    }
                }
                while let Some(e) = h.pop() {
                    popped.push(e);
                }
                prop_assert_eq!(popped.len(), seq);
                // Two events with the same deadline are either in the heap
                // together (FIFO pop) or the earlier one was already drained
                // in an earlier round — so insertion order must be ascending
                // among ALL equal-deadline pairs, not just adjacent ones, no
                // matter how pops interleave.
                let mut last_seq_at: std::collections::BTreeMap<SimTime, usize> =
                    std::collections::BTreeMap::new();
                for &(t, seq) in &popped {
                    if let Some(&prev) = last_seq_at.get(&t) {
                        prop_assert!(
                            prev < seq,
                            "later insertion popped before an earlier one at deadline {t}: \
                             seq {prev} then {seq}"
                        );
                    }
                    last_seq_at.insert(t, seq);
                }
            }

            /// `pop_due` returns exactly the prefix of events with deadline
            /// <= now, in the same order a full drain would yield them.
            #[test]
            fn pop_due_is_a_prefix_of_full_drain(
                times in prop::collection::vec(0u64..10, 1..200),
                cut in 0u64..10,
            ) {
                let now = SimTime::from_micros(cut);
                let mut a = EventHeap::new();
                let mut b = EventHeap::new();
                for (i, &t) in times.iter().enumerate() {
                    a.push(SimTime::from_micros(t), i);
                    b.push(SimTime::from_micros(t), i);
                }
                let mut due = Vec::new();
                while let Some(e) = a.pop_due(now) {
                    due.push(e);
                }
                let mut all = Vec::new();
                while let Some(e) = b.pop() {
                    all.push(e);
                }
                let expected_len = times.iter().filter(|&&t| t <= cut).count();
                prop_assert_eq!(due.len(), expected_len);
                prop_assert_eq!(&due[..], &all[..due.len()]);
            }
        }
    }
}
