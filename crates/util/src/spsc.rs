//! Bounded single-producer/single-consumer rings.
//!
//! [`channel`] builds the lock-free queue the parallel emulation backend
//! moves tunnelled descriptors (and coordinator commands) through: one core
//! thread pushes, one core thread pops, and the hot path is two atomic
//! loads and one atomic store per operation — no locks, no allocation, no
//! sharing of cache lines between the two sides.
//!
//! The design is the classic Lamport ring with cached indices:
//!
//! * a fixed power-of-two slot array, written through [`UnsafeCell`];
//! * `head` (next slot to pop) owned by the consumer, `tail` (next slot to
//!   push) owned by the producer, each on its own cache line;
//! * each side keeps a *cached* copy of the other side's index and re-reads
//!   the shared atomic only when the cache says the ring looks full (or
//!   empty), so an uncontended transfer touches the peer's line rarely.
//!
//! Capacity is fixed at construction: [`Producer::try_push`] reports a full
//! ring by handing the value back instead of blocking, which lets callers
//! choose their own overflow policy (the emulator spills to a local buffer
//! rather than risk a producer/consumer deadlock cycle).

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads a value out to its own cache line so the producer and consumer
/// indices never false-share.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Shared<T> {
    /// Slot storage; a slot is initialised exactly when it lies in
    /// `[head, tail)` modulo the capacity.
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `capacity - 1`; the capacity is always a power of two.
    mask: usize,
    /// Next slot the consumer will pop. Monotonically increasing; slot
    /// index is `head & mask`.
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will push.
    tail: CachePadded<AtomicUsize>,
}

// The ring hands `T` values across threads, so it is `Send`/`Sync` exactly
// when `T: Send`. Only one thread ever holds the `Producer` and one the
// `Consumer`, which is what makes the unsynchronised slot accesses sound.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Shared<T> {
    fn capacity(&self) -> usize {
        self.mask + 1
    }
}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both endpoints are gone (Arc refcount reached zero), so the
        // indices are quiescent; drop whatever is still queued.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = self.buf[i & self.mask].get();
            unsafe { (*slot).assume_init_drop() };
        }
    }
}

/// The push side of a bounded SPSC ring. `!Clone`: exactly one producer.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Producer-owned copy of `tail` (no atomic read needed to push).
    tail: usize,
    /// Last observed `head`; refreshed only when the ring looks full.
    head_cache: usize,
}

/// The pop side of a bounded SPSC ring. `!Clone`: exactly one consumer.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Consumer-owned copy of `head`.
    head: usize,
    /// Last observed `tail`; refreshed only when the ring looks empty.
    tail_cache: usize,
}

/// Creates a bounded SPSC ring holding at least `capacity` elements
/// (rounded up to a power of two, minimum 2).
pub fn channel<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(Shared {
        buf,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer {
            shared: shared.clone(),
            tail: 0,
            head_cache: 0,
        },
        Consumer {
            shared,
            head: 0,
            tail_cache: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Slots the ring can hold.
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Appends `value`, or returns it when the ring is full.
    #[inline]
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let cap = self.shared.capacity();
        if self.tail - self.head_cache == cap {
            // Looks full through the cache; re-read the real head.
            self.head_cache = self.shared.head.0.load(Ordering::Acquire);
            if self.tail - self.head_cache == cap {
                return Err(value);
            }
        }
        let slot = self.shared.buf[self.tail & self.shared.mask].get();
        // Sound: the slot is outside `[head, tail)`, so the consumer never
        // touches it, and this thread is the only producer.
        unsafe { (*slot).write(value) };
        self.tail += 1;
        // Release: the slot write must be visible before the new tail.
        self.shared.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Returns `true` if a push would currently fail.
    pub fn is_full(&mut self) -> bool {
        let cap = self.shared.capacity();
        if self.tail - self.head_cache == cap {
            self.head_cache = self.shared.head.0.load(Ordering::Acquire);
        }
        self.tail - self.head_cache == cap
    }
}

impl<T> Consumer<T> {
    /// Slots the ring can hold.
    pub fn capacity(&self) -> usize {
        self.shared.capacity()
    }

    /// Removes and returns the oldest element, or `None` when empty.
    #[inline]
    pub fn try_pop(&mut self) -> Option<T> {
        if self.head == self.tail_cache {
            // Looks empty through the cache; re-read the real tail.
            // Acquire pairs with the producer's release store so the slot
            // contents are visible.
            self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
            if self.head == self.tail_cache {
                return None;
            }
        }
        let slot = self.shared.buf[self.head & self.shared.mask].get();
        let value = unsafe { (*slot).assume_init_read() };
        self.head += 1;
        // Release: the slot read must complete before the slot is handed
        // back to the producer.
        self.shared.head.0.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Returns `true` if a pop would currently fail.
    pub fn is_empty(&mut self) -> bool {
        if self.head == self.tail_cache {
            self.tail_cache = self.shared.tail.0.load(Ordering::Acquire);
        }
        self.head == self.tail_cache
    }
}

impl<T> std::fmt::Debug for Producer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("spsc::Producer")
            .field("capacity", &self.shared.capacity())
            .finish()
    }
}

impl<T> std::fmt::Debug for Consumer<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("spsc::Consumer")
            .field("capacity", &self.shared.capacity())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (mut tx, mut rx) = channel::<u32>(8);
        for i in 0..8 {
            tx.try_push(i).unwrap();
        }
        assert!(tx.try_push(99).is_err(), "ring of 8 holds exactly 8");
        for i in 0..8 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = channel::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = channel::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn wraparound_preserves_order() {
        let (mut tx, mut rx) = channel::<usize>(4);
        // Drive the indices far past the capacity so slots are reused many
        // times.
        for round in 0..1000 {
            for i in 0..3 {
                tx.try_push(round * 3 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(rx.try_pop(), Some(round * 3 + i));
            }
        }
        assert!(rx.is_empty());
    }

    #[test]
    fn full_then_drain_then_reuse() {
        let (mut tx, mut rx) = channel::<String>(2);
        tx.try_push("a".to_string()).unwrap();
        tx.try_push("b".to_string()).unwrap();
        assert!(tx.is_full());
        assert_eq!(rx.try_pop().as_deref(), Some("a"));
        assert!(!tx.is_full());
        tx.try_push("c".to_string()).unwrap();
        assert_eq!(rx.try_pop().as_deref(), Some("b"));
        assert_eq!(rx.try_pop().as_deref(), Some("c"));
        assert!(rx.is_empty());
    }

    #[test]
    fn queued_values_are_dropped_with_the_ring() {
        let marker = Arc::new(());
        let (mut tx, rx) = channel::<Arc<()>>(8);
        for _ in 0..5 {
            tx.try_push(marker.clone()).unwrap();
        }
        assert_eq!(Arc::strong_count(&marker), 6);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&marker), 1, "ring drop frees its slots");
    }

    #[test]
    fn cross_thread_transfer_is_lossless_and_ordered() {
        const N: u64 = 200_000;
        let (mut tx, mut rx) = channel::<u64>(64);
        let producer = std::thread::spawn(move || {
            let mut next = 0u64;
            while next < N {
                match tx.try_push(next) {
                    Ok(()) => next += 1,
                    Err(_) => std::thread::yield_now(),
                }
            }
        });
        let mut expected = 0u64;
        let mut sum = 0u64;
        while expected < N {
            match rx.try_pop() {
                Some(v) => {
                    assert_eq!(v, expected, "values arrive in push order");
                    sum = sum.wrapping_add(v);
                    expected += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(sum, N * (N - 1) / 2);
        assert_eq!(rx.try_pop(), None);
    }
}
