//! Measurement infrastructure: CDFs, histograms, running summaries and
//! throughput meters.
//!
//! The paper's kernel logging package records per-packet expected vs. actual
//! delay and the evaluation section reports CDFs of flow bandwidths, download
//! speeds and client latencies. These types are the Rust-side equivalent used
//! by `mn-emucore`'s accuracy log, by the applications and by the benchmark
//! harness when it prints the rows/series of each table and figure.

use serde::{Deserialize, Serialize};

use crate::rate::ByteSize;
use crate::time::{SimDuration, SimTime};

/// An empirical cumulative distribution function over `f64` samples.
///
/// # Examples
///
/// ```
/// use mn_util::Cdf;
///
/// let mut cdf = Cdf::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     cdf.add(v);
/// }
/// assert_eq!(cdf.quantile(0.5), Some(2.0));
/// assert_eq!(cdf.fraction_at_or_below(3.0), 0.75);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cdf {
    samples: Vec<f64>,
    sorted: bool,
}

impl Cdf {
    /// Creates an empty CDF.
    pub fn new() -> Self {
        Cdf {
            samples: Vec::new(),
            sorted: true,
        }
    }

    /// Adds a sample. Non-finite samples are ignored.
    pub fn add(&mut self, value: f64) {
        if value.is_finite() {
            self.samples.push(value);
            self.sorted = false;
        }
    }

    /// Adds every sample from an iterator.
    pub fn extend<I: IntoIterator<Item = f64>>(&mut self, values: I) {
        for v in values {
            self.add(v);
        }
    }

    /// Number of samples collected.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` if no samples have been collected.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
            self.sorted = true;
        }
    }

    /// Returns the `q`-quantile (0.0 ≤ q ≤ 1.0) using the nearest-rank method,
    /// or `None` if the CDF is empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.samples[rank.min(self.samples.len() - 1)])
    }

    /// Returns the median, or `None` if empty.
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Returns the minimum sample.
    pub fn min(&mut self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        Some(self.samples[0])
    }

    /// Returns the maximum sample.
    pub fn max(&mut self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        Some(*self.samples.last().unwrap())
    }

    /// Returns the arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.samples.iter().sum::<f64>() / self.samples.len() as f64)
        }
    }

    /// Fraction of samples less than or equal to `value`.
    pub fn fraction_at_or_below(&mut self, value: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.ensure_sorted();
        let count = self.samples.partition_point(|&s| s <= value);
        count as f64 / self.samples.len() as f64
    }

    /// Returns the full `(value, cumulative fraction)` curve, one point per
    /// sample, suitable for plotting or for the benchmark harness to print.
    pub fn points(&mut self) -> Vec<(f64, f64)> {
        self.ensure_sorted();
        let n = self.samples.len();
        self.samples
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Returns the curve downsampled to at most `max_points` points (always
    /// keeping the first and last), for compact textual output.
    pub fn points_downsampled(&mut self, max_points: usize) -> Vec<(f64, f64)> {
        let pts = self.points();
        if pts.len() <= max_points || max_points < 2 {
            return pts;
        }
        let mut out = Vec::with_capacity(max_points);
        let step = (pts.len() - 1) as f64 / (max_points - 1) as f64;
        for i in 0..max_points {
            let idx = (i as f64 * step).round() as usize;
            out.push(pts[idx.min(pts.len() - 1)]);
        }
        out
    }

    /// Borrow of the raw (unsorted) samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// A fixed-bucket histogram over `f64` samples.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    buckets: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram covering `[lo, hi)` with `nbuckets` equal buckets.
    ///
    /// # Panics
    ///
    /// Panics if `nbuckets == 0` or `hi <= lo`.
    pub fn new(lo: f64, hi: f64, nbuckets: usize) -> Self {
        assert!(nbuckets > 0, "histogram needs at least one bucket");
        assert!(hi > lo, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            buckets: vec![0; nbuckets],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let frac = (value - self.lo) / (self.hi - self.lo);
            let idx = ((frac * self.buckets.len() as f64) as usize).min(self.buckets.len() - 1);
            self.buckets[idx] += 1;
        }
    }

    /// Total samples observed (including under/overflow).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Samples below the histogram range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Samples at or above the histogram range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Iterator over `(bucket_midpoint, count)`.
    pub fn buckets(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        let width = (self.hi - self.lo) / self.buckets.len() as f64;
        self.buckets
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + width * (i as f64 + 0.5), c))
    }
}

/// Streaming mean / variance / extremes without storing samples
/// (Welford's algorithm).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample. Non-finite samples are ignored.
    pub fn add(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or 0.0 if empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance, or 0.0 if fewer than two samples.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.min)
        }
    }

    /// Largest sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.max)
        }
    }

    /// The raw accumulator fields `(count, mean, m2, min, max)`, for
    /// checkpointing the estimator mid-stream.
    pub fn snapshot_parts(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from fields captured by
    /// [`RunningStats::snapshot_parts`]; the restored estimator continues the
    /// stream bit-identically.
    pub fn from_snapshot_parts(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        RunningStats {
            count,
            mean,
            m2,
            min,
            max,
        }
    }
}

/// Measures aggregate throughput over a window of virtual time.
///
/// Used by the capacity experiments (Figure 4, Table 1) to report packets per
/// second and bits per second once the measurement interval closes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ThroughputMeter {
    start: SimTime,
    end: SimTime,
    bytes: u64,
    packets: u64,
    window_start: Option<SimTime>,
    window_end: Option<SimTime>,
}

impl ThroughputMeter {
    /// Creates a meter that counts everything it observes.
    pub fn new() -> Self {
        ThroughputMeter {
            start: SimTime::MAX,
            end: SimTime::ZERO,
            bytes: 0,
            packets: 0,
            window_start: None,
            window_end: None,
        }
    }

    /// Creates a meter that only counts observations within
    /// `[window_start, window_end)`, which lets experiments discard warm-up
    /// and cool-down transients.
    pub fn with_window(window_start: SimTime, window_end: SimTime) -> Self {
        ThroughputMeter {
            start: SimTime::MAX,
            end: SimTime::ZERO,
            bytes: 0,
            packets: 0,
            window_start: Some(window_start),
            window_end: Some(window_end),
        }
    }

    /// Records delivery of one packet of `size` bytes at time `now`.
    pub fn record(&mut self, now: SimTime, size: ByteSize) {
        if let Some(ws) = self.window_start {
            if now < ws {
                return;
            }
        }
        if let Some(we) = self.window_end {
            if now >= we {
                return;
            }
        }
        self.start = self.start.min(now);
        self.end = self.end.max(now);
        self.bytes += size.as_bytes();
        self.packets += 1;
    }

    /// Total packets recorded.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> ByteSize {
        ByteSize::from_bytes(self.bytes)
    }

    /// The span between first and last recorded packet, or the configured
    /// window if one was given.
    pub fn elapsed(&self) -> SimDuration {
        match (self.window_start, self.window_end) {
            (Some(ws), Some(we)) => we - ws,
            _ => {
                if self.end > self.start {
                    self.end - self.start
                } else {
                    SimDuration::ZERO
                }
            }
        }
    }

    /// Average packets per second over [`Self::elapsed`], or 0.0 if the window
    /// is degenerate.
    pub fn packets_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.packets as f64 / secs
        }
    }

    /// Average goodput in bits per second over [`Self::elapsed`].
    pub fn bits_per_sec(&self) -> f64 {
        let secs = self.elapsed().as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            (self.bytes * 8) as f64 / secs
        }
    }

    /// Average goodput in kilobits per second.
    pub fn kbits_per_sec(&self) -> f64 {
        self.bits_per_sec() / 1e3
    }

    /// Average goodput in megabits per second.
    pub fn mbits_per_sec(&self) -> f64 {
        self.bits_per_sec() / 1e6
    }
}

impl Default for ThroughputMeter {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_quantiles() {
        let mut cdf = Cdf::new();
        cdf.extend((1..=100).map(|i| i as f64));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.quantile(0.5), Some(50.0));
        assert_eq!(cdf.quantile(1.0), Some(100.0));
        assert_eq!(cdf.median(), Some(50.0));
        assert_eq!(cdf.min(), Some(1.0));
        assert_eq!(cdf.max(), Some(100.0));
        assert!((cdf.mean().unwrap() - 50.5).abs() < 1e-9);
    }

    #[test]
    fn cdf_fraction_at_or_below() {
        let mut cdf = Cdf::new();
        cdf.extend([10.0, 20.0, 30.0, 40.0]);
        assert_eq!(cdf.fraction_at_or_below(5.0), 0.0);
        assert_eq!(cdf.fraction_at_or_below(20.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(100.0), 1.0);
    }

    #[test]
    fn cdf_ignores_non_finite() {
        let mut cdf = Cdf::new();
        cdf.add(f64::NAN);
        cdf.add(f64::INFINITY);
        cdf.add(1.0);
        assert_eq!(cdf.len(), 1);
    }

    #[test]
    fn cdf_empty_behaviour() {
        let mut cdf = Cdf::new();
        assert!(cdf.is_empty());
        assert_eq!(cdf.quantile(0.5), None);
        assert_eq!(cdf.mean(), None);
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
    }

    #[test]
    fn cdf_points_monotone() {
        let mut cdf = Cdf::new();
        cdf.extend([3.0, 1.0, 2.0]);
        let pts = cdf.points();
        assert_eq!(pts.len(), 3);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_downsampling_keeps_endpoints() {
        let mut cdf = Cdf::new();
        cdf.extend((0..1000).map(|i| i as f64));
        let pts = cdf.points_downsampled(10);
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[0].0, 0.0);
        assert_eq!(pts[9].0, 999.0);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for v in [-1.0, 0.5, 5.5, 9.9, 10.0, 42.0] {
            h.add(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        let counts: Vec<u64> = h.buckets().map(|(_, c)| c).collect();
        assert_eq!(counts.iter().sum::<u64>(), 3);
        assert_eq!(counts[0], 1);
        assert_eq!(counts[5], 1);
        assert_eq!(counts[9], 1);
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn histogram_rejects_zero_buckets() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn running_stats_mean_and_stddev() {
        let mut s = RunningStats::new();
        for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(v);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn throughput_meter_rates() {
        let mut m = ThroughputMeter::new();
        // 1000 packets of 1000 bytes over one second.
        for i in 0..1000u64 {
            m.record(SimTime::from_millis(i), ByteSize::from_bytes(1000));
        }
        assert_eq!(m.packets(), 1000);
        let pps = m.packets_per_sec();
        assert!((pps - 1001.0).abs() < 2.0, "pps = {pps}");
        assert!(m.mbits_per_sec() > 7.9 && m.mbits_per_sec() < 8.2);
    }

    #[test]
    fn throughput_meter_window_filters() {
        let mut m = ThroughputMeter::with_window(SimTime::from_secs(1), SimTime::from_secs(2));
        m.record(SimTime::from_millis(500), ByteSize::from_bytes(100));
        m.record(SimTime::from_millis(1500), ByteSize::from_bytes(100));
        m.record(SimTime::from_millis(2500), ByteSize::from_bytes(100));
        assert_eq!(m.packets(), 1);
        assert_eq!(m.elapsed(), SimDuration::from_secs(1));
        assert!((m.packets_per_sec() - 1.0).abs() < 1e-9);
    }
}
