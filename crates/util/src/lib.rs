//! Foundation primitives shared by every ModelNet-RS crate.
//!
//! This crate deliberately has no knowledge of topologies, pipes or packets.
//! It provides the vocabulary the rest of the emulator is written in:
//!
//! * [`SimTime`] and [`SimDuration`] — nanosecond-resolution virtual time,
//!   the clock every component of the emulation runs against.
//! * [`DataRate`] and [`ByteSize`] — link bandwidths and transfer sizes with
//!   the arithmetic needed to turn "N bytes at rate R" into a duration.
//! * [`EventHeap`] — the deterministic comparison-based event queue, the
//!   fallback scheduler where deadlines are sparse.
//! * [`TimerWheel`] — the hierarchical timing wheel the per-packet scheduler
//!   path runs on: `O(1)` push/pop for near-term deadlines, identical
//!   deadline-then-insertion-order semantics to [`EventHeap`].
//! * [`spsc`] — bounded single-producer/single-consumer rings, the
//!   lock-free queues the parallel execution backend tunnels descriptors
//!   through.
//! * [`sync`] — spin/yield backoff and a sense-reversing spin barrier for
//!   the epoch synchronisation of the parallel backend.
//! * [`stats`] — CDFs, histograms, throughput meters and summary statistics
//!   used by the measurement infrastructure and the benchmark harness.
//! * [`rngs`] — seeded RNG construction helpers so every experiment is
//!   reproducible from a single `u64` seed.

pub mod alloc;
pub mod codec;
pub mod event;
pub mod rate;
pub mod rngs;
pub mod spsc;
pub mod stats;
pub mod sync;
pub mod time;
pub mod wheel;

pub use codec::{ByteReader, ByteWriter, CodecError};
pub use event::{EventHeap, EventKey};
pub use rate::{ByteSize, DataRate};
pub use rngs::seeded_rng;
pub use stats::{Cdf, Histogram, RunningStats, ThroughputMeter};
pub use sync::{SpinBarrier, SpinWait};
pub use time::{SimDuration, SimTime};
pub use wheel::{TimerWheel, DEFAULT_WHEEL_QUANTUM};
