//! Virtual time for the emulation.
//!
//! ModelNet runs in real time on its hardware testbed; this reproduction runs
//! the same algorithms against a virtual clock so that experiments are
//! deterministic and independent of host speed. Both the instant type
//! ([`SimTime`]) and the span type ([`SimDuration`]) carry nanosecond
//! resolution, which is comfortably finer than the 100 µs hardware timer the
//! paper's core scheduler uses.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A span of virtual time with nanosecond resolution.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from whole nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration from whole microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds.
    ///
    /// Negative or non-finite inputs saturate to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// Creates a duration from fractional milliseconds.
    pub fn from_millis_f64(millis: f64) -> Self {
        Self::from_secs_f64(millis / 1e3)
    }

    /// Creates a duration from fractional microseconds.
    pub fn from_micros_f64(micros: f64) -> Self {
        Self::from_secs_f64(micros / 1e6)
    }

    /// Returns the duration in whole nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration in whole microseconds (truncated).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration in whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Returns the duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the duration in fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    pub const fn checked_add(self, rhs: SimDuration) -> Option<SimDuration> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(SimDuration(v)),
            None => None,
        }
    }

    /// Multiplies the duration by a floating point factor, saturating at zero.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// An instant of virtual time, measured in nanoseconds since the start of the
/// emulation run.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

impl SimTime {
    /// The start of the emulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as "never" for idle deadlines.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from whole nanoseconds since the emulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant from whole microseconds since the emulation start.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant from whole milliseconds since the emulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant from whole seconds since the emulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Creates an instant from fractional seconds since the emulation start.
    pub fn from_secs_f64(secs: f64) -> Self {
        SimTime(SimDuration::from_secs_f64(secs).as_nanos())
    }

    /// Returns the instant as nanoseconds since the emulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds since the emulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the instant as fractional milliseconds since the emulation start.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the elapsed duration since `earlier`, or zero if `earlier` is
    /// in the future.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.as_nanos()))
    }

    /// Returns the larger of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos())
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.as_nanos();
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.as_nanos())
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(
            SimDuration::from_secs_f64(0.5),
            SimDuration::from_millis(500)
        );
    }

    #[test]
    fn duration_float_roundtrip() {
        let d = SimDuration::from_micros(12_345);
        assert!((d.as_secs_f64() - 0.012_345).abs() < 1e-12);
        assert!((d.as_millis_f64() - 12.345).abs() < 1e-9);
        assert!((d.as_micros_f64() - 12_345.0).abs() < 1e-6);
    }

    #[test]
    fn duration_from_secs_f64_saturates_on_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::NEG_INFINITY),
            SimDuration::ZERO
        );
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(a + b, SimDuration::from_millis(14));
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(a * 3, SimDuration::from_millis(30));
        assert_eq!(a / 2, SimDuration::from_millis(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = (1..=4).map(SimDuration::from_millis).sum();
        assert_eq!(total, SimDuration::from_millis(10));
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::from_millis(100);
        let t1 = t0 + SimDuration::from_millis(50);
        assert_eq!(t1, SimTime::from_millis(150));
        assert_eq!(t1 - t0, SimDuration::from_millis(50));
        assert_eq!(t1.duration_since(t0), SimDuration::from_millis(50));
        assert_eq!(t0.duration_since(t1), SimDuration::ZERO);
    }

    #[test]
    fn time_ordering() {
        assert!(SimTime::from_micros(1) < SimTime::from_micros(2));
        assert_eq!(
            SimTime::ZERO.max(SimTime::from_secs(1)),
            SimTime::from_secs(1)
        );
        assert_eq!(SimTime::ZERO.min(SimTime::from_secs(1)), SimTime::ZERO);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(25));
    }
}
