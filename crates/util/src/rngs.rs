//! Seeded random number generation helpers.
//!
//! Every ModelNet-RS experiment is driven by a single `u64` seed. Components
//! that need independent randomness derive sub-seeds with [`derive_seed`] so
//! that adding a new consumer never perturbs the random stream of an existing
//! one — this keeps regression comparisons between runs meaningful.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a deterministic RNG from a seed.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a sub-seed from a parent seed and a stream label.
///
/// Uses SplitMix64-style mixing so that nearby labels produce uncorrelated
/// streams.
///
/// # Examples
///
/// ```
/// use mn_util::rngs::derive_seed;
/// let a = derive_seed(42, 0);
/// let b = derive_seed(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, derive_seed(42, 0));
/// ```
pub fn derive_seed(parent: u64, stream: u64) -> u64 {
    let mut z = parent ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Creates a deterministic RNG for a named sub-stream of `parent`.
pub fn derived_rng(parent: u64, stream: u64) -> StdRng {
    seeded_rng(derive_seed(parent, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = seeded_rng(7);
        let mut b = seeded_rng(8);
        let av: Vec<u64> = (0..16).map(|_| a.gen()).collect();
        let bv: Vec<u64> = (0..16).map(|_| b.gen()).collect();
        assert_ne!(av, bv);
    }

    #[test]
    fn derived_seeds_are_stable_and_distinct() {
        let s0 = derive_seed(123, 0);
        let s1 = derive_seed(123, 1);
        let s2 = derive_seed(124, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        assert_eq!(s0, derive_seed(123, 0));
    }

    #[test]
    fn derived_rng_matches_derived_seed() {
        let mut a = derived_rng(99, 5);
        let mut b = seeded_rng(derive_seed(99, 5));
        assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    }
}
