//! A minimal binary codec for the snapshot subsystem.
//!
//! The emulator's checkpoint format (see `mn_emucore::snapshot`) needs a
//! deterministic, versioned, checksummed byte encoding that works offline —
//! the vendored `serde` stand-in is marker-only, so encoding is hand-rolled
//! here. Everything is little-endian and fixed-width; sequences are
//! length-prefixed with a `u64` count. Floats are encoded as their IEEE-754
//! bit patterns, so encode → decode → encode is byte-stable even for NaN
//! payloads.

use std::fmt;

use crate::rate::{ByteSize, DataRate};
use crate::time::{SimDuration, SimTime};

/// Decoding failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before the value was complete.
    Eof,
    /// The header magic did not match.
    BadMagic,
    /// The format version is not one this build can read.
    BadVersion(u32),
    /// The payload checksum did not match the header.
    BadChecksum,
    /// A decoded value was structurally invalid (enum tag, count, range).
    Invalid(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Eof => write!(f, "unexpected end of input"),
            CodecError::BadMagic => write!(f, "bad snapshot magic"),
            CodecError::BadVersion(v) => write!(f, "unsupported snapshot format version {v}"),
            CodecError::BadChecksum => write!(f, "snapshot checksum mismatch (corrupt input)"),
            CodecError::Invalid(what) => write!(f, "invalid snapshot field: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a 64-bit hash, used as the snapshot payload checksum. Not
/// cryptographic — it guards against truncation and bit rot, not tampering.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// An append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Creates a writer with `capacity` bytes pre-allocated.
    pub fn with_capacity(capacity: usize) -> Self {
        ByteWriter {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Returns `true` if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Borrow of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Appends raw bytes verbatim.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a `u16`, little-endian.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u32`, little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u64`, little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `u128`, little-endian.
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends an `f64` as its IEEE-754 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `bool` as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a sequence length prefix.
    pub fn put_len(&mut self, len: usize) {
        self.put_u64(len as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_len(s.len());
        self.put_bytes(s.as_bytes());
    }

    /// Appends a virtual-time instant.
    pub fn put_time(&mut self, t: SimTime) {
        self.put_u64(t.as_nanos());
    }

    /// Appends a virtual-time duration.
    pub fn put_duration(&mut self, d: SimDuration) {
        self.put_u64(d.as_nanos());
    }

    /// Appends a data rate.
    pub fn put_rate(&mut self, r: DataRate) {
        self.put_u64(r.as_bps());
    }

    /// Appends a byte size.
    pub fn put_size(&mut self, s: ByteSize) {
        self.put_u64(s.as_bytes());
    }

    /// Appends an `Option<u64>`-shaped value via a presence byte.
    pub fn put_opt_u64(&mut self, v: Option<u64>) {
        match v {
            Some(x) => {
                self.put_bool(true);
                self.put_u64(x);
            }
            None => self.put_bool(false),
        }
    }

    /// Appends an optional instant via a presence byte.
    pub fn put_opt_time(&mut self, t: Option<SimTime>) {
        self.put_opt_u64(t.map(SimTime::as_nanos));
    }
}

/// A cursor over encoded bytes, mirroring [`ByteWriter`].
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Creates a reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Returns `true` if every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Eof);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn get_u16(&mut self) -> Result<u16, CodecError> {
        Ok(u16::from_le_bytes(self.take_bytes(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take_bytes(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take_bytes(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u128`.
    pub fn get_u128(&mut self) -> Result<u128, CodecError> {
        Ok(u128::from_le_bytes(
            self.take_bytes(16)?.try_into().unwrap(),
        ))
    }

    /// Reads a `usize` encoded as a `u64`, rejecting values that do not fit.
    pub fn get_usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.get_u64()?).map_err(|_| CodecError::Invalid("usize overflow"))
    }

    /// Reads an `f64` bit pattern.
    pub fn get_f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `bool`, rejecting bytes other than 0 and 1.
    pub fn get_bool(&mut self) -> Result<bool, CodecError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool")),
        }
    }

    /// Reads a sequence length prefix, bounded by the bytes remaining so a
    /// corrupt count cannot trigger a huge allocation.
    pub fn get_len(&mut self) -> Result<usize, CodecError> {
        let len = self.get_usize()?;
        if len > self.remaining() {
            return Err(CodecError::Invalid("length prefix exceeds input"));
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_string(&mut self) -> Result<String, CodecError> {
        let len = self.get_len()?;
        let bytes = self.take_bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::Invalid("utf-8"))
    }

    /// Reads a virtual-time instant.
    pub fn get_time(&mut self) -> Result<SimTime, CodecError> {
        Ok(SimTime::from_nanos(self.get_u64()?))
    }

    /// Reads a virtual-time duration.
    pub fn get_duration(&mut self) -> Result<SimDuration, CodecError> {
        Ok(SimDuration::from_nanos(self.get_u64()?))
    }

    /// Reads a data rate.
    pub fn get_rate(&mut self) -> Result<DataRate, CodecError> {
        Ok(DataRate::from_bps(self.get_u64()?))
    }

    /// Reads a byte size.
    pub fn get_size(&mut self) -> Result<ByteSize, CodecError> {
        Ok(ByteSize::from_bytes(self.get_u64()?))
    }

    /// Reads an `Option<u64>` written by [`ByteWriter::put_opt_u64`].
    pub fn get_opt_u64(&mut self) -> Result<Option<u64>, CodecError> {
        if self.get_bool()? {
            Ok(Some(self.get_u64()?))
        } else {
            Ok(None)
        }
    }

    /// Reads an optional instant written by [`ByteWriter::put_opt_time`].
    pub fn get_opt_time(&mut self) -> Result<Option<SimTime>, CodecError> {
        Ok(self.get_opt_u64()?.map(SimTime::from_nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u16(300);
        w.put_u32(70_000);
        w.put_u64(u64::MAX - 1);
        w.put_u128(u128::MAX / 3);
        w.put_usize(12_345);
        w.put_f64(-0.125);
        w.put_bool(true);
        w.put_bool(false);
        w.put_str("snapshot");
        w.put_time(SimTime::from_micros(42));
        w.put_duration(SimDuration::from_millis(9));
        w.put_rate(DataRate::from_mbps(10));
        w.put_size(ByteSize::from_kb(4));
        w.put_opt_time(Some(SimTime::from_secs(1)));
        w.put_opt_time(None);
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u16().unwrap(), 300);
        assert_eq!(r.get_u32().unwrap(), 70_000);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.get_usize().unwrap(), 12_345);
        assert_eq!(r.get_f64().unwrap(), -0.125);
        assert!(r.get_bool().unwrap());
        assert!(!r.get_bool().unwrap());
        assert_eq!(r.get_string().unwrap(), "snapshot");
        assert_eq!(r.get_time().unwrap(), SimTime::from_micros(42));
        assert_eq!(r.get_duration().unwrap(), SimDuration::from_millis(9));
        assert_eq!(r.get_rate().unwrap(), DataRate::from_mbps(10));
        assert_eq!(r.get_size().unwrap(), ByteSize::from_kb(4));
        assert_eq!(r.get_opt_time().unwrap(), Some(SimTime::from_secs(1)));
        assert_eq!(r.get_opt_time().unwrap(), None);
        assert!(r.is_exhausted());
    }

    #[test]
    fn nan_bit_pattern_is_stable() {
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = ByteWriter::new();
        w.put_f64(nan);
        let bytes = w.into_bytes();
        let back = ByteReader::new(&bytes).get_f64().unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn eof_and_invalid_are_reported() {
        let mut r = ByteReader::new(&[1]);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u64(), Err(CodecError::Eof));

        let mut r = ByteReader::new(&[9]);
        assert_eq!(r.get_bool(), Err(CodecError::Invalid("bool")));

        // A corrupt length prefix larger than the input is rejected before
        // any allocation.
        let mut w = ByteWriter::new();
        w.put_u64(1 << 40);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(
            r.get_len(),
            Err(CodecError::Invalid("length prefix exceeds input"))
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171F73967E8);
    }
}
