//! A hierarchical timing wheel for the per-packet scheduler path.
//!
//! [`TimerWheel`] is a drop-in replacement for [`EventHeap`](crate::EventHeap)
//! on the emulator's hot path. Where the heap pays `O(log n)` per push/pop,
//! the wheel buckets deadlines into fixed-width slots sized around the
//! emulator's scheduler quantum, so near-term deadlines cost `O(1)` to insert
//! and `O(1)` amortised to pop — independent of how many pipes are pending.
//!
//! # Structure
//!
//! Two wheel levels plus an overflow heap:
//!
//! * **Level 0** — 256 slots of one quantum each (default quantum `2^17` ns ≈
//!   131 µs, the power of two nearest the paper's 100 µs hardware tick).
//!   Horizon ≈ 33.5 ms: queueing and transmission deadlines land here.
//! * **Level 1** — 256 slots of 256 quanta each, horizon ≈ 8.6 s: long
//!   propagation delays and retransmission timers land here and cascade into
//!   level 0 as the wheel turns.
//! * **Overflow** — a comparison-based min-heap for deadlines beyond the
//!   level-1 horizon (idle application timers, far-future wakeups). These are
//!   rare by construction, so the `O(log n)` cost is off the per-packet path.
//!
//! # Semantics
//!
//! Pop order is *identical* to `EventHeap`: earliest deadline first, FIFO
//! among equal deadlines (each push is stamped with a monotonic sequence
//! number and entries are ordered by the full `(time, seq)` key, not by
//! slot). A deadline already in the past pops immediately, exactly like the
//! heap. The differential property tests at the bottom of this file pin the
//! two structures to byte-identical `(time, seq)` pop sequences across random
//! workloads, including deadlines that cross the overflow level.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::event::EventKey;
use crate::time::{SimDuration, SimTime};

/// Slots per wheel level (`2^SLOT_BITS`).
const SLOT_BITS: u32 = 8;
const SLOTS: usize = 1 << SLOT_BITS;
const SLOT_MASK: u64 = (SLOTS as u64) - 1;
/// Bitmap words per level.
const OCC_WORDS: usize = SLOTS / 64;

/// Default quantum: `2^17` ns ≈ 131 µs, the power of two nearest the
/// emulator's 100 µs scheduler tick.
const DEFAULT_QUANTUM_SHIFT: u32 = 17;

/// The slot width of a default-quantum wheel. Periodic work that should
/// land on slot boundaries (e.g. the fluid-epoch grid) rounds its cadence
/// to a multiple of this, keeping the wheel's high-water mark flat.
pub const DEFAULT_WHEEL_QUANTUM: SimDuration = SimDuration::from_nanos(1 << DEFAULT_QUANTUM_SHIFT);

/// Maximum number of drained slot buffers kept for reuse.
const SPARE_POOL: usize = 8;

#[derive(Debug, Clone)]
struct OverflowEntry<T> {
    key: EventKey,
    value: T,
}

impl<T> PartialEq for OverflowEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<T> Eq for OverflowEntry<T> {}
impl<T> PartialOrd for OverflowEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for OverflowEntry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// Returns the index of the first set bit at or after `from`, if any.
#[inline]
fn first_set(occ: &[u64; OCC_WORDS], from: usize) -> Option<usize> {
    if from >= SLOTS {
        return None;
    }
    let mut word = from >> 6;
    let mut bits = occ[word] & (!0u64 << (from & 63));
    loop {
        if bits != 0 {
            return Some((word << 6) + bits.trailing_zeros() as usize);
        }
        word += 1;
        if word >= OCC_WORDS {
            return None;
        }
        bits = occ[word];
    }
}

/// A hierarchical timing wheel with `EventHeap`-identical semantics: a
/// min-queue of `(SimTime, T)` with FIFO tie-breaking, `O(1)` for deadlines
/// within the wheel horizon.
///
/// # Examples
///
/// ```
/// use mn_util::{SimTime, TimerWheel};
///
/// let mut wheel = TimerWheel::new();
/// wheel.push(SimTime::from_millis(5), "later");
/// wheel.push(SimTime::from_millis(1), "sooner");
/// assert_eq!(wheel.pop().unwrap().1, "sooner");
/// assert_eq!(wheel.pop().unwrap().1, "later");
/// assert!(wheel.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct TimerWheel<T> {
    /// log2 of the quantum in nanoseconds.
    shift: u32,
    /// The wheel's position: the quantum index of the earliest slot that may
    /// still hold entries. Only ever advances.
    current: u64,
    /// Level 0: one slot per quantum for the 256 quanta at `current`'s
    /// 256-block. Entries are unsorted except for the active slot.
    l0: Box<[Vec<(EventKey, T)>; SLOTS]>,
    /// Level 1: one slot per 256 quanta for `current`'s 65536-block.
    l1: Box<[Vec<(EventKey, T)>; SLOTS]>,
    l0_occ: [u64; OCC_WORDS],
    l1_occ: [u64; OCC_WORDS],
    /// Deadlines beyond the level-1 horizon, ordered by full key.
    overflow: BinaryHeap<Reverse<OverflowEntry<T>>>,
    /// Warmed slot buffers recovered from cascaded level-1 slots. A level-1
    /// slot is touched once per level-0 revolution and then not again for a
    /// full level-1 revolution (~8.6 s at the default quantum), so without
    /// this pool every freshly touched slot would grow a `Vec` from zero —
    /// a steady trickle of allocations on an otherwise allocation-free path.
    spare: Vec<Vec<(EventKey, T)>>,
    /// The level-0 slot currently sorted for popping (descending by key, so
    /// `Vec::pop` yields the minimum), if any.
    active: Option<usize>,
    len: usize,
    next_seq: u64,
}

impl<T> Default for TimerWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> TimerWheel<T> {
    /// Creates an empty wheel with the default ≈131 µs quantum.
    pub fn new() -> Self {
        Self::with_quantum_shift(DEFAULT_QUANTUM_SHIFT)
    }

    /// Creates an empty wheel whose slot width is the largest power of two at
    /// or below `quantum` (clamped to `[1 µs, ~1 s]`).
    pub fn with_quantum(quantum: SimDuration) -> Self {
        let nanos = quantum.as_nanos().max(1);
        let shift = (63 - nanos.leading_zeros()).clamp(10, 30);
        Self::with_quantum_shift(shift)
    }

    fn with_quantum_shift(shift: u32) -> Self {
        TimerWheel {
            shift,
            current: 0,
            l0: Box::new(std::array::from_fn(|_| Vec::new())),
            l1: Box::new(std::array::from_fn(|_| Vec::new())),
            l0_occ: [0; OCC_WORDS],
            l1_occ: [0; OCC_WORDS],
            overflow: BinaryHeap::new(),
            spare: Vec::new(),
            active: None,
            len: 0,
            next_seq: 0,
        }
    }

    /// The slot width in virtual time.
    pub fn quantum(&self) -> SimDuration {
        SimDuration::from_nanos(1 << self.shift)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events. The wheel position resets to zero; sequence
    /// numbers keep counting so keys stay unique across a clear.
    pub fn clear(&mut self) {
        for slot in self.l0.iter_mut().chain(self.l1.iter_mut()) {
            slot.clear();
        }
        self.l0_occ = [0; OCC_WORDS];
        self.l1_occ = [0; OCC_WORDS];
        self.overflow.clear();
        self.active = None;
        self.current = 0;
        self.len = 0;
    }

    /// The quantum index a deadline files under, clamped so that past
    /// deadlines land in the earliest still-reachable slot (they pop
    /// immediately, exactly like a heap push of a past time).
    #[inline]
    fn tick_of(&self, time: SimTime) -> u64 {
        (time.as_nanos() >> self.shift).max(self.current)
    }

    /// Schedules `value` to fire at `time`. Returns the key, which can be
    /// used by callers that keep their own cancellation sets.
    #[inline]
    pub fn push(&mut self, time: SimTime, value: T) -> EventKey {
        let key = EventKey {
            time,
            seq: self.next_seq,
        };
        self.next_seq += 1;
        self.insert(key, value);
        self.len += 1;
        key
    }

    fn insert(&mut self, key: EventKey, value: T) {
        let tick = self.tick_of(key.time);
        if tick >> SLOT_BITS == self.current >> SLOT_BITS {
            let slot = (tick & SLOT_MASK) as usize;
            if self.active == Some(slot) {
                // The active slot is kept sorted descending by key so pops
                // stay O(1); splice new arrivals into position.
                let v = &mut self.l0[slot];
                let pos = v.partition_point(|(k, _)| *k > key);
                v.insert(pos, (key, value));
            } else {
                self.l0[slot].push((key, value));
            }
            self.l0_occ[slot >> 6] |= 1 << (slot & 63);
        } else if tick >> (2 * SLOT_BITS) == self.current >> (2 * SLOT_BITS) {
            let slot = ((tick >> SLOT_BITS) & SLOT_MASK) as usize;
            self.push_l1(slot, key, value);
        } else {
            self.overflow.push(Reverse(OverflowEntry { key, value }));
        }
    }

    /// Files an entry under a level-1 slot, seeding a cold slot with a
    /// warmed buffer from the spare pool.
    #[inline]
    fn push_l1(&mut self, slot: usize, key: EventKey, value: T) {
        let v = &mut self.l1[slot];
        if v.capacity() == 0 {
            if let Some(spare) = self.spare.pop() {
                *v = spare;
            }
        }
        v.push((key, value));
        self.l1_occ[slot >> 6] |= 1 << (slot & 63);
    }

    /// Positions the wheel at the earliest pending slot (cascading coarser
    /// levels as block boundaries are crossed) and sorts it for popping.
    /// Returns the level-0 slot index, or `None` if the wheel is empty.
    fn activate(&mut self) -> Option<usize> {
        if self.len == 0 {
            self.active = None;
            return None;
        }
        loop {
            let from = (self.current & SLOT_MASK) as usize;
            if let Some(slot) = first_set(&self.l0_occ, from) {
                self.current = (self.current & !SLOT_MASK) | slot as u64;
                if self.active != Some(slot) {
                    self.l0[slot].sort_unstable_by_key(|(key, _)| Reverse(*key));
                    self.active = Some(slot);
                }
                return Some(slot);
            }
            self.active = None;
            // Level 0 exhausted: cascade the next pending level-1 slot.
            // Level-1 slots at or behind the current block are empty by
            // construction (their ticks would have filed under level 0).
            let l1_from = ((self.current >> SLOT_BITS) & SLOT_MASK) as usize + 1;
            if let Some(slot) = first_set(&self.l1_occ, l1_from) {
                self.current = (self.current & !(SLOT_MASK << SLOT_BITS | SLOT_MASK))
                    | ((slot as u64) << SLOT_BITS);
                self.l1_occ[slot >> 6] &= !(1 << (slot & 63));
                let mut entries = std::mem::take(&mut self.l1[slot]);
                for (key, value) in entries.drain(..) {
                    let tick = self.tick_of(key.time);
                    let l0_slot = (tick & SLOT_MASK) as usize;
                    self.l0[l0_slot].push((key, value));
                    self.l0_occ[l0_slot >> 6] |= 1 << (l0_slot & 63);
                }
                // This slot will not be touched again for a full level-1
                // revolution; pool its warmed buffer for whichever cold slot
                // is filled next.
                if self.spare.len() < SPARE_POOL {
                    self.spare.push(entries);
                }
                continue;
            }
            // Both wheel levels exhausted: jump to the overflow heap's
            // earliest 65536-block and refill the wheels from it. Everything
            // left in overflow is later than anything cascaded here.
            let earliest = self
                .overflow
                .peek()
                .expect("len > 0 with empty wheels implies overflow entries");
            let block = (earliest.0.key.time.as_nanos() >> self.shift) >> (2 * SLOT_BITS);
            self.current = block << (2 * SLOT_BITS);
            while let Some(Reverse(head)) = self.overflow.peek() {
                if (head.key.time.as_nanos() >> self.shift) >> (2 * SLOT_BITS) != block {
                    break;
                }
                let Reverse(OverflowEntry { key, value }) =
                    self.overflow.pop().expect("peeked entry exists");
                let tick = self.tick_of(key.time);
                if tick >> SLOT_BITS == self.current >> SLOT_BITS {
                    let slot = (tick & SLOT_MASK) as usize;
                    self.l0[slot].push((key, value));
                    self.l0_occ[slot >> 6] |= 1 << (slot & 63);
                } else {
                    let slot = ((tick >> SLOT_BITS) & SLOT_MASK) as usize;
                    self.push_l1(slot, key, value);
                }
            }
        }
    }

    #[inline]
    fn pop_from_active(&mut self, slot: usize) -> (EventKey, T) {
        let (key, value) = self.l0[slot].pop().expect("active slot is non-empty");
        if self.l0[slot].is_empty() {
            self.l0_occ[slot >> 6] &= !(1 << (slot & 63));
            self.active = None;
        }
        self.len -= 1;
        (key, value)
    }

    /// Removes and returns the earliest event, if any.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.pop_with_key().map(|(k, v)| (k.time, v))
    }

    /// Removes and returns the earliest event together with its key.
    pub fn pop_with_key(&mut self) -> Option<(EventKey, T)> {
        let slot = self.activate()?;
        Some(self.pop_from_active(slot))
    }

    /// Removes and returns the earliest event only if its deadline is at or
    /// before `now`.
    #[inline]
    pub fn pop_due(&mut self, now: SimTime) -> Option<(SimTime, T)> {
        let slot = self.activate()?;
        let (key, _) = self.l0[slot].last().expect("active slot is non-empty");
        if key.time <= now {
            let (key, value) = self.pop_from_active(slot);
            Some((key.time, value))
        } else {
            None
        }
    }

    /// Returns every pending entry in pop order — earliest deadline first,
    /// FIFO among equal deadlines — without disturbing the wheel.
    ///
    /// This is the snapshot path: re-pushing the returned `(time, value)`
    /// pairs in order into a fresh wheel reproduces the exact pop sequence
    /// (fresh sequence numbers are assigned in push order, so relative
    /// FIFO order among equal deadlines is preserved).
    pub fn entries_in_order(&self) -> Vec<(SimTime, &T)> {
        let mut entries: Vec<(EventKey, &T)> = Vec::with_capacity(self.len);
        for slot in self.l0.iter().chain(self.l1.iter()) {
            entries.extend(slot.iter().map(|(k, v)| (*k, v)));
        }
        entries.extend(self.overflow.iter().map(|Reverse(e)| (e.key, &e.value)));
        entries.sort_unstable_by_key(|(k, _)| *k);
        entries.into_iter().map(|(k, v)| (k.time, v)).collect()
    }

    /// Returns the deadline of the earliest event without removing it.
    ///
    /// Non-mutating, so it scans rather than cascades: cost is the size of
    /// the earliest pending slot (typically a handful of entries).
    pub fn peek_time(&self) -> Option<SimTime> {
        if self.len == 0 {
            return None;
        }
        let from = (self.current & SLOT_MASK) as usize;
        if let Some(slot) = first_set(&self.l0_occ, from) {
            if self.active == Some(slot) {
                return self.l0[slot].last().map(|(k, _)| k.time);
            }
            return self.l0[slot].iter().map(|(k, _)| k.time).min();
        }
        let l1_from = ((self.current >> SLOT_BITS) & SLOT_MASK) as usize + 1;
        if let Some(slot) = first_set(&self.l1_occ, l1_from) {
            return self.l1[slot].iter().map(|(k, _)| k.time).min();
        }
        self.overflow.peek().map(|Reverse(e)| e.key.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventHeap;

    #[test]
    fn pops_in_time_order() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_millis(30), 3);
        w.push(SimTime::from_millis(10), 1);
        w.push(SimTime::from_millis(20), 2);
        let order: Vec<i32> = std::iter::from_fn(|| w.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_fifo() {
        let mut w = TimerWheel::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            w.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| w.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_now() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_millis(10), "a");
        w.push(SimTime::from_millis(20), "b");
        assert_eq!(w.pop_due(SimTime::from_millis(5)), None);
        assert_eq!(w.pop_due(SimTime::from_millis(10)).unwrap().1, "a");
        assert_eq!(w.pop_due(SimTime::from_millis(15)), None);
        assert_eq!(w.pop_due(SimTime::from_millis(25)).unwrap().1, "b");
        assert!(w.is_empty());
    }

    #[test]
    fn peek_does_not_remove() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(1), ());
        assert_eq!(w.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(w.len(), 1);
        // Also after activation (sorted slot path).
        let _ = w.pop_due(SimTime::ZERO);
        assert_eq!(w.peek_time(), Some(SimTime::from_secs(1)));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn far_future_deadlines_cross_the_overflow_level() {
        let mut w = TimerWheel::new();
        // Beyond the level-1 horizon (~8.6 s at the default quantum).
        w.push(SimTime::from_secs(3600), "hour");
        w.push(SimTime::from_secs(60), "minute");
        w.push(SimTime::from_micros(50), "now");
        assert_eq!(w.peek_time(), Some(SimTime::from_micros(50)));
        assert_eq!(w.pop().unwrap().1, "now");
        assert_eq!(w.pop().unwrap().1, "minute");
        assert_eq!(w.peek_time(), Some(SimTime::from_secs(3600)));
        assert_eq!(w.pop().unwrap().1, "hour");
        assert!(w.pop().is_none());
    }

    #[test]
    fn past_deadline_pushed_after_advance_pops_first() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(10), "far");
        // Advance the wheel position to the far slot without popping it.
        assert_eq!(w.pop_due(SimTime::from_secs(1)), None);
        // A deadline behind the wheel position still pops first, like a heap.
        w.push(SimTime::from_millis(1), "late arrival");
        assert_eq!(w.pop().unwrap().1, "late arrival");
        assert_eq!(w.pop().unwrap().1, "far");
    }

    #[test]
    fn entries_in_order_match_pop_order() {
        let mut w = TimerWheel::new();
        w.push(SimTime::from_secs(3600), 0); // overflow
        w.push(SimTime::from_micros(5), 1);
        w.push(SimTime::from_micros(5), 2); // FIFO tie with 1
        w.push(SimTime::from_millis(40), 3); // level 1
        w.push(SimTime::from_micros(1), 4);
        let snapshot: Vec<(SimTime, i32)> = w
            .entries_in_order()
            .into_iter()
            .map(|(t, &v)| (t, v))
            .collect();
        // Re-pushing the snapshot into a fresh wheel reproduces pop order.
        let mut restored = TimerWheel::new();
        for &(t, v) in &snapshot {
            restored.push(t, v);
        }
        let mut original: Vec<(SimTime, i32)> = Vec::new();
        while let Some(e) = w.pop() {
            original.push(e);
        }
        let mut replayed: Vec<(SimTime, i32)> = Vec::new();
        while let Some(e) = restored.pop() {
            replayed.push(e);
        }
        assert_eq!(original, replayed);
        assert_eq!(snapshot, original);
    }

    #[test]
    fn clear_empties() {
        let mut w = TimerWheel::new();
        w.push(SimTime::ZERO, 1);
        w.push(SimTime::from_secs(100), 2);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.pop(), None);
        assert_eq!(w.peek_time(), None);
    }

    #[test]
    fn keys_are_unique_and_monotone() {
        let mut w = TimerWheel::new();
        let k1 = w.push(SimTime::ZERO, ());
        let k2 = w.push(SimTime::ZERO, ());
        assert!(k2.seq > k1.seq);
    }

    #[test]
    fn custom_quantum_rounds_to_power_of_two() {
        let w: TimerWheel<()> = TimerWheel::with_quantum(SimDuration::from_micros(100));
        // Largest power of two at or below 100 µs = 2^16 ns.
        assert_eq!(w.quantum(), SimDuration::from_nanos(1 << 16));
        let tiny: TimerWheel<()> = TimerWheel::with_quantum(SimDuration::from_nanos(1));
        assert_eq!(tiny.quantum(), SimDuration::from_nanos(1 << 10));
    }

    /// Exhaustive small-scale sanity: every permutation of slot placement
    /// (level 0, level 1, overflow, past) pops in global key order.
    #[test]
    fn mixed_levels_pop_globally_sorted() {
        let times: Vec<u64> = vec![
            0, 1, 130,    // same level-0 slot as 1 (131 µs quantum)
            200,    // next level-0 slot
            40_000, // level 1 (past the 33.5 ms level-0 horizon)
            41_000, 9_000_000, // overflow (past the 8.6 s level-1 horizon)
            10_000_000,
        ];
        let mut w = TimerWheel::new();
        let mut h = EventHeap::new();
        for (i, &t) in times.iter().enumerate() {
            w.push(SimTime::from_micros(t), i);
            h.push(SimTime::from_micros(t), i);
        }
        loop {
            let a = w.pop_with_key();
            let b = h.pop_with_key();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// Deadline domains chosen so workloads exercise every placement:
        /// sub-quantum collisions, level-0 spans, level-1 cascades, and
        /// far-future overflow entries beyond the ~8.6 s level-1 horizon.
        fn deadline_micros() -> impl Strategy<Value = u64> {
            prop_oneof![
                4 => 0u64..300,                       // within one or two slots
                4 => 0u64..50_000,                    // across level 0
                2 => 0u64..5_000_000,                 // across level 1
                1 => 8_000_000u64..60_000_000,        // crosses into overflow
            ]
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// A full drain pops the byte-identical `(time, seq)` sequence
            /// the heap produces.
            #[test]
            fn full_drain_matches_event_heap(
                times in prop::collection::vec(deadline_micros(), 1..400),
            ) {
                let mut w = TimerWheel::new();
                let mut h = EventHeap::new();
                for (i, &t) in times.iter().enumerate() {
                    let kw = w.push(SimTime::from_micros(t), i);
                    let kh = h.push(SimTime::from_micros(t), i);
                    prop_assert_eq!(kw, kh, "push keys diverge");
                }
                loop {
                    let a = w.pop_with_key();
                    let b = h.pop_with_key();
                    prop_assert_eq!(&a, &b, "pop sequences diverge");
                    if a.is_none() {
                        break;
                    }
                }
            }

            /// Interleaved pushes and `pop_due` at a monotonically advancing
            /// `now` stay in lockstep with the heap — the exact access
            /// pattern of the core scheduler's tick loop.
            #[test]
            fn interleaved_pop_due_matches_event_heap(
                batches in prop::collection::vec(
                    (prop::collection::vec(deadline_micros(), 0..10), 0u64..100_000),
                    1..60,
                ),
            ) {
                let mut w = TimerWheel::new();
                let mut h = EventHeap::new();
                let mut seq = 0usize;
                let mut now = SimTime::ZERO;
                for (times, advance) in &batches {
                    for &t in times {
                        w.push(SimTime::from_micros(t), seq);
                        h.push(SimTime::from_micros(t), seq);
                        seq += 1;
                    }
                    now = now.max(SimTime::from_micros(*advance));
                    loop {
                        let a = w.pop_due(now);
                        let b = h.pop_due(now);
                        prop_assert_eq!(&a, &b, "pop_due diverges at now={}", now);
                        if a.is_none() {
                            break;
                        }
                    }
                    prop_assert_eq!(w.peek_time(), h.peek_time(), "peek diverges");
                    prop_assert_eq!(w.len(), h.len());
                }
                while let Some(a) = w.pop_with_key() {
                    prop_assert_eq!(Some(a), h.pop_with_key());
                }
                prop_assert!(h.is_empty());
            }

            /// Pushing deadlines behind the wheel position (after pops have
            /// advanced it) keeps heap-identical order — the clamp path.
            #[test]
            fn past_pushes_after_pops_match_event_heap(
                first in prop::collection::vec(deadline_micros(), 1..50),
                second in prop::collection::vec(0u64..100, 1..50),
            ) {
                let mut w = TimerWheel::new();
                let mut h = EventHeap::new();
                let mut seq = 0usize;
                for &t in &first {
                    w.push(SimTime::from_micros(t), seq);
                    h.push(SimTime::from_micros(t), seq);
                    seq += 1;
                }
                // Drain half, advancing the wheel position.
                for _ in 0..first.len() / 2 {
                    prop_assert_eq!(w.pop_with_key(), h.pop_with_key());
                }
                // Near-zero deadlines now sit behind the wheel position.
                for &t in &second {
                    w.push(SimTime::from_micros(t), seq);
                    h.push(SimTime::from_micros(t), seq);
                    seq += 1;
                }
                loop {
                    let a = w.pop_with_key();
                    let b = h.pop_with_key();
                    prop_assert_eq!(&a, &b);
                    if a.is_none() {
                        break;
                    }
                }
            }
        }
    }
}
