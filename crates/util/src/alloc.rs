//! Counting wrapper around the system allocator.
//!
//! Install [`CountingAlloc`] as the `#[global_allocator]` of a test or
//! bench binary to make heap behaviour observable:
//!
//! * [`thread_alloc_calls`] — allocator calls made by the current thread,
//!   the zero-allocation guard used by the steady-state suites (the
//!   counter is a `Cell<u64>`, so reading it cannot itself allocate or
//!   recurse into the allocator);
//! * [`bytes_in_use`] / [`peak_bytes_in_use`] — process-wide resident
//!   bytes and their high-water mark, for memory reports;
//! * [`total_allocated_bytes`] — cumulative bytes ever requested, whose
//!   deltas measure how much a code path copies (e.g. bytes copied per
//!   reconfiguration flap).
//!
//! The counters are plain relaxed atomics: cross-thread readings are
//! racy-but-monotonic snapshots, which is all trajectory reporting needs.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

thread_local! {
    static THREAD_ALLOC_CALLS: Cell<u64> = const { Cell::new(0) };
}

static BYTES_IN_USE: AtomicUsize = AtomicUsize::new(0);
static PEAK_BYTES_IN_USE: AtomicUsize = AtomicUsize::new(0);
static TOTAL_ALLOCATED: AtomicU64 = AtomicU64::new(0);

/// Allocator calls (alloc / alloc_zeroed / realloc) made by this thread
/// since it started. Frees are not counted: the steady-state guards pin
/// "no new memory requested", and a free cannot request memory.
pub fn thread_alloc_calls() -> u64 {
    THREAD_ALLOC_CALLS.with(|c| c.get())
}

/// Bytes currently allocated process-wide.
pub fn bytes_in_use() -> usize {
    BYTES_IN_USE.load(Ordering::Relaxed)
}

/// High-water mark of [`bytes_in_use`] since process start (or the last
/// [`reset_peak`]).
pub fn peak_bytes_in_use() -> usize {
    PEAK_BYTES_IN_USE.load(Ordering::Relaxed)
}

/// Resets the high-water mark to the current usage, so a measurement
/// window reports its own peak rather than setup's.
pub fn reset_peak() {
    PEAK_BYTES_IN_USE.store(bytes_in_use(), Ordering::Relaxed);
}

/// Cumulative bytes ever requested from the allocator, process-wide.
pub fn total_allocated_bytes() -> u64 {
    TOTAL_ALLOCATED.load(Ordering::Relaxed)
}

fn on_alloc(bytes: usize) {
    THREAD_ALLOC_CALLS.with(|c| c.set(c.get() + 1));
    TOTAL_ALLOCATED.fetch_add(bytes as u64, Ordering::Relaxed);
    let in_use = BYTES_IN_USE.fetch_add(bytes, Ordering::Relaxed) + bytes;
    PEAK_BYTES_IN_USE.fetch_max(in_use, Ordering::Relaxed);
}

fn on_free(bytes: usize) {
    BYTES_IN_USE.fetch_sub(bytes, Ordering::Relaxed);
}

/// Byte- and call-counting [`GlobalAlloc`] wrapping [`System`].
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        on_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        on_alloc(new_size);
        on_free(layout.size());
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_free(layout.size());
        System.dealloc(ptr, layout)
    }
}
