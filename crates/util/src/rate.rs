//! Data rates and byte sizes.
//!
//! ModelNet pipes are configured with a bandwidth; the emulation repeatedly
//! answers "how long does a packet of B bytes take to drain through a link of
//! rate R" — [`DataRate::transmission_time`] is that computation, used by both
//! the pipe bandwidth queue and by the hardware models.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A quantity of data in bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct ByteSize(u64);

impl ByteSize {
    /// Zero bytes.
    pub const ZERO: ByteSize = ByteSize(0);

    /// Creates a size from a byte count.
    pub const fn from_bytes(bytes: u64) -> Self {
        ByteSize(bytes)
    }

    /// Creates a size from binary kilobytes (1 KB = 1024 bytes), matching how
    /// the paper quotes file and window sizes.
    pub const fn from_kb(kb: u64) -> Self {
        ByteSize(kb * 1024)
    }

    /// Creates a size from binary megabytes.
    pub const fn from_mb(mb: u64) -> Self {
        ByteSize(mb * 1024 * 1024)
    }

    /// Returns the size in bytes.
    pub const fn as_bytes(self) -> u64 {
        self.0
    }

    /// Returns the size in bits.
    pub const fn as_bits(self) -> u64 {
        self.0 * 8
    }

    /// Returns the size in fractional kilobytes.
    pub fn as_kb_f64(self) -> f64 {
        self.0 as f64 / 1024.0
    }

    /// Returns `true` if this is the zero size.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0.saturating_sub(rhs.0))
    }

    /// Returns the smaller of two sizes.
    pub fn min(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.min(other.0))
    }

    /// Returns the larger of two sizes.
    pub fn max(self, other: ByteSize) -> ByteSize {
        ByteSize(self.0.max(other.0))
    }
}

impl Add for ByteSize {
    type Output = ByteSize;
    fn add(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 + rhs.0)
    }
}

impl AddAssign for ByteSize {
    fn add_assign(&mut self, rhs: ByteSize) {
        self.0 += rhs.0;
    }
}

impl Sub for ByteSize {
    type Output = ByteSize;
    fn sub(self, rhs: ByteSize) -> ByteSize {
        ByteSize(self.0 - rhs.0)
    }
}

impl Mul<u64> for ByteSize {
    type Output = ByteSize;
    fn mul(self, rhs: u64) -> ByteSize {
        ByteSize(self.0 * rhs)
    }
}

impl Sum for ByteSize {
    fn sum<I: Iterator<Item = ByteSize>>(iter: I) -> Self {
        iter.fold(ByteSize::ZERO, |acc, b| acc + b)
    }
}

impl fmt::Display for ByteSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1024 * 1024 {
            write!(f, "{:.2}MB", self.0 as f64 / (1024.0 * 1024.0))
        } else if self.0 >= 1024 {
            write!(f, "{:.2}KB", self.0 as f64 / 1024.0)
        } else {
            write!(f, "{}B", self.0)
        }
    }
}

/// A data rate in bits per second.
///
/// The paper quotes link rates in decimal megabits (10 Mb/s = 10,000,000
/// bit/s), which is the convention used here.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct DataRate(u64);

impl DataRate {
    /// A rate of zero; transmission over a zero-rate link never completes.
    pub const ZERO: DataRate = DataRate(0);

    /// Creates a rate from bits per second.
    pub const fn from_bps(bps: u64) -> Self {
        DataRate(bps)
    }

    /// Creates a rate from kilobits per second (decimal).
    pub const fn from_kbps(kbps: u64) -> Self {
        DataRate(kbps * 1_000)
    }

    /// Creates a rate from megabits per second (decimal).
    pub const fn from_mbps(mbps: u64) -> Self {
        DataRate(mbps * 1_000_000)
    }

    /// Creates a rate from gigabits per second (decimal).
    pub const fn from_gbps(gbps: u64) -> Self {
        DataRate(gbps * 1_000_000_000)
    }

    /// Creates a rate from fractional megabits per second.
    pub fn from_mbps_f64(mbps: f64) -> Self {
        if !mbps.is_finite() || mbps <= 0.0 {
            return DataRate::ZERO;
        }
        DataRate((mbps * 1e6).round() as u64)
    }

    /// Returns the rate in bits per second.
    pub const fn as_bps(self) -> u64 {
        self.0
    }

    /// Returns the rate in fractional megabits per second.
    pub fn as_mbps_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the rate in fractional kilobits per second.
    pub fn as_kbps_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns `true` if the rate is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Time to clock `size` onto a link of this rate.
    ///
    /// A zero rate yields [`SimDuration::MAX`], modelling a link that never
    /// drains (the caller is expected to treat such pipes as down).
    pub fn transmission_time(self, size: ByteSize) -> SimDuration {
        if self.0 == 0 {
            return SimDuration::MAX;
        }
        // Nanoseconds = bits * 1e9 / bps. Compute in u128 to avoid overflow
        // for large transfers on slow links.
        let nanos = (size.as_bits() as u128 * 1_000_000_000u128) / self.0 as u128;
        SimDuration::from_nanos(nanos.min(u64::MAX as u128) as u64)
    }

    /// Number of bytes that drain through this rate in `d`.
    pub fn bytes_in(self, d: SimDuration) -> ByteSize {
        let bits = (self.0 as u128 * d.as_nanos() as u128) / 1_000_000_000u128;
        ByteSize::from_bytes((bits / 8).min(u64::MAX as u128) as u64)
    }

    /// The bandwidth-delay product of a pipe of this rate and `delay` latency,
    /// i.e. the amount of data in flight when the pipe is fully utilised.
    pub fn bandwidth_delay_product(self, delay: SimDuration) -> ByteSize {
        self.bytes_in(delay)
    }

    /// Scales the rate by a floating point factor, saturating at zero.
    pub fn mul_f64(self, factor: f64) -> DataRate {
        DataRate::from_mbps_f64(self.as_mbps_f64() * factor)
    }

    /// Returns the smaller of two rates.
    pub fn min(self, other: DataRate) -> DataRate {
        DataRate(self.0.min(other.0))
    }

    /// Returns the larger of two rates.
    pub fn max(self, other: DataRate) -> DataRate {
        DataRate(self.0.max(other.0))
    }
}

impl Add for DataRate {
    type Output = DataRate;
    fn add(self, rhs: DataRate) -> DataRate {
        DataRate(self.0 + rhs.0)
    }
}

impl Sub for DataRate {
    type Output = DataRate;
    fn sub(self, rhs: DataRate) -> DataRate {
        DataRate(self.0 - rhs.0)
    }
}

impl Div<u64> for DataRate {
    type Output = DataRate;
    fn div(self, rhs: u64) -> DataRate {
        DataRate(self.0 / rhs)
    }
}

impl Sum for DataRate {
    fn sum<I: Iterator<Item = DataRate>>(iter: I) -> Self {
        iter.fold(DataRate::ZERO, |acc, r| acc + r)
    }
}

impl fmt::Display for DataRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.2}Gb/s", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.2}Mb/s", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}Kb/s", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}b/s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytesize_constructors() {
        assert_eq!(ByteSize::from_kb(1), ByteSize::from_bytes(1024));
        assert_eq!(ByteSize::from_mb(1), ByteSize::from_kb(1024));
        assert_eq!(ByteSize::from_bytes(10).as_bits(), 80);
    }

    #[test]
    fn bytesize_arithmetic() {
        let a = ByteSize::from_bytes(1500);
        let b = ByteSize::from_bytes(500);
        assert_eq!(a + b, ByteSize::from_bytes(2000));
        assert_eq!(a - b, ByteSize::from_bytes(1000));
        assert_eq!(a * 2, ByteSize::from_bytes(3000));
        assert_eq!(b.saturating_sub(a), ByteSize::ZERO);
        assert_eq!(a.min(b), b);
        assert_eq!(a.max(b), a);
    }

    #[test]
    fn datarate_constructors() {
        assert_eq!(DataRate::from_mbps(10).as_bps(), 10_000_000);
        assert_eq!(DataRate::from_gbps(1), DataRate::from_mbps(1000));
        assert_eq!(DataRate::from_kbps(1).as_bps(), 1000);
        assert_eq!(DataRate::from_mbps_f64(1.5).as_bps(), 1_500_000);
        assert_eq!(DataRate::from_mbps_f64(-3.0), DataRate::ZERO);
    }

    #[test]
    fn transmission_time_of_1500b_at_10mbps() {
        // 1500 bytes = 12,000 bits at 10 Mb/s = 1.2 ms.
        let t = DataRate::from_mbps(10).transmission_time(ByteSize::from_bytes(1500));
        assert_eq!(t, SimDuration::from_micros(1200));
    }

    #[test]
    fn transmission_time_zero_rate_never_completes() {
        let t = DataRate::ZERO.transmission_time(ByteSize::from_bytes(1));
        assert_eq!(t, SimDuration::MAX);
    }

    #[test]
    fn bytes_in_inverts_transmission_time() {
        let rate = DataRate::from_mbps(100);
        let size = ByteSize::from_bytes(123_456);
        let t = rate.transmission_time(size);
        let back = rate.bytes_in(t);
        // Rounding in nanoseconds may lose a byte or two.
        assert!(back.as_bytes().abs_diff(size.as_bytes()) <= 2);
    }

    #[test]
    fn bandwidth_delay_product_matches_paper_example() {
        // The paper: 10 Gb/s aggregate with 200 ms RTT needs ~250 MB of
        // buffering. 10 Gb/s * 0.2 s = 2 Gbit = 250 MB (decimal).
        let bdp = DataRate::from_gbps(10).bandwidth_delay_product(SimDuration::from_millis(200));
        assert_eq!(bdp.as_bytes(), 250_000_000);
    }

    #[test]
    fn rate_scaling() {
        let r = DataRate::from_mbps(10);
        assert_eq!(r.mul_f64(0.5), DataRate::from_mbps(5));
        assert_eq!(r / 2, DataRate::from_mbps(5));
        assert_eq!(r.min(DataRate::from_mbps(2)), DataRate::from_mbps(2));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", DataRate::from_mbps(10)), "10.00Mb/s");
        assert_eq!(format!("{}", ByteSize::from_kb(8)), "8.00KB");
    }
}
