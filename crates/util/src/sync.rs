//! Epoch-synchronisation helpers for the parallel emulation backend.
//!
//! The parallel backend keeps its core threads in lockstep with *epoch
//! markers* flowing through the same SPSC rings as the tunnelled
//! descriptors (see `mn-emucore`), so there is no central lock to contend
//! on. What remains here is the small amount of shared-state signalling
//! that framing cannot express:
//!
//! * [`SpinWait`] — an adaptive backoff for the wait loops: a few
//!   `spin_loop` hints while the peer is probably mid-operation, then
//!   `yield_now` so a single-CPU host (or an oversubscribed one) still
//!   makes progress instead of burning a whole scheduler quantum.
//! * [`SpinBarrier`] — a sense-reversing barrier used once per emulator
//!   lifecycle to hold every worker at the starting line until all rings
//!   are wired, and by tests that need threads released simultaneously.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many busy spins [`SpinWait`] performs before it starts yielding the
/// CPU to the scheduler.
const SPINS_BEFORE_YIELD: u32 = 16;

/// Adaptive wait loop: spin briefly, then yield.
///
/// # Examples
///
/// ```
/// use mn_util::sync::SpinWait;
///
/// let mut wait = SpinWait::new();
/// let mut tries = 0;
/// while tries < 3 {
///     tries += 1; // poll something...
///     wait.spin(); // ...and back off between polls
/// }
/// ```
#[derive(Debug, Default)]
pub struct SpinWait {
    spins: u32,
}

impl SpinWait {
    /// A fresh backoff state.
    pub fn new() -> Self {
        SpinWait { spins: 0 }
    }

    /// Backs off once: a pipeline hint for the first few calls, a scheduler
    /// yield from then on. Call [`SpinWait::reset`] after useful work.
    #[inline]
    pub fn spin(&mut self) {
        if self.spins < SPINS_BEFORE_YIELD {
            self.spins += 1;
            std::hint::spin_loop();
        } else {
            std::thread::yield_now();
        }
    }

    /// Forgets accumulated backoff after the caller made progress.
    #[inline]
    pub fn reset(&mut self) {
        self.spins = 0;
    }
}

/// A sense-reversing spin barrier for a fixed party count.
///
/// Unlike [`std::sync::Barrier`] this never takes a lock, so it is safe to
/// use from threads that must keep polling rings with bounded latency; on
/// oversubscribed hosts the wait degrades to `yield_now` rather than a
/// blocking park.
#[derive(Debug)]
pub struct SpinBarrier {
    parties: usize,
    /// Arrivals in the current generation.
    arrived: AtomicUsize,
    /// Generation counter; bumping it releases the waiters.
    generation: AtomicUsize,
}

impl SpinBarrier {
    /// Creates a barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "a barrier needs at least one party");
        SpinBarrier {
            parties,
            arrived: AtomicUsize::new(0),
            generation: AtomicUsize::new(0),
        }
    }

    /// Number of threads the barrier synchronises.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Blocks (spinning, then yielding) until all parties have arrived.
    /// Returns `true` on exactly one caller per generation (the last
    /// arrival), mirroring `std::sync::Barrier`'s leader flag.
    pub fn wait(&self) -> bool {
        let generation = self.generation.load(Ordering::Acquire);
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.parties {
            // Last arrival: reset the count and open the next generation.
            self.arrived.store(0, Ordering::Release);
            self.generation.store(generation + 1, Ordering::Release);
            true
        } else {
            let mut wait = SpinWait::new();
            while self.generation.load(Ordering::Acquire) == generation {
                wait.spin();
            }
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn spin_wait_is_callable_many_times() {
        let mut w = SpinWait::new();
        for _ in 0..100 {
            w.spin();
        }
        w.reset();
        w.spin();
    }

    #[test]
    fn single_party_barrier_never_blocks() {
        let b = SpinBarrier::new(1);
        for _ in 0..10 {
            assert!(b.wait(), "the only party is always the leader");
        }
    }

    #[test]
    fn barrier_releases_all_parties_each_generation() {
        const PARTIES: usize = 4;
        const GENERATIONS: usize = 25;
        let barrier = Arc::new(SpinBarrier::new(PARTIES));
        let counter = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..PARTIES)
            .map(|_| {
                let barrier = barrier.clone();
                let counter = counter.clone();
                std::thread::spawn(move || {
                    let mut leader_count = 0;
                    for g in 0..GENERATIONS {
                        counter.fetch_add(1, Ordering::SeqCst);
                        if barrier.wait() {
                            leader_count += 1;
                            // Everyone has incremented for this generation.
                            assert_eq!(counter.load(Ordering::SeqCst), (g + 1) * PARTIES);
                        }
                    }
                    leader_count
                })
            })
            .collect();
        let leaders: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(leaders, GENERATIONS, "exactly one leader per generation");
        assert_eq!(counter.load(Ordering::SeqCst), PARTIES * GENERATIONS);
    }
}
