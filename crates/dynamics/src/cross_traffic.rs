//! Synthetic cross traffic by pipe re-parameterisation.
//!
//! The cross traffic at each point in time is a matrix of bandwidth demand
//! between VN pairs. [`CrossTrafficMatrix::pipe_loads`] propagates the matrix
//! through the routing tables to find the background load offered to every
//! pipe, and [`QueueingModel::derive`] turns a load into adjusted pipe
//! parameters: bandwidth reduced by the background share, latency increased
//! by the predicted queueing delay, and the queue bound reduced to model the
//! larger steady-state occupancy. A flow competing with the synthetic cross
//! traffic therefore sees less headroom for bursts, more delay and less
//! available bandwidth — without any per-packet cost for the cross traffic
//! itself.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use mn_distill::{DistilledTopology, PipeAttrs, PipeId};
use mn_routing::RoutingMatrix;
use mn_topology::NodeId;
use mn_util::{DataRate, SimDuration};

/// Background bandwidth demand between VN pairs (topology client nodes).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CrossTrafficMatrix {
    demands: Vec<(NodeId, NodeId, DataRate)>,
}

impl CrossTrafficMatrix {
    /// Creates an empty matrix (no cross traffic).
    pub fn new() -> Self {
        CrossTrafficMatrix::default()
    }

    /// Adds a demand of `rate` from `src` to `dst`.
    pub fn add_demand(&mut self, src: NodeId, dst: NodeId, rate: DataRate) {
        self.demands.push((src, dst, rate));
    }

    /// Number of demand entries.
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// Returns `true` if the matrix carries no demand.
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// Propagates every demand along its route, accumulating the background
    /// load offered to each pipe.
    pub fn pipe_loads(&self, routing: &RoutingMatrix) -> HashMap<PipeId, PipeLoad> {
        let mut loads: HashMap<PipeId, PipeLoad> = HashMap::new();
        for &(src, dst, rate) in &self.demands {
            let Some(route) = routing.lookup(src, dst) else {
                continue;
            };
            for &pipe in &route.pipes {
                let entry = loads.entry(pipe).or_default();
                entry.background_bps += rate.as_bps();
                entry.flows += 1;
            }
        }
        loads
    }
}

/// Aggregate background load offered to one pipe.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipeLoad {
    /// Total background demand crossing the pipe, in bits per second.
    pub background_bps: u64,
    /// Number of background flows crossing the pipe.
    pub flows: usize,
}

/// The analytic queueing model that converts a background load into adjusted
/// pipe parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct QueueingModel {
    /// Mean background packet size used to convert load into queueing delay.
    pub mean_packet_bytes: u32,
    /// Utilisation above which the pipe is treated as saturated (the model's
    /// delay prediction is clipped here to stay finite).
    pub max_utilisation: f64,
}

impl Default for QueueingModel {
    fn default() -> Self {
        QueueingModel {
            mean_packet_bytes: 1000,
            max_utilisation: 0.95,
        }
    }
}

impl QueueingModel {
    /// Derives adjusted attributes for one pipe under the given background
    /// load. With zero load the attributes are returned unchanged.
    pub fn derive(&self, base: PipeAttrs, load: PipeLoad) -> PipeAttrs {
        if load.background_bps == 0 || base.bandwidth.is_zero() {
            return base;
        }
        let capacity = base.bandwidth.as_bps() as f64;
        let utilisation = (load.background_bps as f64 / capacity).min(self.max_utilisation);

        // Available bandwidth: what the cross traffic leaves behind.
        let available =
            DataRate::from_bps((capacity * (1.0 - utilisation)) as u64).max(DataRate::from_kbps(8));

        // Queueing delay from an M/M/1 approximation:
        //   W = (1 / (1 - rho)) * service_time  - service_time.
        let service_time = base
            .bandwidth
            .transmission_time(mn_util::ByteSize::from_bytes(self.mean_packet_bytes as u64))
            .as_secs_f64();
        let queueing_delay = service_time * utilisation / (1.0 - utilisation);
        let latency = base.latency + SimDuration::from_secs_f64(queueing_delay);

        // Steady-state queue occupancy eats into the burst headroom.
        let occupied = (utilisation * base.queue_len as f64) as usize;
        let queue_len = base.queue_len.saturating_sub(occupied).max(2);

        PipeAttrs {
            bandwidth: available,
            latency,
            loss_rate: base.loss_rate,
            queue_len,
        }
    }

    /// Derives adjusted attributes for every loaded pipe of the topology.
    pub fn derive_all(
        &self,
        topo: &DistilledTopology,
        loads: &HashMap<PipeId, PipeLoad>,
    ) -> Vec<(PipeId, PipeAttrs)> {
        loads
            .iter()
            .filter_map(|(&pipe, &load)| {
                topo.get_pipe(pipe)
                    .map(|p| (pipe, self.derive(p.attrs, load)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_distill::{distill, DistillationMode};
    use mn_topology::generators::{star_topology, StarParams};
    use mn_util::ByteSize;

    fn star() -> (DistilledTopology, RoutingMatrix) {
        let topo = star_topology(&StarParams {
            clients: 6,
            ..StarParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let m = RoutingMatrix::build(&d);
        (d, m)
    }

    #[test]
    fn demands_propagate_along_routes() {
        let (d, m) = star();
        let vns = d.vns().to_vec();
        let mut matrix = CrossTrafficMatrix::new();
        matrix.add_demand(vns[0], vns[1], DataRate::from_mbps(2));
        matrix.add_demand(vns[0], vns[2], DataRate::from_mbps(3));
        let loads = matrix.pipe_loads(&m);
        // The first-hop pipe out of vns[0] carries both demands.
        let first_hop = m.lookup(vns[0], vns[1]).unwrap().pipes[0];
        assert_eq!(loads[&first_hop].background_bps, 5_000_000);
        assert_eq!(loads[&first_hop].flows, 2);
        // The second hop toward vns[1] carries only the first demand.
        let second = m.lookup(vns[0], vns[1]).unwrap().pipes[1];
        assert_eq!(loads[&second].background_bps, 2_000_000);
    }

    #[test]
    fn empty_matrix_produces_no_loads() {
        let (_, m) = star();
        let matrix = CrossTrafficMatrix::new();
        assert!(matrix.is_empty());
        assert!(matrix.pipe_loads(&m).is_empty());
    }

    #[test]
    fn queueing_model_reduces_bandwidth_and_adds_delay() {
        let base = PipeAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(5));
        let loaded = QueueingModel::default().derive(
            base,
            PipeLoad {
                background_bps: 5_000_000,
                flows: 3,
            },
        );
        assert!(loaded.bandwidth < base.bandwidth);
        assert_eq!(loaded.bandwidth, DataRate::from_mbps(5));
        assert!(loaded.latency > base.latency);
        assert!(loaded.queue_len < base.queue_len);
        assert_eq!(loaded.loss_rate, base.loss_rate);
    }

    #[test]
    fn zero_load_leaves_attrs_unchanged() {
        let base = PipeAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(5));
        let same = QueueingModel::default().derive(base, PipeLoad::default());
        assert_eq!(same, base);
    }

    #[test]
    fn saturating_load_is_clipped_not_infinite() {
        let base = PipeAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(5));
        let loaded = QueueingModel::default().derive(
            base,
            PipeLoad {
                background_bps: 50_000_000,
                flows: 10,
            },
        );
        assert!(loaded.bandwidth.as_bps() > 0);
        assert!(loaded.latency < SimDuration::from_secs(1));
        assert!(loaded.queue_len >= 2);
    }

    #[test]
    fn derive_all_covers_every_loaded_pipe() {
        let (d, m) = star();
        let vns = d.vns().to_vec();
        let mut matrix = CrossTrafficMatrix::new();
        for i in 1..vns.len() {
            matrix.add_demand(vns[0], vns[i], DataRate::from_mbps(1));
        }
        let loads = matrix.pipe_loads(&m);
        let updates = QueueingModel::default().derive_all(&d, &loads);
        assert_eq!(updates.len(), loads.len());
        for (pipe, attrs) in updates {
            assert!(attrs.bandwidth <= d.pipe(pipe).attrs.bandwidth);
        }
    }

    #[test]
    fn queueing_delay_grows_with_utilisation() {
        let base = PipeAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(5));
        let model = QueueingModel::default();
        let lo = model.derive(
            base,
            PipeLoad {
                background_bps: 1_000_000,
                flows: 1,
            },
        );
        let hi = model.derive(
            base,
            PipeLoad {
                background_bps: 8_000_000,
                flows: 1,
            },
        );
        assert!(hi.latency > lo.latency);
        // Sanity: the added delay is on the order of packet service times.
        let service = base.bandwidth.transmission_time(ByteSize::from_bytes(1000));
        assert!(hi.latency - base.latency > service);
    }
}
