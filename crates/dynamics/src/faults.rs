//! Fault injection and scheduled link perturbation.
//!
//! Users direct ModelNet to change the bandwidth, delay and loss rate of a
//! set of links according to a probability distribution every so often, or to
//! fail nodes and links outright; the configuration scripts then update the
//! routing tables by recomputing all-pairs shortest paths. The ACDC
//! experiment (Figure 12) uses exactly this: every 25 seconds between
//! t = 500 s and t = 1500 s, 25 % of randomly chosen IP links have their
//! delay increased by 0–25 %.

use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

use mn_distill::{DistilledTopology, PipeAttrs, PipeId};
use mn_util::rngs::derived_rng;
use mn_util::{SimDuration, SimTime};

/// What a perturbation does to the pipes it selects.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Scale the latency by a factor drawn uniformly from `[1 + min, 1 + max]`.
    DelayIncrease {
        /// Minimum fractional increase.
        min: f64,
        /// Maximum fractional increase.
        max: f64,
    },
    /// Scale the bandwidth by a factor drawn uniformly from `[min, max]`
    /// (values below 1.0 model congestion, above 1.0 model capacity upgrades).
    BandwidthScale {
        /// Minimum scale factor.
        min: f64,
        /// Maximum scale factor.
        max: f64,
    },
    /// Set the random loss rate to a value drawn uniformly from `[min, max]`.
    LossRate {
        /// Minimum loss probability.
        min: f64,
        /// Maximum loss probability.
        max: f64,
    },
    /// Fail the selected pipes completely (zero bandwidth — everything
    /// offered to them is dropped).
    LinkFailure,
    /// Restore the selected pipes to their original attributes.
    Restore,
}

/// One perturbation applied to a random fraction of pipes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkPerturbation {
    /// Fraction of pipes to select, in `[0, 1]`.
    pub fraction: f64,
    /// What to do to them.
    pub kind: FaultKind,
}

/// A concrete change to one pipe produced by the injector.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// Virtual time at which the change takes effect.
    pub at: SimTime,
    /// The pipe affected.
    pub pipe: PipeId,
    /// Its new attributes.
    pub attrs: PipeAttrs,
    /// Whether this change can alter reachability (failures and restores), in
    /// which case routes should be recomputed.
    pub reroute: bool,
}

/// Generates scheduled pipe perturbations against a distilled topology.
#[derive(Debug)]
pub struct FaultInjector {
    /// Original attributes, for restores.
    original: Vec<PipeAttrs>,
    /// Current attributes as far as the injector knows.
    current: Vec<PipeAttrs>,
    rng: rand::rngs::StdRng,
}

impl FaultInjector {
    /// Creates an injector for the given pipe graph.
    pub fn new(topo: &DistilledTopology, seed: u64) -> Self {
        let original: Vec<PipeAttrs> = topo.pipes().map(|(_, p)| p.attrs).collect();
        FaultInjector {
            current: original.clone(),
            original,
            rng: derived_rng(seed, 0xFA17),
        }
    }

    /// The attributes the injector believes a pipe currently has.
    pub fn current_attrs(&self, pipe: PipeId) -> Option<PipeAttrs> {
        self.current.get(pipe.index()).copied()
    }

    /// Applies a perturbation at time `at`, returning the concrete per-pipe
    /// changes (already recorded internally).
    pub fn perturb(&mut self, at: SimTime, perturbation: &LinkPerturbation) -> Vec<FaultEvent> {
        let n = self.current.len();
        let count = ((n as f64) * perturbation.fraction.clamp(0.0, 1.0)).round() as usize;
        let mut indices: Vec<usize> = (0..n).collect();
        indices.shuffle(&mut self.rng);
        indices.truncate(count);

        let mut events = Vec::with_capacity(count);
        for idx in indices {
            let base = self.current[idx];
            let (attrs, reroute) = match perturbation.kind {
                FaultKind::DelayIncrease { min, max } => {
                    let factor = 1.0 + self.rng.gen_range(min..=max.max(min + f64::EPSILON));
                    (
                        PipeAttrs {
                            latency: base.latency.mul_f64(factor),
                            ..base
                        },
                        false,
                    )
                }
                FaultKind::BandwidthScale { min, max } => {
                    let factor = self.rng.gen_range(min..=max.max(min + f64::EPSILON));
                    (
                        PipeAttrs {
                            bandwidth: base.bandwidth.mul_f64(factor),
                            ..base
                        },
                        false,
                    )
                }
                FaultKind::LossRate { min, max } => {
                    let loss = self.rng.gen_range(min..=max.max(min + f64::EPSILON));
                    (
                        PipeAttrs {
                            loss_rate: loss.clamp(0.0, 1.0),
                            ..base
                        },
                        false,
                    )
                }
                FaultKind::LinkFailure => (
                    PipeAttrs {
                        bandwidth: mn_util::DataRate::ZERO,
                        ..base
                    },
                    true,
                ),
                FaultKind::Restore => (self.original[idx], true),
            };
            self.current[idx] = attrs;
            events.push(FaultEvent {
                at,
                pipe: PipeId(idx),
                attrs,
                reroute,
            });
        }
        events
    }

    /// Restores every pipe to its original attributes.
    pub fn restore_all(&mut self, at: SimTime) -> Vec<FaultEvent> {
        let events = self
            .original
            .iter()
            .enumerate()
            .map(|(idx, &attrs)| FaultEvent {
                at,
                pipe: PipeId(idx),
                attrs,
                reroute: true,
            })
            .collect();
        self.current = self.original.clone();
        events
    }

    /// Builds the ACDC experiment's perturbation schedule: every `period`
    /// between `start` and `end`, increase the delay of `fraction` of links
    /// by 0–`max_increase`.
    pub fn periodic_delay_schedule(
        start: SimTime,
        end: SimTime,
        period: SimDuration,
        fraction: f64,
        max_increase: f64,
    ) -> Vec<(SimTime, LinkPerturbation)> {
        let mut schedule = Vec::new();
        let mut t = start;
        while t < end {
            schedule.push((
                t,
                LinkPerturbation {
                    fraction,
                    kind: FaultKind::DelayIncrease {
                        min: 0.0,
                        max: max_increase,
                    },
                },
            ));
            t += period;
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_distill::{distill, DistillationMode};
    use mn_topology::generators::{ring_topology, RingParams};
    use mn_util::DataRate;

    fn graph() -> DistilledTopology {
        let topo = ring_topology(&RingParams {
            routers: 5,
            clients_per_router: 2,
            ..RingParams::default()
        });
        distill(&topo, DistillationMode::HopByHop)
    }

    #[test]
    fn delay_increase_touches_the_requested_fraction() {
        let d = graph();
        let mut inj = FaultInjector::new(&d, 1);
        let events = inj.perturb(
            SimTime::from_secs(500),
            &LinkPerturbation {
                fraction: 0.25,
                kind: FaultKind::DelayIncrease {
                    min: 0.0,
                    max: 0.25,
                },
            },
        );
        let expected = (d.pipe_count() as f64 * 0.25).round() as usize;
        assert_eq!(events.len(), expected);
        for e in &events {
            let base = d.pipe(e.pipe).attrs;
            assert!(e.attrs.latency >= base.latency);
            assert!(e.attrs.latency <= base.latency.mul_f64(1.26));
            assert!(!e.reroute);
        }
    }

    #[test]
    fn repeated_perturbations_compound() {
        let d = graph();
        let mut inj = FaultInjector::new(&d, 2);
        for i in 0..10 {
            inj.perturb(
                SimTime::from_secs(i),
                &LinkPerturbation {
                    fraction: 1.0,
                    kind: FaultKind::DelayIncrease { min: 0.1, max: 0.1 },
                },
            );
        }
        // Ten compounding 10% increases ≈ 2.59x.
        let pipe = PipeId(0);
        let base = d.pipe(pipe).attrs.latency;
        let now = inj.current_attrs(pipe).unwrap().latency;
        let ratio = now.as_secs_f64() / base.as_secs_f64();
        assert!((2.4..2.8).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn link_failure_zeroes_bandwidth_and_requests_reroute() {
        let d = graph();
        let mut inj = FaultInjector::new(&d, 3);
        let events = inj.perturb(
            SimTime::ZERO,
            &LinkPerturbation {
                fraction: 0.1,
                kind: FaultKind::LinkFailure,
            },
        );
        assert!(!events.is_empty());
        for e in &events {
            assert_eq!(e.attrs.bandwidth, DataRate::ZERO);
            assert!(e.reroute);
        }
    }

    #[test]
    fn restore_all_returns_to_original() {
        let d = graph();
        let mut inj = FaultInjector::new(&d, 4);
        inj.perturb(
            SimTime::ZERO,
            &LinkPerturbation {
                fraction: 1.0,
                kind: FaultKind::LinkFailure,
            },
        );
        let events = inj.restore_all(SimTime::from_secs(1));
        assert_eq!(events.len(), d.pipe_count());
        for e in &events {
            assert_eq!(e.attrs, d.pipe(e.pipe).attrs);
        }
        assert_eq!(
            inj.current_attrs(PipeId(0)).unwrap(),
            d.pipe(PipeId(0)).attrs
        );
    }

    #[test]
    fn loss_and_bandwidth_perturbations_stay_in_range() {
        let d = graph();
        let mut inj = FaultInjector::new(&d, 5);
        let loss_events = inj.perturb(
            SimTime::ZERO,
            &LinkPerturbation {
                fraction: 0.5,
                kind: FaultKind::LossRate {
                    min: 0.01,
                    max: 0.05,
                },
            },
        );
        for e in &loss_events {
            assert!(e.attrs.loss_rate >= 0.01 && e.attrs.loss_rate <= 0.05);
        }
        let bw_events = inj.perturb(
            SimTime::ZERO,
            &LinkPerturbation {
                fraction: 0.5,
                kind: FaultKind::BandwidthScale { min: 0.5, max: 0.5 },
            },
        );
        for e in &bw_events {
            assert!(e.attrs.bandwidth <= d.pipe(e.pipe).attrs.bandwidth);
        }
    }

    #[test]
    fn acdc_schedule_shape() {
        let schedule = FaultInjector::periodic_delay_schedule(
            SimTime::from_secs(500),
            SimTime::from_secs(1500),
            SimDuration::from_secs(25),
            0.25,
            0.25,
        );
        assert_eq!(schedule.len(), 40);
        assert_eq!(schedule[0].0, SimTime::from_secs(500));
        assert_eq!(schedule[39].0, SimTime::from_secs(1475));
        assert!(matches!(
            schedule[0].1.kind,
            FaultKind::DelayIncrease { min: 0.0, max } if (max - 0.25).abs() < 1e-12
        ));
    }

    #[test]
    fn deterministic_for_seed() {
        let d = graph();
        let perturb = LinkPerturbation {
            fraction: 0.3,
            kind: FaultKind::DelayIncrease { min: 0.0, max: 0.2 },
        };
        let mut a = FaultInjector::new(&d, 9);
        let mut b = FaultInjector::new(&d, 9);
        let ea = a.perturb(SimTime::ZERO, &perturb);
        let eb = b.perturb(SimTime::ZERO, &perturb);
        assert_eq!(ea.len(), eb.len());
        for (x, y) in ea.iter().zip(eb.iter()) {
            assert_eq!(x.pipe, y.pipe);
            assert_eq!(x.attrs, y.attrs);
        }
    }
}
