//! Dynamic network changes (§4.3 of the paper).
//!
//! ModelNet changes network conditions during a run in two ways, both
//! implemented here:
//!
//! * **Synthetic cross traffic**: the user specifies a matrix of background
//!   bandwidth demand between VN pairs; an off-line tool propagates the
//!   matrix through the routing tables to find each pipe's background load
//!   and derives new pipe parameters from a simple analytic queueing model —
//!   lower available bandwidth, higher latency (queueing delay) and a smaller
//!   queue bound. The emulation then periodically installs the derived
//!   settings. This scales independently of the cross-traffic rate, at the
//!   cost of not modelling the cross traffic's own congestion response.
//! * **Fault injection and link perturbation**: scheduled changes to link
//!   bandwidth/latency/loss (including complete failures), with all-pairs
//!   routes recomputed afterwards under the paper's "perfect routing
//!   protocol" assumption. The ACDC experiment's periodic delay increases are
//!   expressed this way.

//! * **Runtime reconfiguration**: a deterministic, virtual-time-stamped
//!   [`Schedule`] of link failures/recoveries, parameter renegotiation,
//!   node churn and CBR cross-traffic injector changes, applied to a live
//!   emulation by the [`ScheduleEngine`] — pipe parameters mutate in place,
//!   injectors ride the allocation-free tick path, and only the routes a
//!   change can affect are recomputed (incrementally, preserving the route
//!   ids of descriptors in flight).

pub mod cross_traffic;
pub mod engine;
pub mod faults;
pub mod schedule;

pub use cross_traffic::{CrossTrafficMatrix, PipeLoad, QueueingModel};
pub use engine::{AppliedChanges, DynamicsTarget, ScheduleEngine, ScheduleRestoreError};
pub use faults::{FaultEvent, FaultInjector, FaultKind, LinkPerturbation};
pub use schedule::{Schedule, ScheduleEvent};
