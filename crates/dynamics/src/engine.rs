//! The runtime reconfiguration engine.
//!
//! [`ScheduleEngine`] owns the authoritative copy of the distilled pipe
//! graph and walks a [`Schedule`](crate::Schedule) against a running
//! emulation: pipe parameters are mutated in place on the allocation-free
//! tick path, CBR injectors are installed/removed as first-class scheduled
//! sources, and — only when a change can actually affect shortest paths
//! (latency, or a link failing/recovering) — the affected routes are
//! recomputed **incrementally** through [`DynamicsTarget::reroute`].
//! Changes applied at one apply point are batched into a single reroute, so
//! a node failure taking down a dozen pipes costs one routing update — and
//! each reroute publishes one copy-on-write route-table generation whose
//! cost is proportional to the rows that changed, not to the VN pair count.
//!
//! The engine performs no time-keeping of its own: the driver (the Runner,
//! or a test loop) calls [`ScheduleEngine::apply_due`] at its apply points.
//! Because every mutation flows through the same target interface in
//! schedule order, sequential and threaded backends observe identical
//! command streams and stay bit-identical through every reconfiguration.

use mn_distill::{DistilledTopology, PipeAttrs, PipeId};
use mn_packet::VnId;
use mn_pipe::CbrConfig;
use mn_routing::RouteUpdate;
use mn_topology::NodeId;
use mn_util::{DataRate, SimTime};

use crate::schedule::{Schedule, ScheduleEvent};

/// The emulation-side interface the engine reconfigures through. The
/// façade's execution backends implement it for both the sequential and the
/// threaded emulator.
pub trait DynamicsTarget {
    /// Replaces a pipe's emulation parameters in place. Packets already
    /// inside the pipe keep their computed deadlines.
    fn update_pipe_attrs(&mut self, pipe: PipeId, attrs: PipeAttrs) -> bool;

    /// Installs, replaces or (with `None`) removes the CBR background
    /// injector on a pipe; injection starts at `from`.
    fn set_pipe_cbr(&mut self, pipe: PipeId, config: Option<CbrConfig>, from: SimTime) -> bool;

    /// Recomputes routing incrementally after the listed pipes of `topo`
    /// changed. In-flight descriptors keep their (still valid) route ids.
    fn reroute(&mut self, topo: &DistilledTopology, changed: &[PipeId]) -> RouteUpdate;

    /// Starts a fluid bulk flow effective at `at`. Targets without a fluid
    /// model reject the event (the default).
    fn add_fluid_flow(
        &mut self,
        _tag: u64,
        _src: VnId,
        _dst: VnId,
        _demand: DataRate,
        _clients: u32,
        _at: SimTime,
    ) -> bool {
        false
    }

    /// Changes a fluid flow's offered demand and client count at `at`.
    fn resize_fluid_flow(
        &mut self,
        _tag: u64,
        _demand: DataRate,
        _clients: u32,
        _at: SimTime,
    ) -> bool {
        false
    }

    /// Stops a fluid flow at `at`.
    fn remove_fluid_flow(&mut self, _tag: u64, _at: SimTime) -> bool {
        false
    }

    /// Binds a VN at a client location of `topo` and starts routing for
    /// it, incrementally (no full route rebuild). Targets without live
    /// endpoint churn reject the event (the default).
    fn vn_join(
        &mut self,
        _topo: &DistilledTopology,
        _vn: VnId,
        _location: NodeId,
        _at: SimTime,
    ) -> bool {
        false
    }

    /// Removes a VN at `at`. New traffic to or from it is refused from
    /// this apply point on; in-flight descriptors drain on their
    /// pre-departure routes.
    fn vn_leave(&mut self, _vn: VnId, _at: SimTime) -> bool {
        false
    }
}

/// Why [`ScheduleEngine::restore_cursor`] refused to fast-forward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleRestoreError {
    /// The engine has already applied events; restore requires a fresh
    /// engine built from the same experiment configuration.
    NotFresh {
        /// How many events the engine had already applied.
        applied: usize,
    },
    /// The checkpointed cursor points past the end of the schedule — the
    /// snapshot was taken against a different (longer) schedule.
    CursorOutOfRange {
        /// The checkpointed cursor.
        cursor: usize,
        /// This schedule's event count.
        len: usize,
    },
    /// A still-pending event is stamped before the restored virtual time:
    /// it would have to fire in the past, so the cursor and the snapshot
    /// disagree about how far the run had progressed.
    EventBeforeRestore {
        /// Index of the offending event in the schedule.
        index: usize,
        /// Its scheduled time.
        at: SimTime,
        /// The virtual time the emulation resumes at.
        resumed_at: SimTime,
    },
}

impl std::fmt::Display for ScheduleRestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleRestoreError::NotFresh { applied } => write!(
                f,
                "schedule restore requires a fresh engine ({applied} events already applied)"
            ),
            ScheduleRestoreError::CursorOutOfRange { cursor, len } => write!(
                f,
                "checkpointed schedule cursor {cursor} exceeds schedule length {len}"
            ),
            ScheduleRestoreError::EventBeforeRestore {
                index,
                at,
                resumed_at,
            } => write!(
                f,
                "pending schedule event {index} at {at:?} predates restored time {resumed_at:?}"
            ),
        }
    }
}

impl std::error::Error for ScheduleRestoreError {}

/// No-op target for [`ScheduleEngine::restore_cursor`] replays: the engine
/// folds topology mutations into its authoritative graph while the restored
/// emulator (which already carries the effects) hears nothing.
struct Quiet;

impl DynamicsTarget for Quiet {
    fn update_pipe_attrs(&mut self, _pipe: PipeId, _attrs: PipeAttrs) -> bool {
        true
    }
    fn set_pipe_cbr(&mut self, _pipe: PipeId, _config: Option<CbrConfig>, _from: SimTime) -> bool {
        true
    }
    fn reroute(&mut self, _topo: &DistilledTopology, _changed: &[PipeId]) -> RouteUpdate {
        RouteUpdate::default()
    }
    fn add_fluid_flow(
        &mut self,
        _tag: u64,
        _src: VnId,
        _dst: VnId,
        _demand: DataRate,
        _clients: u32,
        _at: SimTime,
    ) -> bool {
        true
    }
    fn resize_fluid_flow(
        &mut self,
        _tag: u64,
        _demand: DataRate,
        _clients: u32,
        _at: SimTime,
    ) -> bool {
        true
    }
    fn remove_fluid_flow(&mut self, _tag: u64, _at: SimTime) -> bool {
        true
    }
    fn vn_join(
        &mut self,
        _topo: &DistilledTopology,
        _vn: VnId,
        _location: NodeId,
        _at: SimTime,
    ) -> bool {
        true
    }
    fn vn_leave(&mut self, _vn: VnId, _at: SimTime) -> bool {
        true
    }
}

/// What one [`ScheduleEngine::apply_due`] call did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AppliedChanges {
    /// Schedule events consumed.
    pub events: usize,
    /// Pipes whose parameters were updated in place.
    pub pipes_updated: usize,
    /// CBR injectors installed, replaced or removed.
    pub cbr_changes: usize,
    /// Fluid flows started, resized or stopped.
    pub fluid_changes: usize,
    /// VNs joined or departed.
    pub vn_changes: usize,
    /// The routing update, if any applied change required one.
    pub reroute: Option<RouteUpdate>,
}

impl AppliedChanges {
    /// Returns `true` if nothing was applied.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }
}

/// Applies a [`Schedule`](crate::Schedule) to a running emulation.
#[derive(Debug)]
pub struct ScheduleEngine {
    /// The authoritative pipe graph, mutated as events apply; routing
    /// updates are computed against it.
    topo: DistilledTopology,
    /// Build-time attributes, for `LinkUp`/`NodeUp` restores.
    original: Vec<PipeAttrs>,
    /// Every pipe incident to a node (outgoing and incoming), for node
    /// churn.
    incident: Vec<Vec<PipeId>>,
    schedule: Schedule,
    /// Index of the first unapplied event.
    cursor: usize,
    /// Scratch: pipes whose routing-relevant attributes changed at the
    /// current apply point (batched into one reroute).
    changed: Vec<PipeId>,
    /// Scratch: incident-pipe working copy for node churn, reused across
    /// apply points so repeated churn allocates nothing new.
    node_scratch: Vec<PipeId>,
}

impl ScheduleEngine {
    /// Creates an engine over a copy of the distilled topology the
    /// emulation was built from.
    pub fn new(topo: DistilledTopology, schedule: Schedule) -> Self {
        let original: Vec<PipeAttrs> = topo.pipes().map(|(_, p)| p.attrs).collect();
        let mut incident: Vec<Vec<PipeId>> = vec![Vec::new(); topo.node_count()];
        for (id, pipe) in topo.pipes() {
            incident[pipe.src.index()].push(id);
            incident[pipe.dst.index()].push(id);
        }
        ScheduleEngine {
            topo,
            original,
            incident,
            schedule,
            cursor: 0,
            changed: Vec::new(),
            node_scratch: Vec::new(),
        }
    }

    /// The virtual time of the next unapplied event, or `None` when the
    /// schedule is exhausted.
    pub fn next_time(&self) -> Option<SimTime> {
        self.schedule.events().get(self.cursor).map(|&(t, _)| t)
    }

    /// Number of unapplied events.
    pub fn pending(&self) -> usize {
        self.schedule.len() - self.cursor
    }

    /// Returns `true` once every event has been applied.
    pub fn finished(&self) -> bool {
        self.pending() == 0
    }

    /// The engine's current view of the pipe graph (original attributes
    /// with every applied change folded in).
    pub fn topology(&self) -> &DistilledTopology {
        &self.topo
    }

    /// The full schedule the engine walks.
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Index of the first unapplied schedule event. Together with the
    /// schedule itself (which the snapshot layer does not serialize — it is
    /// part of the experiment configuration) this is the engine's complete
    /// restorable state: see [`ScheduleEngine::restore_cursor`].
    pub fn cursor(&self) -> usize {
        self.cursor
    }

    /// Fast-forwards a **fresh** engine to a checkpointed position.
    ///
    /// The first `cursor` events are replayed against a silent no-op target
    /// so the engine's authoritative pipe graph folds in every applied
    /// change (the emulator side was restored from the snapshot and already
    /// carries them), then every still-pending event is validated against
    /// the restored virtual time: an event stamped before `resumed_at`
    /// would have to fire in the past, which means the cursor and the
    /// snapshot disagree — a structured error, not a silent skip.
    pub fn restore_cursor(
        &mut self,
        cursor: usize,
        resumed_at: SimTime,
    ) -> Result<(), ScheduleRestoreError> {
        if self.cursor != 0 {
            return Err(ScheduleRestoreError::NotFresh {
                applied: self.cursor,
            });
        }
        let len = self.schedule.len();
        if cursor > len {
            return Err(ScheduleRestoreError::CursorOutOfRange { cursor, len });
        }
        for index in cursor..len {
            let (at, _) = self.schedule.events()[index];
            if at < resumed_at {
                return Err(ScheduleRestoreError::EventBeforeRestore {
                    index,
                    at,
                    resumed_at,
                });
            }
        }
        let mut quiet = Quiet;
        let mut discard = AppliedChanges::default();
        while self.cursor < cursor {
            let (at, event) = self.schedule.events()[self.cursor];
            self.cursor += 1;
            self.apply_one(&mut quiet, at, event, &mut discard);
        }
        // The emulator restored its own routing state; the batched-reroute
        // scratch from the replay must not leak into the next apply point.
        self.changed.clear();
        Ok(())
    }

    /// Applies every event due at or before `now` to `target`, in schedule
    /// order, batching all routing-relevant changes into a single
    /// incremental reroute at the end of the apply point.
    pub fn apply_due<T: DynamicsTarget>(&mut self, now: SimTime, target: &mut T) -> AppliedChanges {
        let mut applied = AppliedChanges::default();
        while let Some(&(at, event)) = self.schedule.events().get(self.cursor) {
            if at > now {
                break;
            }
            self.cursor += 1;
            applied.events += 1;
            self.apply_one(target, at, event, &mut applied);
        }
        if !self.changed.is_empty() {
            let update = target.reroute(&self.topo, &self.changed);
            self.changed.clear();
            applied.reroute = Some(update);
        }
        applied
    }

    /// Applies a single schedule event to `target`, updating `applied` and
    /// the batched-reroute scratch.
    fn apply_one<T: DynamicsTarget>(
        &mut self,
        target: &mut T,
        at: SimTime,
        event: ScheduleEvent,
        applied: &mut AppliedChanges,
    ) {
        match event {
            ScheduleEvent::SetPipe { pipe, attrs } => {
                self.apply_pipe(target, pipe, attrs, applied);
            }
            ScheduleEvent::LinkDown { pipe } => {
                let Some(current) = self.topo.get_pipe(pipe).map(|p| p.attrs) else {
                    return;
                };
                let failed = PipeAttrs {
                    bandwidth: DataRate::ZERO,
                    ..current
                };
                self.apply_pipe(target, pipe, failed, applied);
            }
            ScheduleEvent::LinkUp { pipe } => {
                let Some(&original) = self.original.get(pipe.index()) else {
                    return;
                };
                self.apply_pipe(target, pipe, original, applied);
            }
            ScheduleEvent::NodeDown { node } => {
                let mut pipes = std::mem::take(&mut self.node_scratch);
                pipes.clear();
                pipes.extend_from_slice(
                    self.incident
                        .get(node.index())
                        .map(Vec::as_slice)
                        .unwrap_or(&[]),
                );
                for &pipe in &pipes {
                    let current = self.topo.pipe(pipe).attrs;
                    let failed = PipeAttrs {
                        bandwidth: DataRate::ZERO,
                        ..current
                    };
                    self.apply_pipe(target, pipe, failed, applied);
                }
                self.node_scratch = pipes;
            }
            ScheduleEvent::NodeUp { node } => {
                let mut pipes = std::mem::take(&mut self.node_scratch);
                pipes.clear();
                pipes.extend_from_slice(
                    self.incident
                        .get(node.index())
                        .map(Vec::as_slice)
                        .unwrap_or(&[]),
                );
                for &pipe in &pipes {
                    let original = self.original[pipe.index()];
                    self.apply_pipe(target, pipe, original, applied);
                }
                self.node_scratch = pipes;
            }
            ScheduleEvent::CbrStart { pipe, config } => {
                // Injection starts at the event's scheduled time, not
                // the (possibly later) apply time: replays are
                // deterministic regardless of driver granularity.
                if target.set_pipe_cbr(pipe, Some(config), at) {
                    applied.cbr_changes += 1;
                }
            }
            ScheduleEvent::CbrStop { pipe } => {
                if target.set_pipe_cbr(pipe, None, at) {
                    applied.cbr_changes += 1;
                }
            }
            ScheduleEvent::FluidStart {
                tag,
                src,
                dst,
                demand,
                clients,
            } => {
                // Like CBR events, the flow is effective from its
                // scheduled time, not the (possibly later) apply time.
                if target.add_fluid_flow(tag, src, dst, demand, clients, at) {
                    applied.fluid_changes += 1;
                }
            }
            ScheduleEvent::FluidResize {
                tag,
                demand,
                clients,
            } => {
                if target.resize_fluid_flow(tag, demand, clients, at) {
                    applied.fluid_changes += 1;
                }
            }
            ScheduleEvent::FluidStop { tag } => {
                if target.remove_fluid_flow(tag, at) {
                    applied.fluid_changes += 1;
                }
            }
            ScheduleEvent::VnJoin { vn, location } => {
                // The engine's authoritative graph carries every
                // applied pipe change, so the newcomer's source tree
                // is computed against current attributes.
                if target.vn_join(&self.topo, vn, location, at) {
                    applied.vn_changes += 1;
                }
            }
            ScheduleEvent::VnLeave { vn } => {
                if target.vn_leave(vn, at) {
                    applied.vn_changes += 1;
                }
            }
        }
    }

    /// Writes one pipe's new attributes into the authoritative graph and
    /// the target, flagging it for the batched reroute when the change can
    /// affect shortest paths (latency, or usability flipping).
    fn apply_pipe<T: DynamicsTarget>(
        &mut self,
        target: &mut T,
        pipe: PipeId,
        attrs: PipeAttrs,
        applied: &mut AppliedChanges,
    ) {
        let Some(slot) = self.topo.pipe_attrs_mut(pipe) else {
            return;
        };
        let old = *slot;
        if old == attrs {
            return;
        }
        *slot = attrs;
        target.update_pipe_attrs(pipe, attrs);
        applied.pipes_updated += 1;
        let routing_relevant =
            old.latency != attrs.latency || old.bandwidth.is_zero() != attrs.bandwidth.is_zero();
        if routing_relevant && !self.changed.contains(&pipe) {
            self.changed.push(pipe);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_distill::{distill, DistillationMode};
    use mn_topology::generators::{ring_topology, RingParams};
    use mn_util::ByteSize;

    /// Records every call the engine makes.
    #[derive(Default)]
    struct MockTarget {
        updates: Vec<(PipeId, PipeAttrs)>,
        cbr: Vec<(PipeId, Option<CbrConfig>, SimTime)>,
        reroutes: Vec<Vec<PipeId>>,
        fluid: Vec<(u64, SimTime)>,
        churn: Vec<(VnId, Option<NodeId>, SimTime)>,
    }

    impl DynamicsTarget for MockTarget {
        fn update_pipe_attrs(&mut self, pipe: PipeId, attrs: PipeAttrs) -> bool {
            self.updates.push((pipe, attrs));
            true
        }
        fn set_pipe_cbr(&mut self, pipe: PipeId, config: Option<CbrConfig>, from: SimTime) -> bool {
            self.cbr.push((pipe, config, from));
            true
        }
        fn reroute(&mut self, _topo: &DistilledTopology, changed: &[PipeId]) -> RouteUpdate {
            self.reroutes.push(changed.to_vec());
            RouteUpdate::default()
        }
        fn add_fluid_flow(
            &mut self,
            tag: u64,
            _src: VnId,
            _dst: VnId,
            _demand: DataRate,
            _clients: u32,
            at: SimTime,
        ) -> bool {
            self.fluid.push((tag, at));
            true
        }
        fn resize_fluid_flow(
            &mut self,
            tag: u64,
            _demand: DataRate,
            _clients: u32,
            at: SimTime,
        ) -> bool {
            self.fluid.push((tag, at));
            true
        }
        fn remove_fluid_flow(&mut self, tag: u64, at: SimTime) -> bool {
            self.fluid.push((tag, at));
            true
        }
        fn vn_join(
            &mut self,
            _topo: &DistilledTopology,
            vn: VnId,
            location: NodeId,
            at: SimTime,
        ) -> bool {
            self.churn.push((vn, Some(location), at));
            true
        }
        fn vn_leave(&mut self, vn: VnId, at: SimTime) -> bool {
            self.churn.push((vn, None, at));
            true
        }
    }

    fn graph() -> DistilledTopology {
        let topo = ring_topology(&RingParams {
            routers: 4,
            clients_per_router: 1,
            ..RingParams::default()
        });
        distill(&topo, DistillationMode::HopByHop)
    }

    #[test]
    fn link_flap_round_trips_and_batches_one_reroute_per_apply_point() {
        let d = graph();
        let original = d.pipe(PipeId(0)).attrs;
        let schedule = Schedule::new()
            .duplex_down(SimTime::from_secs(1), PipeId(0), PipeId(1))
            .duplex_up(SimTime::from_secs(2), PipeId(0), PipeId(1));
        let mut engine = ScheduleEngine::new(d, schedule);
        let mut target = MockTarget::default();
        assert_eq!(engine.next_time(), Some(SimTime::from_secs(1)));
        // Nothing due yet.
        let early = engine.apply_due(SimTime::from_millis(500), &mut target);
        assert!(early.is_empty());
        // The failure: both directions updated, one batched reroute.
        let down = engine.apply_due(SimTime::from_secs(1), &mut target);
        assert_eq!(down.events, 2);
        assert_eq!(down.pipes_updated, 2);
        assert!(down.reroute.is_some());
        assert_eq!(target.reroutes, vec![vec![PipeId(0), PipeId(1)]]);
        assert!(engine.topology().pipe(PipeId(0)).attrs.bandwidth.is_zero());
        // The recovery restores the originals.
        let up = engine.apply_due(SimTime::from_secs(2), &mut target);
        assert_eq!(up.pipes_updated, 2);
        assert_eq!(engine.topology().pipe(PipeId(0)).attrs, original);
        assert_eq!(target.reroutes.len(), 2);
        assert!(engine.finished());
        assert_eq!(engine.next_time(), None);
    }

    #[test]
    fn node_churn_fails_every_incident_pipe() {
        let d = graph();
        // Node 0 is a router of the ring: two ring links plus one access
        // link -> six directed pipes.
        let node = mn_topology::NodeId(0);
        let expected: usize = d
            .pipes()
            .filter(|(_, p)| p.src == node || p.dst == node)
            .count();
        assert!(expected >= 4);
        let schedule = Schedule::new()
            .node_down(SimTime::from_secs(1), node)
            .node_up(SimTime::from_secs(2), node);
        let mut engine = ScheduleEngine::new(d, schedule);
        let mut target = MockTarget::default();
        let down = engine.apply_due(SimTime::from_secs(1), &mut target);
        assert_eq!(down.pipes_updated, expected);
        assert_eq!(target.reroutes[0].len(), expected);
        for (id, pipe) in engine.topology().pipes() {
            assert_eq!(
                pipe.attrs.bandwidth.is_zero(),
                pipe.src == node || pipe.dst == node,
                "{id}"
            );
        }
        let up = engine.apply_due(SimTime::from_secs(2), &mut target);
        assert_eq!(up.pipes_updated, expected);
        assert!(engine
            .topology()
            .pipes()
            .all(|(_, p)| !p.attrs.bandwidth.is_zero()));
    }

    #[test]
    fn pure_bandwidth_renegotiation_does_not_reroute() {
        let d = graph();
        let base = d.pipe(PipeId(0)).attrs;
        let renegotiated = PipeAttrs {
            bandwidth: base.bandwidth.mul_f64(0.25),
            ..base
        };
        let schedule = Schedule::new().set_pipe(SimTime::from_secs(1), PipeId(0), renegotiated);
        let mut engine = ScheduleEngine::new(d, schedule);
        let mut target = MockTarget::default();
        let applied = engine.apply_due(SimTime::from_secs(1), &mut target);
        assert_eq!(applied.pipes_updated, 1);
        assert!(applied.reroute.is_none(), "cost metric is latency only");
        assert!(target.reroutes.is_empty());
        // A latency change on the other hand must reroute.
        let d2 = engine.topology().clone();
        let slower = PipeAttrs {
            latency: base.latency * 2,
            ..renegotiated
        };
        let mut engine = ScheduleEngine::new(
            d2,
            Schedule::new().set_pipe(SimTime::from_secs(1), PipeId(0), slower),
        );
        let applied = engine.apply_due(SimTime::from_secs(1), &mut target);
        assert!(applied.reroute.is_some());
    }

    #[test]
    fn cbr_events_carry_their_scheduled_start_time() {
        let d = graph();
        let cbr = CbrConfig::new(DataRate::from_mbps(2), ByteSize::from_bytes(800));
        let schedule = Schedule::new()
            .cbr_start(SimTime::from_secs(1), PipeId(3), cbr)
            .cbr_stop(SimTime::from_secs(4), PipeId(3));
        let mut engine = ScheduleEngine::new(d, schedule);
        let mut target = MockTarget::default();
        // Applied late: the injector still starts at its scheduled time.
        let applied = engine.apply_due(SimTime::from_secs(2), &mut target);
        assert_eq!(applied.cbr_changes, 1);
        assert_eq!(
            target.cbr,
            vec![(PipeId(3), Some(cbr), SimTime::from_secs(1))]
        );
        let applied = engine.apply_due(SimTime::from_secs(10), &mut target);
        assert_eq!(applied.cbr_changes, 1);
        assert_eq!(
            target.cbr.last(),
            Some(&(PipeId(3), None, SimTime::from_secs(4)))
        );
        assert!(applied.reroute.is_none(), "CBR does not change routes");
    }

    #[test]
    fn fluid_events_carry_their_scheduled_times_and_never_reroute() {
        let d = graph();
        let t = SimTime::from_secs;
        let schedule = Schedule::new()
            .fluid_start(t(1), 9, VnId(0), VnId(1), DataRate::from_mbps(8), 1000)
            .fluid_resize(t(2), 9, DataRate::from_mbps(4), 500)
            .fluid_stop(t(3), 9);
        let mut engine = ScheduleEngine::new(d, schedule);
        let mut target = MockTarget::default();
        // Applied late, the events still carry their scheduled times.
        let applied = engine.apply_due(t(5), &mut target);
        assert_eq!(applied.fluid_changes, 3);
        assert_eq!(target.fluid, vec![(9, t(1)), (9, t(2)), (9, t(3))]);
        assert!(
            applied.reroute.is_none(),
            "fluid flows do not change routes"
        );
        // A target without a fluid model rejects the events: nothing counted.
        struct NoFluid;
        impl DynamicsTarget for NoFluid {
            fn update_pipe_attrs(&mut self, _: PipeId, _: PipeAttrs) -> bool {
                true
            }
            fn set_pipe_cbr(&mut self, _: PipeId, _: Option<CbrConfig>, _: SimTime) -> bool {
                true
            }
            fn reroute(&mut self, _: &DistilledTopology, _: &[PipeId]) -> RouteUpdate {
                RouteUpdate::default()
            }
        }
        let mut engine = ScheduleEngine::new(
            graph(),
            Schedule::new().fluid_start(t(1), 9, VnId(0), VnId(1), DataRate::from_mbps(8), 10),
        );
        let applied = engine.apply_due(t(5), &mut NoFluid);
        assert_eq!(applied.events, 1);
        assert_eq!(applied.fluid_changes, 0);
    }

    #[test]
    fn vn_churn_events_reach_the_target_in_schedule_order() {
        let d = graph();
        let t = SimTime::from_secs;
        let loc = *d.vns().first().expect("graph has client nodes");
        let schedule = Schedule::new()
            .vn_join(t(1), VnId(40), loc)
            .vn_leave(t(2), VnId(40))
            .vn_join(t(2), VnId(41), loc);
        let mut engine = ScheduleEngine::new(d, schedule);
        let mut target = MockTarget::default();
        let applied = engine.apply_due(t(1), &mut target);
        assert_eq!(applied.vn_changes, 1);
        // Applied late, the leave and the second join still land in
        // schedule order with their scheduled times.
        let applied = engine.apply_due(t(5), &mut target);
        assert_eq!(applied.vn_changes, 2);
        assert!(applied.reroute.is_none(), "churn does not batch a reroute");
        assert_eq!(
            target.churn,
            vec![
                (VnId(40), Some(loc), t(1)),
                (VnId(40), None, t(2)),
                (VnId(41), Some(loc), t(2)),
            ]
        );
        // Targets without churn support reject the events: nothing counted.
        let mut engine = ScheduleEngine::new(graph(), Schedule::new().vn_join(t(1), VnId(7), loc));
        struct NoChurn;
        impl DynamicsTarget for NoChurn {
            fn update_pipe_attrs(&mut self, _: PipeId, _: PipeAttrs) -> bool {
                true
            }
            fn set_pipe_cbr(&mut self, _: PipeId, _: Option<CbrConfig>, _: SimTime) -> bool {
                true
            }
            fn reroute(&mut self, _: &DistilledTopology, _: &[PipeId]) -> RouteUpdate {
                RouteUpdate::default()
            }
        }
        let applied = engine.apply_due(t(5), &mut NoChurn);
        assert_eq!(applied.events, 1);
        assert_eq!(applied.vn_changes, 0);
    }

    #[test]
    fn restore_cursor_folds_applied_changes_without_touching_the_target() {
        let d = graph();
        let t = SimTime::from_secs;
        let schedule = Schedule::new()
            .duplex_down(t(1), PipeId(0), PipeId(1))
            .duplex_up(t(3), PipeId(0), PipeId(1));
        // A reference engine applies the failure the normal way.
        let mut reference = ScheduleEngine::new(d.clone(), schedule.clone());
        let mut target = MockTarget::default();
        reference.apply_due(t(2), &mut target);
        assert_eq!(reference.cursor(), 2);
        // A fresh engine fast-forwarded to the same cursor must agree on
        // the pipe graph and the pending tail — with zero target calls.
        let mut restored = ScheduleEngine::new(d, schedule);
        restored.restore_cursor(2, t(2)).expect("valid cursor");
        assert_eq!(restored.cursor(), 2);
        assert_eq!(restored.pending(), reference.pending());
        assert_eq!(restored.next_time(), Some(t(3)));
        assert!(restored
            .topology()
            .pipe(PipeId(0))
            .attrs
            .bandwidth
            .is_zero());
        // Resuming walks the remaining schedule exactly like the reference.
        let mut quiet_after = MockTarget::default();
        let up = restored.apply_due(t(3), &mut quiet_after);
        assert_eq!(up.pipes_updated, 2);
        assert_eq!(
            quiet_after.reroutes,
            vec![vec![PipeId(0), PipeId(1)]],
            "only the post-restore apply point reroutes"
        );
        assert!(restored.finished());
    }

    #[test]
    fn restore_cursor_rejects_structured_inconsistencies() {
        let t = SimTime::from_secs;
        let schedule = Schedule::new()
            .link_down(t(1), PipeId(0))
            .link_up(t(2), PipeId(0));
        // Not fresh: an engine that already applied events refuses.
        let mut engine = ScheduleEngine::new(graph(), schedule.clone());
        engine.apply_due(t(1), &mut MockTarget::default());
        assert_eq!(
            engine.restore_cursor(1, t(1)),
            Err(ScheduleRestoreError::NotFresh { applied: 1 })
        );
        // Cursor past the end of the schedule.
        let mut engine = ScheduleEngine::new(graph(), schedule.clone());
        assert_eq!(
            engine.restore_cursor(3, t(5)),
            Err(ScheduleRestoreError::CursorOutOfRange { cursor: 3, len: 2 })
        );
        // A pending event stamped before the restored time: the cursor
        // claims the t(1) failure never applied, yet time is already t(5).
        let mut engine = ScheduleEngine::new(graph(), schedule);
        assert_eq!(
            engine.restore_cursor(0, t(5)),
            Err(ScheduleRestoreError::EventBeforeRestore {
                index: 0,
                at: t(1),
                resumed_at: t(5),
            })
        );
        // The failed restore mutated nothing: a correct one still works.
        assert!(engine.restore_cursor(1, t(1)).is_ok());
    }

    #[test]
    fn no_op_changes_are_skipped_entirely() {
        let d = graph();
        let base = d.pipe(PipeId(0)).attrs;
        let schedule = Schedule::new()
            .set_pipe(SimTime::from_secs(1), PipeId(0), base)
            .link_up(SimTime::from_secs(1), PipeId(0));
        let mut engine = ScheduleEngine::new(d, schedule);
        let mut target = MockTarget::default();
        let applied = engine.apply_due(SimTime::from_secs(1), &mut target);
        assert_eq!(applied.events, 2);
        assert_eq!(applied.pipes_updated, 0, "attributes were already current");
        assert!(target.updates.is_empty());
        assert!(target.reroutes.is_empty());
    }
}
