//! Deterministic, virtual-time-stamped reconfiguration schedules.
//!
//! A [`Schedule`] is the declarative half of runtime network dynamics: an
//! ordered stream of [`ScheduleEvent`]s — link failures and recoveries,
//! bandwidth/latency/loss renegotiation, node churn, and CBR cross-traffic
//! injector changes — each pinned to a virtual time. The
//! [`ScheduleEngine`](crate::ScheduleEngine) applies the stream to a running
//! emulation; because the stream is a plain sorted list with no hidden
//! state, the same schedule replayed against the same experiment produces
//! bit-identical runs on both execution backends.

use serde::{Deserialize, Serialize};

use mn_distill::{PipeAttrs, PipeId};
use mn_packet::VnId;
use mn_pipe::CbrConfig;
use mn_topology::NodeId;
use mn_util::{DataRate, SimTime};

use crate::faults::FaultEvent;

/// One scheduled reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ScheduleEvent {
    /// Replace a pipe's emulation parameters in place (bandwidth/latency/
    /// loss/queue renegotiation). Routes are recomputed only if the change
    /// can affect them (latency or usability).
    SetPipe {
        /// The pipe to re-parameterise.
        pipe: PipeId,
        /// Its new attributes.
        attrs: PipeAttrs,
    },
    /// Fail a pipe outright (zero bandwidth: everything offered to it is
    /// dropped, and routing steers around it).
    LinkDown {
        /// The pipe to fail.
        pipe: PipeId,
    },
    /// Restore a failed or renegotiated pipe to its original attributes.
    LinkUp {
        /// The pipe to restore.
        pipe: PipeId,
    },
    /// Fail every pipe incident to a node (node churn: crash / departure).
    NodeDown {
        /// The node whose pipes fail.
        node: NodeId,
    },
    /// Restore every pipe incident to a node to its original attributes.
    NodeUp {
        /// The node whose pipes recover.
        node: NodeId,
    },
    /// Install (or replace) a CBR cross-traffic injector on a pipe.
    CbrStart {
        /// The pipe carrying the background load.
        pipe: PipeId,
        /// Injector parameters.
        config: CbrConfig,
    },
    /// Remove the CBR injector from a pipe.
    CbrStop {
        /// The pipe to quiesce.
        pipe: PipeId,
    },
    /// Start a fluid (flow-level) bulk flow between two VNs: `demand`
    /// offered in aggregate for `clients` modelled clients. The flow's
    /// max-min share of every pipe it crosses shows up to the packet path
    /// as consumed capacity.
    FluidStart {
        /// Caller-chosen flow tag (unique among live fluid flows).
        tag: u64,
        /// Source VN.
        src: VnId,
        /// Destination VN.
        dst: VnId,
        /// Aggregate offered rate.
        demand: DataRate,
        /// Modelled client count (the flow's max-min weight).
        clients: u32,
    },
    /// Change a live fluid flow's offered demand and client count.
    FluidResize {
        /// The flow to resize.
        tag: u64,
        /// New aggregate offered rate.
        demand: DataRate,
        /// New modelled client count.
        clients: u32,
    },
    /// Stop a fluid flow, returning its share to the packet path.
    FluidStop {
        /// The flow to stop.
        tag: u64,
    },
    /// Bind a new (or previously departed) VN at a client location and
    /// start routing for it: the location's source tree is added to the
    /// routing matrix if absent, the VN's row shard is inserted into the
    /// route table, and an entry core is assigned — all incrementally,
    /// without a full rebuild.
    VnJoin {
        /// The VN joining the emulation.
        vn: VnId,
        /// The topology client node it binds to.
        location: NodeId,
    },
    /// Remove a VN from the emulation. New traffic to or from it is
    /// refused immediately; descriptors already in flight drain
    /// deterministically on their pre-departure routes (route ids stay
    /// valid across the departure).
    VnLeave {
        /// The VN departing.
        vn: VnId,
    },
}

/// A virtual-time-ordered stream of reconfigurations.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Schedule {
    /// `(time, event)` pairs; kept sorted by time, stable for equal times
    /// (insertion order breaks ties, so a `LinkUp` scheduled after a
    /// `LinkDown` at the same instant is applied after it).
    events: Vec<(SimTime, ScheduleEvent)>,
}

impl Schedule {
    /// Creates an empty schedule.
    pub fn new() -> Self {
        Schedule::default()
    }

    /// Adds an event at `at`, keeping the stream time-ordered (stable for
    /// equal times).
    pub fn at(mut self, at: SimTime, event: ScheduleEvent) -> Self {
        self.push(at, event);
        self
    }

    /// In-place [`Schedule::at`].
    pub fn push(&mut self, at: SimTime, event: ScheduleEvent) {
        let idx = self.events.partition_point(|&(t, _)| t <= at);
        self.events.insert(idx, (at, event));
    }

    /// Schedules a pipe failure.
    pub fn link_down(self, at: SimTime, pipe: PipeId) -> Self {
        self.at(at, ScheduleEvent::LinkDown { pipe })
    }

    /// Schedules a pipe restore.
    pub fn link_up(self, at: SimTime, pipe: PipeId) -> Self {
        self.at(at, ScheduleEvent::LinkUp { pipe })
    }

    /// Schedules a failure of both directions of a duplex link.
    pub fn duplex_down(self, at: SimTime, forward: PipeId, reverse: PipeId) -> Self {
        self.link_down(at, forward).link_down(at, reverse)
    }

    /// Schedules a restore of both directions of a duplex link.
    pub fn duplex_up(self, at: SimTime, forward: PipeId, reverse: PipeId) -> Self {
        self.link_up(at, forward).link_up(at, reverse)
    }

    /// Schedules an in-place re-parameterisation.
    pub fn set_pipe(self, at: SimTime, pipe: PipeId, attrs: PipeAttrs) -> Self {
        self.at(at, ScheduleEvent::SetPipe { pipe, attrs })
    }

    /// Schedules a node failure (all incident pipes fail).
    pub fn node_down(self, at: SimTime, node: NodeId) -> Self {
        self.at(at, ScheduleEvent::NodeDown { node })
    }

    /// Schedules a node recovery.
    pub fn node_up(self, at: SimTime, node: NodeId) -> Self {
        self.at(at, ScheduleEvent::NodeUp { node })
    }

    /// Schedules a CBR injector.
    pub fn cbr_start(self, at: SimTime, pipe: PipeId, config: CbrConfig) -> Self {
        self.at(at, ScheduleEvent::CbrStart { pipe, config })
    }

    /// Schedules a CBR injector removal.
    pub fn cbr_stop(self, at: SimTime, pipe: PipeId) -> Self {
        self.at(at, ScheduleEvent::CbrStop { pipe })
    }

    /// Schedules a fluid bulk-flow start.
    pub fn fluid_start(
        self,
        at: SimTime,
        tag: u64,
        src: VnId,
        dst: VnId,
        demand: DataRate,
        clients: u32,
    ) -> Self {
        self.at(
            at,
            ScheduleEvent::FluidStart {
                tag,
                src,
                dst,
                demand,
                clients,
            },
        )
    }

    /// Schedules a fluid flow resize.
    pub fn fluid_resize(self, at: SimTime, tag: u64, demand: DataRate, clients: u32) -> Self {
        self.at(
            at,
            ScheduleEvent::FluidResize {
                tag,
                demand,
                clients,
            },
        )
    }

    /// Schedules a fluid flow stop.
    pub fn fluid_stop(self, at: SimTime, tag: u64) -> Self {
        self.at(at, ScheduleEvent::FluidStop { tag })
    }

    /// Schedules a VN join at a client location.
    pub fn vn_join(self, at: SimTime, vn: VnId, location: NodeId) -> Self {
        self.at(at, ScheduleEvent::VnJoin { vn, location })
    }

    /// Schedules a VN departure.
    pub fn vn_leave(self, at: SimTime, vn: VnId) -> Self {
        self.at(at, ScheduleEvent::VnLeave { vn })
    }

    /// Folds concrete fault-injector output (see
    /// [`FaultInjector::perturb`](crate::FaultInjector::perturb)) into the
    /// schedule as in-place re-parameterisations.
    pub fn with_fault_events(mut self, events: &[FaultEvent]) -> Self {
        for e in events {
            self.push(
                e.at,
                ScheduleEvent::SetPipe {
                    pipe: e.pipe,
                    attrs: e.attrs,
                },
            );
        }
        self
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns `true` if nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The scheduled `(time, event)` stream, time-ordered.
    pub fn events(&self) -> &[(SimTime, ScheduleEvent)] {
        &self.events
    }

    /// The distinct event times, in order — the apply points a driver must
    /// visit.
    pub fn times(&self) -> Vec<SimTime> {
        let mut times: Vec<SimTime> = self.events.iter().map(|&(t, _)| t).collect();
        times.dedup();
        times
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_util::{ByteSize, DataRate, SimDuration};

    #[test]
    fn events_are_kept_time_ordered_and_stable() {
        let t = |secs| SimTime::from_secs(secs);
        let schedule = Schedule::new()
            .link_down(t(5), PipeId(1))
            .link_up(t(2), PipeId(1))
            .link_down(t(2), PipeId(3))
            .cbr_stop(t(5), PipeId(1));
        let times: Vec<SimTime> = schedule.events().iter().map(|&(t, _)| t).collect();
        assert_eq!(times, vec![t(2), t(2), t(5), t(5)]);
        // Stable at equal times: the t=2 LinkUp was inserted first.
        assert!(matches!(
            schedule.events()[0].1,
            ScheduleEvent::LinkUp { pipe: PipeId(1) }
        ));
        assert!(matches!(
            schedule.events()[1].1,
            ScheduleEvent::LinkDown { pipe: PipeId(3) }
        ));
        assert_eq!(schedule.times(), vec![t(2), t(5)]);
        assert_eq!(schedule.len(), 4);
    }

    #[test]
    fn fault_events_fold_into_the_schedule() {
        let attrs = PipeAttrs::new(DataRate::from_mbps(1), SimDuration::from_millis(1));
        let faults = vec![crate::FaultEvent {
            at: SimTime::from_secs(1),
            pipe: PipeId(7),
            attrs,
            reroute: false,
        }];
        let schedule = Schedule::new().with_fault_events(&faults);
        assert_eq!(schedule.len(), 1);
        assert!(matches!(
            schedule.events()[0].1,
            ScheduleEvent::SetPipe {
                pipe: PipeId(7),
                ..
            }
        ));
    }

    #[test]
    fn builder_shorthands_cover_every_event_kind() {
        let t = SimTime::from_secs(1);
        let cbr = CbrConfig::new(DataRate::from_mbps(1), ByteSize::from_bytes(500));
        let attrs = PipeAttrs::new(DataRate::from_mbps(2), SimDuration::from_millis(3));
        let schedule = Schedule::new()
            .duplex_down(t, PipeId(0), PipeId(1))
            .duplex_up(t, PipeId(0), PipeId(1))
            .set_pipe(t, PipeId(2), attrs)
            .node_down(t, NodeId(4))
            .node_up(t, NodeId(4))
            .cbr_start(t, PipeId(2), cbr)
            .cbr_stop(t, PipeId(2))
            .fluid_start(t, 7, VnId(0), VnId(1), DataRate::from_mbps(4), 100)
            .fluid_resize(t, 7, DataRate::from_mbps(2), 50)
            .fluid_stop(t, 7)
            .vn_join(t, VnId(9), NodeId(5))
            .vn_leave(t, VnId(9));
        assert_eq!(schedule.len(), 14);
        assert!(!schedule.is_empty());
        assert_eq!(schedule.times(), vec![t]);
    }
}
