//! Virtual-node identifiers and their emulated IP addresses.
//!
//! ModelNet assigns every VN an address in `10.0.0.0/8` so that an ipfw rule
//! can divert all VN-to-VN traffic into the emulation. The binding phase
//! hands out addresses; applications use the interposition library so their
//! sockets bind to the VN address rather than the physical host address.
//! In this reproduction the same structure exists: [`VnId`] is the dense
//! index used throughout the emulator, and [`VnAddr`] is its 10/8 dotted-quad
//! rendering, useful for logs and for compatibility with GML/VN binding
//! files.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a virtual node (an application instance with its own
/// emulated IP address and location in the target topology).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VnId(pub u32);

impl VnId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the emulated `10.0.0.0/8` address for this VN.
    ///
    /// Addresses are assigned sequentially, skipping `.0` and `.255` host
    /// octets the way the paper's binding scripts do (so each /24 in the
    /// block carries 254 VNs).
    pub fn addr(self) -> VnAddr {
        let per_subnet = 254u32;
        let subnet = self.0 / per_subnet;
        let host = self.0 % per_subnet + 1;
        VnAddr {
            octets: [
                10,
                ((subnet >> 8) & 0xFF) as u8,
                (subnet & 0xFF) as u8,
                host as u8,
            ],
        }
    }
}

impl fmt::Display for VnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "vn{}", self.0)
    }
}

/// An emulated IPv4 address in the `10.0.0.0/8` block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VnAddr {
    /// Dotted-quad octets.
    pub octets: [u8; 4],
}

impl VnAddr {
    /// Parses a dotted-quad string, returning `None` if it is malformed or
    /// outside the `10.0.0.0/8` block.
    pub fn parse(s: &str) -> Option<VnAddr> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for octet in &mut octets {
            *octet = parts.next()?.parse().ok()?;
        }
        if parts.next().is_some() || octets[0] != 10 {
            return None;
        }
        Some(VnAddr { octets })
    }

    /// Returns the [`VnId`] this address was assigned to, or `None` if the
    /// address does not follow the sequential assignment scheme.
    pub fn vn_id(self) -> Option<VnId> {
        let host = self.octets[3] as u32;
        if host == 0 || host == 255 {
            return None;
        }
        let subnet = ((self.octets[1] as u32) << 8) | self.octets[2] as u32;
        Some(VnId(subnet * 254 + host - 1))
    }

    /// Returns `true` if the address lies in the `10.0.0.0/8` VN block.
    pub fn is_vn_block(self) -> bool {
        self.octets[0] == 10
    }
}

impl fmt::Display for VnAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}.{}.{}.{}",
            self.octets[0], self.octets[1], self.octets[2], self.octets[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_addresses_skip_network_and_broadcast() {
        assert_eq!(VnId(0).addr().to_string(), "10.0.0.1");
        assert_eq!(VnId(1).addr().to_string(), "10.0.0.2");
        assert_eq!(VnId(253).addr().to_string(), "10.0.0.254");
        assert_eq!(VnId(254).addr().to_string(), "10.0.1.1");
        assert_eq!(VnId(10_000).addr().to_string(), "10.0.39.95");
    }

    #[test]
    fn addr_roundtrips_to_vn_id() {
        for raw in [0u32, 1, 253, 254, 255, 1000, 10_000, 65_535] {
            let id = VnId(raw);
            assert_eq!(id.addr().vn_id(), Some(id), "roundtrip failed for {raw}");
        }
    }

    #[test]
    fn parse_accepts_only_ten_slash_eight() {
        assert_eq!(
            VnAddr::parse("10.1.2.3"),
            Some(VnAddr {
                octets: [10, 1, 2, 3]
            })
        );
        assert_eq!(VnAddr::parse("192.168.0.1"), None);
        assert_eq!(VnAddr::parse("10.0.0"), None);
        assert_eq!(VnAddr::parse("10.0.0.1.2"), None);
        assert_eq!(VnAddr::parse("10.0.0.x"), None);
    }

    #[test]
    fn special_host_octets_have_no_vn() {
        assert_eq!(
            VnAddr {
                octets: [10, 0, 0, 0]
            }
            .vn_id(),
            None
        );
        assert_eq!(
            VnAddr {
                octets: [10, 0, 0, 255]
            }
            .vn_id(),
            None
        );
    }

    #[test]
    fn block_membership() {
        assert!(VnId(7).addr().is_vn_block());
        assert!(!VnAddr {
            octets: [11, 0, 0, 1]
        }
        .is_vn_block());
    }

    #[test]
    fn display_formats() {
        assert_eq!(VnId(3).to_string(), "vn3");
        assert_eq!(VnId(3).addr().to_string(), "10.0.0.4");
    }
}
