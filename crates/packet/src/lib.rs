//! Packet, flow and virtual-node addressing types.
//!
//! In ModelNet every virtual node (VN) binds to an address in the
//! `10.0.0.0/8` block; an ipfw rule on the core intercepts packets destined
//! to that block and hands them to the emulation. The core never copies or
//! even inspects packet payloads: it moves a small *descriptor* referencing
//! the buffered packet through the pipe network. This crate defines the
//! Rust equivalents:
//!
//! * [`VnId`] / [`VnAddr`] — virtual node identifiers and their 10/8 address
//!   mapping,
//! * [`FlowKey`] and [`Protocol`] — the 5-tuple used for route lookup and by
//!   the transport state machines,
//! * [`Packet`] — the descriptor the emulation moves around: headers and
//!   sizes only, never payload bytes (payload objects are retained at the
//!   sending socket and claimed on in-order delivery, see `mn-edge`).

pub mod addr;
pub mod packet;

pub use addr::{VnAddr, VnId};
pub use packet::{FlowKey, Packet, PacketId, Protocol, TcpFlags, TransportHeader};
pub use packet::{IP_TCP_HEADER_BYTES, IP_UDP_HEADER_BYTES, MSS_BYTES, MTU_BYTES};
