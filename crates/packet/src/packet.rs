//! Packet descriptors and flow identification.
//!
//! A [`Packet`] is what moves through the emulation: source and destination
//! VN, ports, a transport header (enough for the TCP/UDP state machines to
//! operate) and the wire size used by every bandwidth computation. Payload
//! bytes are never carried — exactly like ModelNet, which leaves packet
//! contents buffered at the entry point and forwards descriptors by
//! reference through the pipe network.

use std::fmt;

use serde::{Deserialize, Serialize};

use mn_util::{ByteSize, SimTime};

use crate::addr::VnId;

/// Ethernet-style maximum transmission unit used by the edge stacks.
pub const MTU_BYTES: u32 = 1500;
/// Combined IPv4 + TCP header size (no options).
pub const IP_TCP_HEADER_BYTES: u32 = 40;
/// Combined IPv4 + UDP header size.
pub const IP_UDP_HEADER_BYTES: u32 = 28;
/// Maximum TCP segment payload given [`MTU_BYTES`] and [`IP_TCP_HEADER_BYTES`].
pub const MSS_BYTES: u32 = MTU_BYTES - IP_TCP_HEADER_BYTES;

/// Globally unique packet identifier (assigned by the sending stack).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PacketId(pub u64);

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pkt{}", self.0)
    }
}

/// Transport protocol of a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Protocol {
    /// Reliable, congestion-controlled byte stream.
    Tcp,
    /// Unreliable datagrams.
    Udp,
}

/// The 5-tuple identifying a flow. Route lookup in the core is by
/// (source VN, destination VN); the full tuple is used by the edge stacks to
/// demultiplex to sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowKey {
    /// Sending VN.
    pub src: VnId,
    /// Receiving VN.
    pub dst: VnId,
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Transport protocol.
    pub protocol: Protocol,
}

impl FlowKey {
    /// The key of the reverse direction of this flow (ACK path).
    pub fn reverse(self) -> FlowKey {
        FlowKey {
            src: self.dst,
            dst: self.src,
            src_port: self.dst_port,
            dst_port: self.src_port,
            protocol: self.protocol,
        }
    }
}

impl fmt::Display for FlowKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} {}:{} -> {}:{}",
            self.protocol, self.src, self.src_port, self.dst, self.dst_port
        )
    }
}

/// TCP header flags relevant to the emulated state machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TcpFlags {
    /// Connection-establishment flag.
    pub syn: bool,
    /// Connection-teardown flag.
    pub fin: bool,
    /// Acknowledgement number is valid.
    pub ack: bool,
}

impl TcpFlags {
    /// A pure data or pure ACK segment (no SYN/FIN).
    pub const ACK: TcpFlags = TcpFlags {
        syn: false,
        fin: false,
        ack: true,
    };
    /// A SYN segment.
    pub const SYN: TcpFlags = TcpFlags {
        syn: true,
        fin: false,
        ack: false,
    };
    /// A SYN+ACK segment.
    pub const SYN_ACK: TcpFlags = TcpFlags {
        syn: true,
        fin: false,
        ack: true,
    };
    /// A FIN+ACK segment.
    pub const FIN_ACK: TcpFlags = TcpFlags {
        syn: false,
        fin: true,
        ack: true,
    };
}

/// Transport-layer header carried by a packet descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TransportHeader {
    /// A TCP segment.
    Tcp {
        /// Sequence number of the first payload byte.
        seq: u64,
        /// Cumulative acknowledgement number (valid when `flags.ack`).
        ack: u64,
        /// Payload bytes carried.
        payload_len: u32,
        /// Header flags.
        flags: TcpFlags,
        /// Advertised receive window in bytes.
        window: u32,
    },
    /// A UDP datagram.
    Udp {
        /// Payload bytes carried.
        payload_len: u32,
        /// Datagram sequence number (for loss accounting by receivers).
        seq: u64,
    },
}

impl TransportHeader {
    /// Payload bytes carried by this header.
    pub fn payload_len(&self) -> u32 {
        match self {
            TransportHeader::Tcp { payload_len, .. } => *payload_len,
            TransportHeader::Udp { payload_len, .. } => *payload_len,
        }
    }

    /// Total wire size of a packet with this header (headers + payload).
    pub fn wire_size(&self) -> ByteSize {
        let header = match self {
            TransportHeader::Tcp { .. } => IP_TCP_HEADER_BYTES,
            TransportHeader::Udp { .. } => IP_UDP_HEADER_BYTES,
        };
        ByteSize::from_bytes((header + self.payload_len()) as u64)
    }
}

/// A packet descriptor moving through the emulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Unique identifier.
    pub id: PacketId,
    /// Flow 5-tuple.
    pub flow: FlowKey,
    /// Transport header.
    pub header: TransportHeader,
    /// Total wire size (headers + payload).
    pub size: ByteSize,
    /// Virtual time at which the sending stack emitted the packet; used by
    /// the accuracy log to compute expected vs. actual delivery times.
    pub sent_at: SimTime,
}

impl Packet {
    /// Builds a packet descriptor, deriving the wire size from the header.
    pub fn new(id: PacketId, flow: FlowKey, header: TransportHeader, sent_at: SimTime) -> Self {
        Packet {
            id,
            flow,
            header,
            size: header.wire_size(),
            sent_at,
        }
    }

    /// Source VN.
    pub fn src(&self) -> VnId {
        self.flow.src
    }

    /// Destination VN.
    pub fn dst(&self) -> VnId {
        self.flow.dst
    }

    /// Returns `true` if this packet carries no payload (e.g. a pure ACK).
    pub fn is_control(&self) -> bool {
        self.header.payload_len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flow() -> FlowKey {
        FlowKey {
            src: VnId(1),
            dst: VnId(2),
            src_port: 4000,
            dst_port: 80,
            protocol: Protocol::Tcp,
        }
    }

    #[test]
    fn mss_matches_ethernet_mtu() {
        assert_eq!(MSS_BYTES, 1460);
        assert_eq!(MTU_BYTES, 1500);
    }

    #[test]
    fn flow_reverse_swaps_endpoints() {
        let f = flow();
        let r = f.reverse();
        assert_eq!(r.src, VnId(2));
        assert_eq!(r.dst, VnId(1));
        assert_eq!(r.src_port, 80);
        assert_eq!(r.dst_port, 4000);
        assert_eq!(r.reverse(), f);
    }

    #[test]
    fn tcp_wire_size_includes_headers() {
        let h = TransportHeader::Tcp {
            seq: 0,
            ack: 0,
            payload_len: 1460,
            flags: TcpFlags::ACK,
            window: 65535,
        };
        assert_eq!(h.wire_size().as_bytes(), 1500);
        assert_eq!(h.payload_len(), 1460);
        let ack = TransportHeader::Tcp {
            seq: 0,
            ack: 1460,
            payload_len: 0,
            flags: TcpFlags::ACK,
            window: 65535,
        };
        assert_eq!(ack.wire_size().as_bytes(), 40);
    }

    #[test]
    fn udp_wire_size_includes_headers() {
        let h = TransportHeader::Udp {
            payload_len: 1472,
            seq: 0,
        };
        assert_eq!(h.wire_size().as_bytes(), 1500);
    }

    #[test]
    fn packet_constructor_derives_size() {
        let p = Packet::new(
            PacketId(1),
            flow(),
            TransportHeader::Tcp {
                seq: 100,
                ack: 0,
                payload_len: 500,
                flags: TcpFlags::ACK,
                window: 65535,
            },
            SimTime::from_millis(3),
        );
        assert_eq!(p.size.as_bytes(), 540);
        assert_eq!(p.src(), VnId(1));
        assert_eq!(p.dst(), VnId(2));
        assert!(!p.is_control());
        assert_eq!(p.sent_at, SimTime::from_millis(3));
    }

    #[test]
    fn pure_ack_is_control() {
        let p = Packet::new(
            PacketId(2),
            flow().reverse(),
            TransportHeader::Tcp {
                seq: 0,
                ack: 1460,
                payload_len: 0,
                flags: TcpFlags::ACK,
                window: 65535,
            },
            SimTime::ZERO,
        );
        assert!(p.is_control());
    }

    #[test]
    fn tcp_flag_constants() {
        let (syn, syn_ack, fin_ack, ack) = (
            TcpFlags::SYN,
            TcpFlags::SYN_ACK,
            TcpFlags::FIN_ACK,
            TcpFlags::ACK,
        );
        assert!(syn.syn && !syn.ack);
        assert!(syn_ack.syn && syn_ack.ack);
        assert!(fin_ack.fin && fin_ack.ack);
        assert!(ack.ack && !ack.syn && !ack.fin);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PacketId(9).to_string(), "pkt9");
        let s = flow().to_string();
        assert!(s.contains("vn1") && s.contains("vn2") && s.contains("80"));
    }
}
