//! An independent flow-level reference simulator.
//!
//! The paper validates ModelNet against ns-2: the ring-distillation
//! experiment (Figure 5) and the ACDC case study (Figure 12) plot ns-2 runs
//! next to the emulation. ns-2 is not available in this reproduction, so this
//! crate plays its role: a deliberately *different* abstraction level —
//! steady-state flow rates from progressive-filling max-min fair share plus
//! propagation-delay queries over the target graph — implemented with no code
//! shared with the emulation path. Agreement between the two therefore
//! carries the same kind of evidence the paper's ns-2 comparison does.
//!
//! The model intentionally ignores TCP dynamics (slow start, RTT bias,
//! timeouts); for long-lived flows over moderate drop rates, max-min fair
//! share is the standard first-order prediction of what TCP converges to.

use serde::{Deserialize, Serialize};

use mn_topology::paths::{shortest_path, PathMetric};
use mn_topology::{LinkId, NodeId, Topology};
use mn_util::{DataRate, SimDuration, SimTime};

/// One long-lived flow between two nodes of the target topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FlowSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
}

/// The computed allocation for one flow.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowAllocation {
    /// The flow this allocation is for.
    pub flow: FlowSpec,
    /// Steady-state max-min fair rate.
    pub rate: DataRate,
    /// One-way propagation delay along the flow's route.
    pub latency: SimDuration,
    /// Number of links on the route.
    pub hops: usize,
}

/// Computes max-min fair-share allocations for a set of flows routed along
/// latency-shortest paths, by progressive filling.
///
/// Unroutable flows (disconnected endpoints) receive a zero rate and zero
/// latency.
pub fn max_min_fair_share(topo: &Topology, flows: &[FlowSpec]) -> Vec<FlowAllocation> {
    // Route every flow.
    let routes: Vec<Option<Vec<LinkId>>> = flows
        .iter()
        .map(|f| shortest_path(topo, f.src, f.dst, PathMetric::Latency).map(|p| p.links))
        .collect();

    let link_count = topo.link_count();
    let mut capacity: Vec<f64> = (0..link_count)
        .map(|l| {
            topo.link(LinkId(l))
                .expect("link exists")
                .attrs
                .bandwidth
                .as_bps() as f64
        })
        .collect();
    // Which unfrozen flows cross each link.
    let mut crossing: Vec<Vec<usize>> = vec![Vec::new(); link_count];
    for (fi, route) in routes.iter().enumerate() {
        if let Some(links) = route {
            for l in links {
                crossing[l.index()].push(fi);
            }
        }
    }

    let mut rate = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    // Flows with no route (or a zero-hop route) are frozen at zero/infinity.
    for (fi, route) in routes.iter().enumerate() {
        match route {
            None => frozen[fi] = true,
            Some(links) if links.is_empty() => {
                frozen[fi] = true;
                rate[fi] = f64::MAX;
            }
            _ => {}
        }
    }

    loop {
        // Find the bottleneck link: the smallest fair share among links that
        // still carry unfrozen flows.
        let mut best: Option<(f64, usize)> = None;
        for (li, flows_here) in crossing.iter().enumerate() {
            let active = flows_here.iter().filter(|&&f| !frozen[f]).count();
            if active == 0 {
                continue;
            }
            let share = capacity[li] / active as f64;
            if best.is_none_or(|(s, _)| share < s) {
                best = Some((share, li));
            }
        }
        let Some((share, bottleneck)) = best else {
            break;
        };
        // Freeze every unfrozen flow crossing the bottleneck at that share
        // and subtract their usage everywhere.
        let to_freeze: Vec<usize> = crossing[bottleneck]
            .iter()
            .copied()
            .filter(|&f| !frozen[f])
            .collect();
        for fi in to_freeze {
            frozen[fi] = true;
            rate[fi] = share;
            if let Some(links) = &routes[fi] {
                for l in links {
                    capacity[l.index()] = (capacity[l.index()] - share).max(0.0);
                }
            }
        }
    }

    flows
        .iter()
        .enumerate()
        .map(|(fi, &flow)| {
            let (latency, hops) = match &routes[fi] {
                Some(links) => {
                    let lat: SimDuration = links
                        .iter()
                        .map(|&l| topo.link(l).expect("link exists").attrs.latency)
                        .sum();
                    (lat, links.len())
                }
                None => (SimDuration::ZERO, 0),
            };
            FlowAllocation {
                flow,
                rate: if rate[fi] == f64::MAX {
                    DataRate::from_gbps(1_000)
                } else {
                    DataRate::from_bps(rate[fi] as u64)
                },
                latency,
                hops,
            }
        })
        .collect()
}

/// One fluid (flow-level) demand between two nodes: an aggregate offered
/// rate standing in for `weight` modelled clients. The reference oracle for
/// the emulation's hybrid fluid/packet fast path.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FluidSpec {
    /// Source node.
    pub src: NodeId,
    /// Destination node.
    pub dst: NodeId,
    /// Aggregate offered rate (the demand bound).
    pub demand: DataRate,
    /// Max-min weight: how many clients the aggregate stands in for.
    pub weight: u32,
}

/// Computes the **weighted, demand-bounded** max-min fair share for a set of
/// fluid demands routed along latency-shortest paths, by progressive
/// filling in floating point — deliberately a different arithmetic (and a
/// different implementation) from the emulation's integer water-fill, so
/// agreement between the two carries evidence.
///
/// The fill level rises uniformly; each flow's rate grows at `weight ×`
/// the level until its demand is met or a link it crosses saturates.
/// Unroutable flows get zero; zero-hop (same-node) flows get their demand.
pub fn fluid_max_min(topo: &Topology, flows: &[FluidSpec]) -> Vec<FlowAllocation> {
    let routes: Vec<Option<Vec<LinkId>>> = flows
        .iter()
        .map(|f| shortest_path(topo, f.src, f.dst, PathMetric::Latency).map(|p| p.links))
        .collect();

    let link_count = topo.link_count();
    let mut remaining: Vec<f64> = (0..link_count)
        .map(|l| {
            topo.link(LinkId(l))
                .expect("link exists")
                .attrs
                .bandwidth
                .as_bps() as f64
        })
        .collect();

    let mut rate = vec![0.0f64; flows.len()];
    let mut frozen = vec![false; flows.len()];
    for (fi, route) in routes.iter().enumerate() {
        match route {
            None => frozen[fi] = true,
            Some(links) if links.is_empty() => {
                frozen[fi] = true;
                rate[fi] = flows[fi].demand.as_bps() as f64;
            }
            _ => {}
        }
    }

    loop {
        // Per-link weight sums over the unfrozen flows crossing them.
        let mut wsum = vec![0.0f64; link_count];
        let mut any = false;
        for (fi, route) in routes.iter().enumerate() {
            if frozen[fi] {
                continue;
            }
            any = true;
            for l in route.as_ref().expect("unfrozen flows are routed") {
                wsum[l.index()] += flows[fi].weight as f64;
            }
        }
        if !any {
            break;
        }
        // The uniform fill increment: bounded by every crossed link's
        // residual share and every flow's remaining demand headroom.
        let mut inc = f64::INFINITY;
        for (fi, route) in routes.iter().enumerate() {
            if frozen[fi] {
                continue;
            }
            let w = flows[fi].weight as f64;
            for l in route.as_ref().expect("unfrozen flows are routed") {
                inc = inc.min(remaining[l.index()] / wsum[l.index()]);
            }
            inc = inc.min((flows[fi].demand.as_bps() as f64 - rate[fi]) / w);
        }
        // Grant it, then freeze demand-met flows and flows on saturated
        // links; every round freezes at least one flow.
        for (fi, route) in routes.iter().enumerate() {
            if frozen[fi] {
                continue;
            }
            let w = flows[fi].weight as f64;
            rate[fi] += inc * w;
            for l in route.as_ref().expect("unfrozen flows are routed") {
                remaining[l.index()] = (remaining[l.index()] - inc * w).max(0.0);
            }
            if rate[fi] >= flows[fi].demand.as_bps() as f64 - 1e-6 {
                frozen[fi] = true;
            }
        }
        for (fi, route) in routes.iter().enumerate() {
            if frozen[fi] {
                continue;
            }
            if route
                .as_ref()
                .expect("unfrozen flows are routed")
                .iter()
                .any(|l| remaining[l.index()] < 1e-6 * wsum[l.index()].max(1.0))
            {
                frozen[fi] = true;
            }
        }
    }

    flows
        .iter()
        .enumerate()
        .map(|(fi, &flow)| {
            let (latency, hops) = match &routes[fi] {
                Some(links) => {
                    let lat: SimDuration = links
                        .iter()
                        .map(|&l| topo.link(l).expect("link exists").attrs.latency)
                        .sum();
                    (lat, links.len())
                }
                None => (SimDuration::ZERO, 0),
            };
            FlowAllocation {
                flow: FlowSpec {
                    src: flow.src,
                    dst: flow.dst,
                },
                rate: DataRate::from_bps(rate[fi].round() as u64),
                latency,
                hops,
            }
        })
        .collect()
}

/// Convenience: the latency-shortest one-way delay between two nodes, or
/// `None` if unreachable. The ACDC comparison uses this as its latency
/// oracle.
pub fn path_latency(topo: &Topology, src: NodeId, dst: NodeId) -> Option<SimDuration> {
    mn_topology::paths::shortest_path_latency(topo, src, dst)
}

/// A timed change to one link of a dynamic reference scenario.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkChange {
    /// The link fails (zero bandwidth: no path may use it).
    Down,
    /// The link returns to its original attributes.
    Up,
    /// The link is re-parameterised (e.g. its capacity reduced by a CBR
    /// cross-traffic rate).
    Set(mn_topology::LinkAttrs),
}

/// A timed endpoint-membership change: the reference-side mirror of the
/// emulation's first-class VN join/leave churn events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberChange {
    /// The endpoint departs: flows touching it are refused from this
    /// instant (they receive zero allocations, exactly as the emulation
    /// returns `NoRoute` for traffic touching a departed VN).
    Leave,
    /// The endpoint (re)joins and is routable again.
    Join,
}

/// The reference simulator's view of a dynamic network: a base topology
/// plus a virtual-time-ordered stream of link changes — the same failures,
/// recoveries and renegotiations an emulation-side
/// `mn_dynamics::Schedule` applies, expressed over target links — and of
/// endpoint-membership churn.
///
/// The flow-level model is memoryless, so honoring a schedule means
/// evaluating each query against the topology *as of* the query time:
/// [`ScheduledTopology::topology_at`] materialises that snapshot, and the
/// existing oracles ([`max_min_fair_share`], [`path_latency`]) run over it
/// unchanged. Failed links are excluded from shortest paths entirely;
/// flows touching a departed endpoint are excluded from contention
/// entirely (see [`ScheduledTopology::allocations_at`]).
#[derive(Debug, Clone)]
pub struct ScheduledTopology {
    base: Topology,
    /// `(time, link, change)`, kept time-ordered (stable for equal times).
    changes: Vec<(SimTime, LinkId, LinkChange)>,
    /// `(time, node, change)`, kept time-ordered (stable for equal times).
    members: Vec<(SimTime, NodeId, MemberChange)>,
}

impl ScheduledTopology {
    /// Wraps a base topology with no changes scheduled.
    pub fn new(base: Topology) -> Self {
        ScheduledTopology {
            base,
            changes: Vec::new(),
            members: Vec::new(),
        }
    }

    /// The unmodified base topology.
    pub fn base(&self) -> &Topology {
        &self.base
    }

    /// Adds a change at `at`, keeping the stream time-ordered (insertion
    /// order breaks ties, mirroring the emulation-side schedule).
    pub fn push(&mut self, at: SimTime, link: LinkId, change: LinkChange) {
        let idx = self.changes.partition_point(|&(t, _, _)| t <= at);
        self.changes.insert(idx, (at, link, change));
    }

    /// Schedules a link failure.
    pub fn link_down(mut self, at: SimTime, link: LinkId) -> Self {
        self.push(at, link, LinkChange::Down);
        self
    }

    /// Schedules a link recovery.
    pub fn link_up(mut self, at: SimTime, link: LinkId) -> Self {
        self.push(at, link, LinkChange::Up);
        self
    }

    /// Schedules a link re-parameterisation.
    pub fn set_link(mut self, at: SimTime, link: LinkId, attrs: mn_topology::LinkAttrs) -> Self {
        self.push(at, link, LinkChange::Set(attrs));
        self
    }

    /// Adds a membership change at `at`, keeping the stream time-ordered
    /// (insertion order breaks ties, mirroring the emulation schedule).
    pub fn push_member(&mut self, at: SimTime, node: NodeId, change: MemberChange) {
        let idx = self.members.partition_point(|&(t, _, _)| t <= at);
        self.members.insert(idx, (at, node, change));
    }

    /// Schedules an endpoint departure.
    pub fn node_leave(mut self, at: SimTime, node: NodeId) -> Self {
        self.push_member(at, node, MemberChange::Leave);
        self
    }

    /// Schedules an endpoint (re)join.
    pub fn node_join(mut self, at: SimTime, node: NodeId) -> Self {
        self.push_member(at, node, MemberChange::Join);
        self
    }

    /// Whether `node` is an active member as of virtual time `t`. Every
    /// node starts as a member; the last change at or before `t` wins.
    pub fn is_member_at(&self, t: SimTime, node: NodeId) -> bool {
        let mut member = true;
        for &(at, n, change) in &self.members {
            if at > t {
                break;
            }
            if n == node {
                member = matches!(change, MemberChange::Join);
            }
        }
        member
    }

    /// Max-min fair allocations as of virtual time `t`, churn-aware: flows
    /// touching a departed endpoint receive zero rate, latency and hops
    /// (the emulation refuses their traffic), and — crucially — consume no
    /// capacity, so surviving flows absorb the freed share.
    pub fn allocations_at(&self, t: SimTime, flows: &[FlowSpec]) -> Vec<FlowAllocation> {
        let topo = self.topology_at(t);
        let live: Vec<usize> = (0..flows.len())
            .filter(|&fi| {
                self.is_member_at(t, flows[fi].src) && self.is_member_at(t, flows[fi].dst)
            })
            .collect();
        let live_flows: Vec<FlowSpec> = live.iter().map(|&fi| flows[fi]).collect();
        let live_alloc = max_min_fair_share(&topo, &live_flows);
        let mut out: Vec<FlowAllocation> = flows
            .iter()
            .map(|&flow| FlowAllocation {
                flow,
                rate: DataRate::ZERO,
                latency: SimDuration::ZERO,
                hops: 0,
            })
            .collect();
        for (slot, alloc) in live.into_iter().zip(live_alloc) {
            out[slot] = alloc;
        }
        out
    }

    /// The network as of virtual time `t`: the base topology with every
    /// change at or before `t` folded in, in schedule order.
    pub fn topology_at(&self, t: SimTime) -> Topology {
        let mut topo = self.base.clone();
        for &(at, link, change) in &self.changes {
            if at > t {
                break;
            }
            let attrs = match change {
                LinkChange::Down => {
                    let mut failed = self.base.link(link).expect("scheduled link exists").attrs;
                    failed.bandwidth = DataRate::ZERO;
                    failed
                }
                LinkChange::Up => self.base.link(link).expect("scheduled link exists").attrs,
                LinkChange::Set(attrs) => attrs,
            };
            *topo.link_attrs_mut(link).expect("scheduled link exists") = attrs;
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_topology::generators::{dumbbell_topology, ring_topology, DumbbellParams, RingParams};
    use mn_topology::{LinkAttrs, NodeKind};

    #[test]
    fn single_flow_gets_the_bottleneck() {
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let r = topo.add_node(NodeKind::Stub);
        let b = topo.add_node(NodeKind::Client);
        topo.add_link(
            a,
            r,
            LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(2)),
        )
        .unwrap();
        topo.add_link(
            r,
            b,
            LinkAttrs::new(DataRate::from_mbps(2), SimDuration::from_millis(3)),
        )
        .unwrap();
        let alloc = max_min_fair_share(&topo, &[FlowSpec { src: a, dst: b }]);
        assert_eq!(alloc[0].rate, DataRate::from_mbps(2));
        assert_eq!(alloc[0].latency, SimDuration::from_millis(5));
        assert_eq!(alloc[0].hops, 2);
    }

    #[test]
    fn dumbbell_flows_share_equally() {
        let (topo, left, right) = dumbbell_topology(&DumbbellParams {
            clients_per_side: 5,
            ..DumbbellParams::default()
        });
        let flows: Vec<FlowSpec> = (0..5)
            .map(|i| FlowSpec {
                src: left[i],
                dst: right[i],
            })
            .collect();
        let alloc = max_min_fair_share(&topo, &flows);
        for a in &alloc {
            assert_eq!(a.rate, DataRate::from_mbps(2), "10 Mb/s shared by 5 flows");
        }
    }

    #[test]
    fn unequal_demands_get_max_min_not_equal_split() {
        // Two flows share link L1 (10 Mb/s); one of them also crosses a
        // 2 Mb/s access link and is limited there, so the other should get
        // the remaining 8 Mb/s.
        let mut topo = Topology::new();
        let s1 = topo.add_node(NodeKind::Client);
        let s2 = topo.add_node(NodeKind::Client);
        let m = topo.add_node(NodeKind::Stub);
        let d1 = topo.add_node(NodeKind::Client);
        let d2 = topo.add_node(NodeKind::Client);
        let fast = |mbps| LinkAttrs::new(DataRate::from_mbps(mbps), SimDuration::from_millis(1));
        topo.add_link(s1, m, fast(100)).unwrap();
        topo.add_link(s2, m, fast(100)).unwrap();
        let shared = topo.add_link(m, d1, fast(10)).unwrap();
        topo.add_link(d1, d2, fast(2)).unwrap();
        let _ = shared;
        let flows = vec![FlowSpec { src: s1, dst: d1 }, FlowSpec { src: s2, dst: d2 }];
        let alloc = max_min_fair_share(&topo, &flows);
        assert_eq!(alloc[1].rate, DataRate::from_mbps(2));
        assert_eq!(alloc[0].rate, DataRate::from_mbps(8));
    }

    #[test]
    fn ring_transit_contention_limits_cross_ring_flows() {
        // The paper's ring: 20 Mb/s transit links, 2 Mb/s access links. With
        // ten flows crossing the same transit link, each gets 2 Mb/s from the
        // access link; with forty, the transit link becomes the bottleneck.
        let topo = ring_topology(&RingParams {
            routers: 2,
            clients_per_router: 40,
            ..RingParams::default()
        });
        let clients: Vec<NodeId> = topo.client_nodes().collect();
        // First 40 clients attach to router 0, the rest to router 1.
        let flows: Vec<FlowSpec> = (0..40)
            .map(|i| FlowSpec {
                src: clients[i],
                dst: clients[40 + i],
            })
            .collect();
        let alloc = max_min_fair_share(&topo, &flows);
        let per_flow = alloc[0].rate;
        // 20 Mb/s shared by 40 flows = 0.5 Mb/s each.
        assert_eq!(per_flow, DataRate::from_kbps(500));
        assert!(alloc.iter().all(|a| a.rate == per_flow));
    }

    #[test]
    fn unroutable_flows_get_zero() {
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let b = topo.add_node(NodeKind::Client);
        let alloc = max_min_fair_share(&topo, &[FlowSpec { src: a, dst: b }]);
        assert_eq!(alloc[0].rate, DataRate::ZERO);
        assert_eq!(alloc[0].hops, 0);
    }

    #[test]
    fn scheduled_topology_replays_failures_and_recoveries() {
        // a - r - b (fast) plus a - b direct (slow): failing the a-r link
        // moves the reference route to the direct link, restoring moves it
        // back; between the events the snapshots are stable.
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let r = topo.add_node(NodeKind::Stub);
        let b = topo.add_node(NodeKind::Client);
        let fast = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
        let ar = topo.add_link(a, r, fast).unwrap();
        topo.add_link(r, b, fast).unwrap();
        topo.add_link(
            a,
            b,
            LinkAttrs::new(DataRate::from_mbps(2), SimDuration::from_millis(20)),
        )
        .unwrap();
        let t = SimTime::from_secs;
        let scenario = ScheduledTopology::new(topo)
            .link_down(t(2), ar)
            .link_up(t(4), ar);
        let flow = [FlowSpec { src: a, dst: b }];
        // Before the failure: 2 ms via the router at 10 Mb/s.
        let before = max_min_fair_share(&scenario.topology_at(t(1)), &flow);
        assert_eq!(before[0].latency, SimDuration::from_millis(2));
        assert_eq!(before[0].rate, DataRate::from_mbps(10));
        assert_eq!(before[0].hops, 2);
        // While down: the direct 20 ms / 2 Mb/s link, and the failed link
        // is excluded from shortest paths entirely.
        let during = max_min_fair_share(&scenario.topology_at(t(3)), &flow);
        assert_eq!(during[0].latency, SimDuration::from_millis(20));
        assert_eq!(during[0].rate, DataRate::from_mbps(2));
        assert_eq!(during[0].hops, 1);
        // After the recovery: back to the fast path.
        let after = max_min_fair_share(&scenario.topology_at(t(5)), &flow);
        assert_eq!(after[0].latency, SimDuration::from_millis(2));
        // Snapshots at the event instants include the event (<= semantics).
        assert_eq!(
            max_min_fair_share(&scenario.topology_at(t(2)), &flow)[0].hops,
            1
        );
        assert_eq!(scenario.base().link(ar).unwrap().attrs, fast);
    }

    #[test]
    fn scheduled_topology_set_link_models_cbr_compensation() {
        // Reducing a link's capacity by a CBR rate is how the reference
        // honors a cross-traffic episode.
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let b = topo.add_node(NodeKind::Client);
        let base = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(5));
        let ab = topo.add_link(a, b, base).unwrap();
        let reduced = LinkAttrs::new(DataRate::from_mbps(6), SimDuration::from_millis(5));
        let scenario = ScheduledTopology::new(topo)
            .set_link(SimTime::from_secs(1), ab, reduced)
            .link_up(SimTime::from_secs(2), ab);
        let flow = [FlowSpec { src: a, dst: b }];
        let loaded = max_min_fair_share(&scenario.topology_at(SimTime::from_secs(1)), &flow);
        assert_eq!(loaded[0].rate, DataRate::from_mbps(6));
        let clean = max_min_fair_share(&scenario.topology_at(SimTime::from_secs(3)), &flow);
        assert_eq!(clean[0].rate, DataRate::from_mbps(10));
    }

    #[test]
    fn failed_links_are_unusable_in_the_reference_model() {
        // A topology whose only path fails: the flow becomes unroutable
        // rather than crossing a zero-capacity link.
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let b = topo.add_node(NodeKind::Client);
        let ab = topo
            .add_link(
                a,
                b,
                LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1)),
            )
            .unwrap();
        let scenario = ScheduledTopology::new(topo).link_down(SimTime::from_secs(1), ab);
        let snapshot = scenario.topology_at(SimTime::from_secs(2));
        assert_eq!(path_latency(&snapshot, a, b), None);
        let alloc = max_min_fair_share(&snapshot, &[FlowSpec { src: a, dst: b }]);
        assert_eq!(alloc[0].rate, DataRate::ZERO);
        assert_eq!(alloc[0].hops, 0);
    }

    #[test]
    fn membership_churn_frees_capacity_and_restores_on_rejoin() {
        // Two client pairs share a 10 Mb/s bottleneck through a router.
        // One endpoint departs at t=2 and rejoins at t=4: while away its
        // flow gets zero and the survivor absorbs the whole bottleneck.
        let mut topo = Topology::new();
        let s1 = topo.add_node(NodeKind::Client);
        let s2 = topo.add_node(NodeKind::Client);
        let m = topo.add_node(NodeKind::Stub);
        let d = topo.add_node(NodeKind::Client);
        let fast = |mbps| LinkAttrs::new(DataRate::from_mbps(mbps), SimDuration::from_millis(1));
        topo.add_link(s1, m, fast(100)).unwrap();
        topo.add_link(s2, m, fast(100)).unwrap();
        topo.add_link(m, d, fast(10)).unwrap();
        let t = SimTime::from_secs;
        let scenario = ScheduledTopology::new(topo)
            .node_leave(t(2), s2)
            .node_join(t(4), s2);
        let flows = [FlowSpec { src: s1, dst: d }, FlowSpec { src: s2, dst: d }];
        // Before: the bottleneck splits evenly.
        let before = scenario.allocations_at(t(1), &flows);
        assert_eq!(before[0].rate, DataRate::from_mbps(5));
        assert_eq!(before[1].rate, DataRate::from_mbps(5));
        // While away: zero for the departed pair, everything for the rest.
        assert!(!scenario.is_member_at(t(3), s2));
        let during = scenario.allocations_at(t(3), &flows);
        assert_eq!(during[0].rate, DataRate::from_mbps(10));
        assert_eq!(during[1].rate, DataRate::ZERO);
        assert_eq!(during[1].hops, 0);
        // After the rejoin: the even split returns.
        assert!(scenario.is_member_at(t(5), s2));
        let after = scenario.allocations_at(t(5), &flows);
        assert_eq!(after, before);
        // Membership changes take effect at their instant (<= semantics).
        assert!(!scenario.is_member_at(t(2), s2));
    }

    #[test]
    fn membership_and_link_churn_compose_in_one_scenario() {
        // The departed endpoint's flow stays zero even while an unrelated
        // link failure reroutes the survivor.
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let r = topo.add_node(NodeKind::Stub);
        let b = topo.add_node(NodeKind::Client);
        let c = topo.add_node(NodeKind::Client);
        let fast = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
        let ar = topo.add_link(a, r, fast).unwrap();
        topo.add_link(r, b, fast).unwrap();
        topo.add_link(
            a,
            b,
            LinkAttrs::new(DataRate::from_mbps(2), SimDuration::from_millis(20)),
        )
        .unwrap();
        topo.add_link(c, r, fast).unwrap();
        let t = SimTime::from_secs;
        let scenario = ScheduledTopology::new(topo)
            .node_leave(t(1), c)
            .link_down(t(2), ar);
        let flows = [FlowSpec { src: a, dst: b }, FlowSpec { src: c, dst: b }];
        let alloc = scenario.allocations_at(t(3), &flows);
        // The survivor detours over the slow direct link...
        assert_eq!(alloc[0].rate, DataRate::from_mbps(2));
        assert_eq!(alloc[0].hops, 1);
        // ...and the departed endpoint is still refused.
        assert_eq!(alloc[1].rate, DataRate::ZERO);
    }

    #[test]
    fn fluid_weighted_shares_split_the_bottleneck_by_weight() {
        // Two aggregates with weights 1 and 2 share a 9 Mb/s pipe; neither
        // demand binds, so shares are 3 and 6 Mb/s.
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let b = topo.add_node(NodeKind::Client);
        topo.add_link(
            a,
            b,
            LinkAttrs::new(DataRate::from_mbps(9), SimDuration::from_millis(1)),
        )
        .unwrap();
        let flows = [
            FluidSpec {
                src: a,
                dst: b,
                demand: DataRate::from_mbps(100),
                weight: 1,
            },
            FluidSpec {
                src: a,
                dst: b,
                demand: DataRate::from_mbps(100),
                weight: 2,
            },
        ];
        let alloc = fluid_max_min(&topo, &flows);
        assert_eq!(alloc[0].rate, DataRate::from_mbps(3));
        assert_eq!(alloc[1].rate, DataRate::from_mbps(6));
    }

    #[test]
    fn fluid_demand_bound_frees_capacity_for_the_hungry_flow() {
        // A 2 Mb/s demand on a 10 Mb/s pipe caps itself; the competing
        // unbounded flow absorbs the remaining 8 Mb/s even at equal weight.
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let b = topo.add_node(NodeKind::Client);
        topo.add_link(
            a,
            b,
            LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1)),
        )
        .unwrap();
        let flows = [
            FluidSpec {
                src: a,
                dst: b,
                demand: DataRate::from_mbps(2),
                weight: 1,
            },
            FluidSpec {
                src: a,
                dst: b,
                demand: DataRate::from_mbps(100),
                weight: 1,
            },
        ];
        let alloc = fluid_max_min(&topo, &flows);
        assert_eq!(alloc[0].rate, DataRate::from_mbps(2));
        assert_eq!(alloc[1].rate, DataRate::from_mbps(8));
    }

    #[test]
    fn fluid_multi_hop_flows_are_held_by_their_tightest_pipe() {
        // a → r at 10 Mb/s, r → b at 2 Mb/s: the aggregate is held to
        // 2 Mb/s regardless of weight; same-node flows pass their demand;
        // unroutable flows get zero.
        let mut topo = Topology::new();
        let a = topo.add_node(NodeKind::Client);
        let r = topo.add_node(NodeKind::Stub);
        let b = topo.add_node(NodeKind::Client);
        let lone = topo.add_node(NodeKind::Client);
        topo.add_link(
            a,
            r,
            LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1)),
        )
        .unwrap();
        topo.add_link(
            r,
            b,
            LinkAttrs::new(DataRate::from_mbps(2), SimDuration::from_millis(1)),
        )
        .unwrap();
        let flows = [
            FluidSpec {
                src: a,
                dst: b,
                demand: DataRate::from_mbps(50),
                weight: 1000,
            },
            FluidSpec {
                src: a,
                dst: a,
                demand: DataRate::from_mbps(7),
                weight: 1,
            },
            FluidSpec {
                src: a,
                dst: lone,
                demand: DataRate::from_mbps(5),
                weight: 1,
            },
        ];
        let alloc = fluid_max_min(&topo, &flows);
        assert_eq!(alloc[0].rate, DataRate::from_mbps(2));
        assert_eq!(alloc[0].hops, 2);
        assert_eq!(alloc[1].rate, DataRate::from_mbps(7));
        assert_eq!(alloc[2].rate, DataRate::ZERO);
    }

    #[test]
    fn latency_oracle_matches_shortest_path() {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 1,
            ..RingParams::default()
        });
        let clients: Vec<NodeId> = topo.client_nodes().collect();
        let lat = path_latency(&topo, clients[0], clients[3]).unwrap();
        // 1 ms access + 3 × 5 ms ring + 1 ms access.
        assert_eq!(lat, SimDuration::from_millis(17));
    }
}
