//! Tree-only all-pairs routing state.
//!
//! The paper's default design stores a dense O(n²) route matrix: "This
//! straightforward design allows fast indexing and scales to 10,000 VNs,
//! but the routing tables consume O(n²) space." This reproduction keeps the
//! paper's *interface* (every ordered VN pair resolves to a shortest route)
//! while storing only one shortest-route **tree** per source — predecessor
//! and distance arrays over the pipe graph, O(vns × nodes) — and
//! materialising a route on demand by walking predecessors from the
//! destination. A per-pipe **reverse index** (pipe → source trees that cross
//! it as a tree edge) makes [`RoutingMatrix::update_pipes`] output-sensitive:
//! worsening a pipe touches exactly the trees that used it, not every VN in
//! the component.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use mn_distill::DistilledTopology;
use mn_topology::NodeId;

use crate::dijkstra::{pipe_cost, Route, UNUSABLE_COST};
use crate::RouteProvider;

use mn_distill::PipeId;

/// Sentinel in predecessor rows (no predecessor: the source itself, or an
/// unreachable node) and in the dense node→VN table (not a VN).
const NO_PRED: u32 = u32::MAX;

/// Sentinel location of a tombstoned source slot (see
/// [`RoutingMatrix::remove_source`]): the slot's rows stay allocated for
/// reuse by the next [`RoutingMatrix::add_source`], but no node maps to it.
const DEAD_SOURCE: NodeId = NodeId(usize::MAX);

/// What one [`RoutingMatrix::update_pipes`] call changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteUpdate {
    /// Ordered VN location pairs whose route changed (appeared, disappeared
    /// or was rewired). Callers re-wire exactly these pairs in their route
    /// tables.
    pub changed_pairs: Vec<(NodeId, NodeId)>,
    /// Number of sources whose shortest-route tree had to be recomputed.
    pub recomputed_sources: usize,
}

impl RouteUpdate {
    /// Returns `true` if no route changed.
    pub fn is_empty(&self) -> bool {
        self.changed_pairs.is_empty()
    }
}

/// Tree-only route storage over the VN set of a distilled topology.
///
/// Per source VN the matrix holds one predecessor row and one distance row
/// over the pipe graph (the source's shortest-route tree); routes are never
/// stored, only derived. Lookup walks the destination's predecessor chain —
/// O(hops), allocation-free via [`RoutingMatrix::materialize_at`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutingMatrix {
    /// The VN set, in index order.
    vns: Vec<NodeId>,
    /// Dense node-index → VN-index table (`u32::MAX` for non-VN nodes); the
    /// hash-free replacement for the old `index_of` map on every hot path.
    vn_of_node: Vec<u32>,
    /// Node count of the pipe graph the matrix was last (re)built against.
    node_count: usize,
    /// Distance labels of every source's shortest-route tree
    /// (`dist[src_index * node_count + node]`, `u64::MAX` unreachable).
    dist: Vec<u64>,
    /// Predecessor pipe of every node in every source's tree
    /// (`pred[src_index * node_count + node]`, [`NO_PRED`] for the source
    /// itself and for unreachable nodes). Together with `pipe_src` this is
    /// the entire route store: a route is the reversed predecessor chain.
    pred: Vec<u32>,
    /// Per-pipe routing cost snapshot from the last (re)build/update.
    pipe_cost: Vec<u64>,
    /// Tail node index of every pipe, so predecessor walks need no access
    /// to the topology the matrix was built from.
    pipe_src: Vec<u32>,
    /// Structural (attrs-independent) connected component of every node.
    /// Pipes never change endpoints at runtime — only attributes — so a
    /// pipe change can only ever affect sources and destinations inside its
    /// own structural component.
    node_component: Vec<u32>,
    /// VN indices per structural component, ascending.
    component_vns: Vec<Vec<u32>>,
    /// Node indices per structural component, ascending (bounds the
    /// distance-label refresh of a recomputed source).
    component_nodes: Vec<Vec<u32>>,
    /// Reverse index: for every pipe, the ascending source (VN) indices
    /// whose current tree crosses it as a **tree edge**
    /// (`pred[head] == pipe`). Maintained incrementally by diffing
    /// predecessor rows on every recompute. For a *worsened* pipe this set
    /// is exactly the trees a from-scratch rebuild would change (see
    /// [`RoutingMatrix::update_pipes`]), which is what makes reconfiguration
    /// output-sensitive.
    pipe_sources: Vec<Vec<u32>>,
    /// Reusable scratch for the component-scoped Dijkstra of
    /// [`RoutingMatrix::update_pipes`]: row entries outside a call's
    /// component are never read or written, so only the component is
    /// re-initialised per recompute instead of memsetting O(nodes) arrays,
    /// and the heap's backing vector is recycled across recomputes so the
    /// incremental path performs no per-source allocation.
    scratch_dist: Vec<u64>,
    scratch_pred: Vec<u32>,
    scratch_heap: Vec<Reverse<(u64, NodeId)>>,
    /// Tombstoned source slots (ascending), left behind by
    /// [`RoutingMatrix::remove_source`] and reused by
    /// [`RoutingMatrix::add_source`] so sustained churn does not grow the
    /// label arrays without bound.
    free_slots: Vec<u32>,
    /// Bumped by every rebuild and every non-empty incremental update.
    version: u64,
}

/// Component-scoped single-source shortest-route tree into reusable scratch
/// rows: only `nodes` (the source's structural component) is re-initialised,
/// and Dijkstra can only ever reach inside it, so the cost is
/// O(component log component), not O(graph). Tie-breaking is identical to
/// [`crate::dijkstra::shortest_route_tree_with_dist`] (same heap ordering),
/// which the incremental-equals-scratch property suites rely on.
fn scoped_route_tree(
    topo: &DistilledTopology,
    source: NodeId,
    nodes: &[u32],
    dist: &mut [u64],
    pred: &mut [u32],
    heap_scratch: &mut Vec<Reverse<(u64, NodeId)>>,
) {
    for &u in nodes {
        dist[u as usize] = UNUSABLE_COST;
        pred[u as usize] = NO_PRED;
    }
    if source.index() >= dist.len() {
        return;
    }
    heap_scratch.clear();
    let mut heap = BinaryHeap::from(std::mem::take(heap_scratch));
    dist[source.index()] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for &pipe_id in topo.out_pipes(u) {
            let cost = pipe_cost(&topo.pipe(pipe_id).attrs);
            if cost == UNUSABLE_COST {
                continue;
            }
            let nd = d.saturating_add(cost);
            let v = topo.pipe(pipe_id).dst;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                pred[v.index()] = pipe_id.index() as u32;
                heap.push(Reverse((nd, v)));
            }
        }
    }
    // Hand the (drained) backing vector back for the next recompute.
    *heap_scratch = heap.into_vec();
}

/// Walks `dst`'s predecessor chain in one stored tree row, writing the
/// forward pipe sequence into `out`. Returns whether a route exists; the
/// trivial `src == dst` route always does (empty), matching
/// [`crate::dijkstra::route_from_tree`].
fn walk_row(
    pred_row: &[u32],
    pipe_src: &[u32],
    src: NodeId,
    dst: NodeId,
    out: &mut Vec<PipeId>,
) -> bool {
    out.clear();
    if src == dst {
        return true;
    }
    if dst.index() >= pred_row.len() || src.index() >= pred_row.len() {
        return false;
    }
    let mut cur = dst.index();
    while cur != src.index() {
        let p = pred_row[cur];
        if p == NO_PRED {
            out.clear();
            return false;
        }
        out.push(PipeId(p as usize));
        cur = pipe_src[p as usize] as usize;
    }
    out.reverse();
    true
}

/// Compares the route to `dst` in two predecessor rows of the same graph
/// without materialising either: the route *is* the predecessor chain read
/// backwards, so the routes are equal iff the chains agree pipe for pipe
/// from `dst` down to the first [`NO_PRED`] (both unreachable) or `src`.
fn tree_route_unchanged(
    old_row: &[u32],
    new_row: &[u32],
    pipe_src: &[u32],
    src: NodeId,
    dst: NodeId,
) -> bool {
    if dst.index() >= old_row.len() {
        return true; // outside the graph in both trees: no route either way
    }
    let s = src.index();
    let mut cur = dst.index();
    while cur != s {
        let po = old_row[cur];
        let pn = new_row[cur];
        if po != pn {
            return false;
        }
        if po == NO_PRED {
            return true; // unreachable in both trees from the same node
        }
        cur = pipe_src[po as usize] as usize;
    }
    true
}

impl RoutingMatrix {
    /// Pre-computes the shortest-route tree of every VN in the distilled
    /// topology (routes among all pairs are derived from the trees on
    /// demand).
    pub fn build(topo: &DistilledTopology) -> Self {
        let mut matrix = RoutingMatrix {
            vns: topo.vns().to_vec(),
            vn_of_node: Vec::new(),
            node_count: 0,
            dist: Vec::new(),
            pred: Vec::new(),
            pipe_cost: Vec::new(),
            pipe_src: Vec::new(),
            node_component: Vec::new(),
            component_vns: Vec::new(),
            component_nodes: Vec::new(),
            pipe_sources: Vec::new(),
            scratch_dist: Vec::new(),
            scratch_pred: Vec::new(),
            scratch_heap: Vec::new(),
            free_slots: Vec::new(),
            version: 0,
        };
        matrix.rebuild(topo);
        matrix
    }

    /// Recomputes every source tree against the (possibly modified) pipe
    /// graph. Used after fault injection changes reachability or latencies.
    pub fn rebuild(&mut self, topo: &DistilledTopology) {
        let n = self.vns.len();
        self.node_count = topo.node_count();
        let nc = self.node_count;
        self.pipe_cost = topo.pipes().map(|(_, p)| pipe_cost(&p.attrs)).collect();
        self.pipe_src = topo.pipes().map(|(_, p)| p.src.index() as u32).collect();
        // Dense node→VN table: sized to cover every node and every VN id
        // (tombstoned slots map no node).
        let table_len = self
            .vns
            .iter()
            .filter(|v| **v != DEAD_SOURCE)
            .map(|v| v.index() + 1)
            .max()
            .unwrap_or(0)
            .max(nc);
        self.vn_of_node.clear();
        self.vn_of_node.resize(table_len, NO_PRED);
        for (i, &vn) in self.vns.iter().enumerate() {
            if vn.index() < table_len {
                self.vn_of_node[vn.index()] = i as u32;
            }
        }
        self.rebuild_components(topo);
        self.dist.clear();
        self.dist.resize(n * nc, UNUSABLE_COST);
        self.pred.clear();
        self.pred.resize(n * nc, NO_PRED);
        let mut pipe_sources: Vec<Vec<u32>> = vec![Vec::new(); topo.pipe_count()];
        let mut heap = std::mem::take(&mut self.scratch_heap);
        for (si, &src) in self.vns.iter().enumerate() {
            if src.index() >= nc {
                continue;
            }
            let comp = self.node_component[src.index()] as usize;
            scoped_route_tree(
                topo,
                src,
                &self.component_nodes[comp],
                &mut self.dist[si * nc..(si + 1) * nc],
                &mut self.pred[si * nc..(si + 1) * nc],
                &mut heap,
            );
            // Seed the reverse index: ascending source order falls out of
            // the iteration, so every per-pipe list is born sorted.
            for &u in &self.component_nodes[comp] {
                let p = self.pred[si * nc + u as usize];
                if p != NO_PRED {
                    pipe_sources[p as usize].push(si as u32);
                }
            }
        }
        self.pipe_sources = pipe_sources;
        self.scratch_heap = heap;
        self.version += 1;
    }

    /// Recomputes the structural component index (union-find over the pipe
    /// graph's shape, ignoring attributes). Attribute changes can never
    /// move a node between structural components, so this only runs on
    /// (re)build.
    fn rebuild_components(&mut self, topo: &DistilledTopology) {
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        let mut parent: Vec<u32> = (0..self.node_count as u32).collect();
        for (_, pipe) in topo.pipes() {
            let a = find(&mut parent, pipe.src.index() as u32);
            let b = find(&mut parent, pipe.dst.index() as u32);
            if a != b {
                parent[a as usize] = b;
            }
        }
        // Roots are node indices, so a dense table maps root → component id
        // without hashing (the whole rebuild path is now hash-free).
        let mut id_of_root = vec![u32::MAX; self.node_count];
        let mut node_component = vec![0u32; self.node_count];
        let mut component_nodes: Vec<Vec<u32>> = Vec::new();
        for u in 0..self.node_count as u32 {
            let root = find(&mut parent, u) as usize;
            let id = if id_of_root[root] != u32::MAX {
                id_of_root[root]
            } else {
                let id = component_nodes.len() as u32;
                id_of_root[root] = id;
                component_nodes.push(Vec::new());
                id
            };
            node_component[u as usize] = id;
            component_nodes[id as usize].push(u);
        }
        let mut component_vns: Vec<Vec<u32>> = vec![Vec::new(); component_nodes.len()];
        for (si, &vn) in self.vns.iter().enumerate() {
            if vn.index() < self.node_count {
                component_vns[node_component[vn.index()] as usize].push(si as u32);
            }
        }
        self.node_component = node_component;
        self.component_vns = component_vns;
        self.component_nodes = component_nodes;
    }

    /// Incrementally updates the matrix after the listed pipes of `topo`
    /// were mutated in place (failure, restore, latency/bandwidth
    /// renegotiation).
    ///
    /// Output-sensitive in both directions. A pipe that got *worse* can
    /// only change trees that crossed it as a tree edge — exactly the
    /// reverse-index entry `pipe_sources[pipe]`. (A source whose labels
    /// merely held the pipe *tight* without using it is provably
    /// unaffected: relaxation is strict, so the final predecessor of the
    /// pipe's head is the first edge in relaxation order to achieve the
    /// final distance, and an edge that lost that race before cannot win
    /// it by getting worse — a from-scratch rerun relaxes the same pushes
    /// in the same order and rebuilds the identical tree.) A pipe that got
    /// *better* has no cheap exact set, so its component's VN labels are
    /// scanned for sources it now ties or undercuts (`<=` so tie-breaking
    /// matches a from-scratch recomputation exactly). The result equals a
    /// from-scratch [`RoutingMatrix::rebuild`] pair for pair — pinned by
    /// the `dynamics_invariants` and `matrix_trees` property suites.
    pub fn update_pipes(&mut self, topo: &DistilledTopology, changed: &[PipeId]) -> RouteUpdate {
        let n = self.vns.len();
        if self.dist.len() != n * topo.node_count() || self.pipe_cost.len() != topo.pipe_count() {
            // Shape mismatch (different pipe graph): fall back to a full
            // rebuild, reporting every pair whose materialised route
            // differs between the old trees and the new ones.
            let old_pred = std::mem::take(&mut self.pred);
            let old_pipe_src = std::mem::take(&mut self.pipe_src);
            let old_nc = self.node_count;
            self.rebuild(topo);
            let mut changed_pairs = Vec::new();
            let (mut old_buf, mut new_buf) = (Vec::new(), Vec::new());
            for (si, &src) in self.vns.iter().enumerate() {
                let old_row = &old_pred[si * old_nc..(si + 1) * old_nc];
                for (di, &dst) in self.vns.iter().enumerate() {
                    let old_ok = walk_row(old_row, &old_pipe_src, src, dst, &mut old_buf);
                    let new_ok = self.materialize_at(si, di, &mut new_buf);
                    if old_ok != new_ok || (old_ok && old_buf != new_buf) {
                        changed_pairs.push((src, dst));
                    }
                }
            }
            return RouteUpdate {
                changed_pairs,
                recomputed_sources: n,
            };
        }
        // Classify each genuinely changed pipe by cost direction.
        let mut worsened: Vec<PipeId> = Vec::new();
        let mut improved: Vec<(usize, usize, u64)> = Vec::new(); // (src, dst, new cost)
        for &p in changed {
            let old = self.pipe_cost[p.index()];
            let new = pipe_cost(&topo.pipe(p).attrs);
            if new == old {
                continue;
            }
            if new > old {
                // A pipe that was already unusable cannot sit in any tree:
                // worsening it further affects no source.
                if old != UNUSABLE_COST {
                    worsened.push(p);
                }
            } else {
                let pipe = topo.pipe(p);
                improved.push((pipe.src.index(), pipe.dst.index(), new));
            }
            self.pipe_cost[p.index()] = new;
        }
        let mut update = RouteUpdate::default();
        if worsened.is_empty() && improved.is_empty() {
            return update;
        }
        let nc = self.node_count;
        // Candidate sources. Worsened pipes: the reverse index is exact —
        // no scan at all, cost proportional to the trees actually crossing
        // the pipe. Improved pipes: scan the pipe's structural component
        // for sources whose stored labels the new cost ties or undercuts.
        let mut candidates: Vec<u32> = Vec::new();
        for &p in &worsened {
            candidates.extend_from_slice(&self.pipe_sources[p.index()]);
        }
        if !improved.is_empty() {
            let mut comps: Vec<u32> = improved
                .iter()
                .map(|&(u, _, _)| self.node_component[u])
                .collect();
            comps.sort_unstable();
            comps.dedup();
            for &c in &comps {
                for &si in &self.component_vns[c as usize] {
                    let row = &self.dist[si as usize * nc..(si as usize + 1) * nc];
                    let undercut = improved.iter().any(|&(u, v, new_cost)| {
                        let du = row[u];
                        du != UNUSABLE_COST && du.saturating_add(new_cost) <= row[v]
                    });
                    if undercut {
                        candidates.push(si);
                    }
                }
            }
        }
        // Ascending order keeps the reported pair order identical to a full
        // ascending scan, so callers' rewire order cannot drift.
        candidates.sort_unstable();
        candidates.dedup();
        for &si in &candidates {
            let si = si as usize;
            update.recomputed_sources += 1;
            let src = self.vns[si];
            // Recompute, refresh labels and diff routes only inside the
            // source's structural component: everything outside it is
            // unreachable in both the old and the fresh tree.
            let comp = self.node_component[src.index()] as usize;
            if self.scratch_dist.len() != nc {
                self.scratch_dist = vec![UNUSABLE_COST; nc];
                self.scratch_pred = vec![NO_PRED; nc];
            }
            let mut fresh_dist = std::mem::take(&mut self.scratch_dist);
            let mut fresh_pred = std::mem::take(&mut self.scratch_pred);
            scoped_route_tree(
                topo,
                src,
                &self.component_nodes[comp],
                &mut fresh_dist,
                &mut fresh_pred,
                &mut self.scratch_heap,
            );
            // Report changed destinations against the still-old row…
            let old_row = &self.pred[si * nc..(si + 1) * nc];
            for &di in &self.component_vns[comp] {
                let dst = self.vns[di as usize];
                if !tree_route_unchanged(old_row, &fresh_pred, &self.pipe_src, src, dst) {
                    update.changed_pairs.push((src, dst));
                }
            }
            // …then refresh the row, diffing predecessors edge by edge to
            // keep the per-pipe reverse index exact at O(changed tree
            // edges) cost.
            let si_u32 = si as u32;
            for &u in &self.component_nodes[comp] {
                let u = u as usize;
                let old_p = self.pred[si * nc + u];
                let new_p = fresh_pred[u];
                if old_p != new_p {
                    if old_p != NO_PRED {
                        let sources = &mut self.pipe_sources[old_p as usize];
                        if let Ok(pos) = sources.binary_search(&si_u32) {
                            sources.remove(pos);
                        }
                    }
                    if new_p != NO_PRED {
                        let sources = &mut self.pipe_sources[new_p as usize];
                        if let Err(pos) = sources.binary_search(&si_u32) {
                            sources.insert(pos, si_u32);
                        }
                    }
                    self.pred[si * nc + u] = new_p;
                }
                self.dist[si * nc + u] = fresh_dist[u];
            }
            self.scratch_dist = fresh_dist;
            self.scratch_pred = fresh_pred;
        }
        if !update.changed_pairs.is_empty() || update.recomputed_sources > 0 {
            self.version += 1;
        }
        update
    }

    /// Adds a source tree for `node` incrementally: one component-scoped
    /// Dijkstra plus reverse-index seeding — O(component log component),
    /// independent of how many sources the matrix already holds. A
    /// tombstoned slot left by [`RoutingMatrix::remove_source`] is reused
    /// when available, so sustained join/leave churn keeps the label
    /// arrays at the high-water source count instead of growing them
    /// forever. Returns `false` (and changes nothing) when `node` is
    /// already a live source or is not a node of the graph the matrix was
    /// built over.
    pub fn add_source(&mut self, topo: &DistilledTopology, node: NodeId) -> bool {
        if self.vn_index(node).is_some() || node.index() >= self.node_count {
            return false;
        }
        let nc = self.node_count;
        let si = if self.free_slots.is_empty() {
            let si = self.vns.len();
            self.vns.push(node);
            self.dist.resize((si + 1) * nc, UNUSABLE_COST);
            self.pred.resize((si + 1) * nc, NO_PRED);
            si
        } else {
            // Lowest tombstone first: slot assignment is a pure function
            // of the churn history, so replayed schedules land identical
            // slot layouts.
            let si = self.free_slots.remove(0) as usize;
            self.vns[si] = node;
            si
        };
        if self.vn_of_node.len() <= node.index() {
            self.vn_of_node.resize(node.index() + 1, NO_PRED);
        }
        self.vn_of_node[node.index()] = si as u32;
        let si_u32 = si as u32;
        let comp = self.node_component[node.index()] as usize;
        let vns = &mut self.component_vns[comp];
        if let Err(pos) = vns.binary_search(&si_u32) {
            vns.insert(pos, si_u32);
        }
        scoped_route_tree(
            topo,
            node,
            &self.component_nodes[comp],
            &mut self.dist[si * nc..(si + 1) * nc],
            &mut self.pred[si * nc..(si + 1) * nc],
            &mut self.scratch_heap,
        );
        // Seed the reverse index with the fresh tree's edges.
        for &u in &self.component_nodes[comp] {
            let p = self.pred[si * nc + u as usize];
            if p != NO_PRED {
                let sources = &mut self.pipe_sources[p as usize];
                if let Err(pos) = sources.binary_search(&si_u32) {
                    sources.insert(pos, si_u32);
                }
            }
        }
        self.version += 1;
        true
    }

    /// Removes `node`'s source tree incrementally: the tree's edges are
    /// unhooked from the reverse index and its label rows cleared —
    /// O(component), independent of total source count — and the slot is
    /// tombstoned for reuse. Trees *toward* the node's location (other
    /// sources' rows) are untouched, which is what lets descriptors
    /// already in flight toward a departed endpoint drain on their
    /// pre-departure routes. Returns `false` when `node` is not a live
    /// source.
    pub fn remove_source(&mut self, node: NodeId) -> bool {
        let Some(si) = self.vn_index(node) else {
            return false;
        };
        let nc = self.node_count;
        let si_u32 = si as u32;
        self.vn_of_node[node.index()] = NO_PRED;
        let comp = self.node_component[node.index()] as usize;
        for &u in &self.component_nodes[comp] {
            let u = u as usize;
            let p = self.pred[si * nc + u];
            if p != NO_PRED {
                let sources = &mut self.pipe_sources[p as usize];
                if let Ok(pos) = sources.binary_search(&si_u32) {
                    sources.remove(pos);
                }
                self.pred[si * nc + u] = NO_PRED;
            }
            self.dist[si * nc + u] = UNUSABLE_COST;
        }
        let vns = &mut self.component_vns[comp];
        if let Ok(pos) = vns.binary_search(&si_u32) {
            vns.remove(pos);
        }
        self.vns[si] = DEAD_SOURCE;
        if let Err(pos) = self.free_slots.binary_search(&si_u32) {
            self.free_slots.insert(pos, si_u32);
        }
        self.version += 1;
        true
    }

    /// Number of live (non-tombstoned) source trees currently stored.
    pub fn live_source_count(&self) -> usize {
        self.vns.len() - self.free_slots.len()
    }

    /// Monotonic change counter: bumped by every rebuild and every
    /// incremental update that touched a source tree.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The VN set the matrix covers.
    pub fn vns(&self) -> &[NodeId] {
        &self.vns
    }

    /// Number of VNs.
    pub fn vn_count(&self) -> usize {
        self.vns.len()
    }

    /// Materialises the route between two VNs by walking the destination's
    /// predecessor chain, allocating a fresh `Route`. `None` when either
    /// node is not a VN or the destination is unreachable. Hot callers
    /// resolve indexes once ([`RoutingMatrix::vn_index`]) and reuse a
    /// buffer via [`RoutingMatrix::materialize_at`] instead.
    pub fn lookup(&self, src: NodeId, dst: NodeId) -> Option<Route> {
        let si = self.vn_index(src)?;
        let di = self.vn_index(dst)?;
        let mut pipes = Vec::new();
        self.materialize_at(si, di, &mut pipes)
            .then(|| Route::new(pipes))
    }

    /// The dense index of a VN in this matrix, or `None` for a node that is
    /// not a VN. A single array load — no hashing.
    pub fn vn_index(&self, node: NodeId) -> Option<usize> {
        match self.vn_of_node.get(node.index()) {
            Some(&i) if i != NO_PRED => Some(i as usize),
            _ => None,
        }
    }

    /// Route lookup by dense VN indexes (see [`RoutingMatrix::vn_index`]),
    /// allocating the returned `Route`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn route_at(&self, src_index: usize, dst_index: usize) -> Option<Route> {
        let mut pipes = Vec::new();
        self.materialize_at(src_index, dst_index, &mut pipes)
            .then(|| Route::new(pipes))
    }

    /// Walks the route between two VNs (by dense index) into `out` without
    /// allocating: `out` is cleared and filled with the pipe sequence in
    /// traversal order. Returns `false` (with `out` empty) when the
    /// destination is unreachable; the trivial `src == dst` route is an
    /// empty `true`. This is the zero-copy resolution path the sharded
    /// route table builds and rewires through.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn materialize_at(
        &self,
        src_index: usize,
        dst_index: usize,
        out: &mut Vec<PipeId>,
    ) -> bool {
        let n = self.vns.len();
        assert!(src_index < n && dst_index < n, "VN index out of range");
        let nc = self.node_count;
        walk_row(
            &self.pred[src_index * nc..(src_index + 1) * nc],
            &self.pipe_src,
            self.vns[src_index],
            self.vns[dst_index],
            out,
        )
    }

    /// Distance label of `dst` in `src`'s shortest-route tree (total pipe
    /// cost: latency in nanoseconds plus one per hop), or `None` when
    /// either node is not a VN or the destination is unreachable.
    pub fn distance(&self, src: NodeId, dst: NodeId) -> Option<u64> {
        let si = self.vn_index(src)?;
        if dst.index() >= self.node_count {
            return None;
        }
        let d = self.dist[si * self.node_count + dst.index()];
        (d != UNUSABLE_COST).then_some(d)
    }

    /// The sources (ascending dense VN indices) whose current tree crosses
    /// `pipe` as a tree edge — exactly the trees a worsening of this pipe
    /// forces [`RoutingMatrix::update_pipes`] to recompute.
    pub fn pipe_tree_sources(&self, pipe: PipeId) -> &[u32] {
        self.pipe_sources
            .get(pipe.index())
            .map_or(&[][..], |v| v.as_slice())
    }

    /// Resident heap bytes of the route state (trees, labels, reverse
    /// index, component maps) — the structures that scale with topology
    /// size, reported by the memory benches.
    pub fn memory_bytes(&self) -> usize {
        fn nested(v: &[Vec<u32>]) -> usize {
            std::mem::size_of_val(v) + v.iter().map(|e| e.capacity() * 4).sum::<usize>()
        }
        self.dist.capacity() * 8
            + self.pred.capacity() * 4
            + self.pipe_cost.capacity() * 8
            + self.pipe_src.capacity() * 4
            + self.vn_of_node.capacity() * 4
            + self.node_component.capacity() * 4
            + self.vns.capacity() * std::mem::size_of::<NodeId>()
            + nested(&self.component_vns)
            + nested(&self.component_nodes)
            + nested(&self.pipe_sources)
    }

    /// Average route length in pipes over all reachable ordered pairs
    /// (excluding the trivial diagonal). Reported by the distillation
    /// experiments.
    pub fn mean_route_length(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        self.for_each_hop_count(|hops| {
            if hops > 0 {
                total += hops;
                count += 1;
            }
        });
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Longest route in pipes over all pairs.
    pub fn max_route_length(&self) -> usize {
        let mut max = 0usize;
        self.for_each_hop_count(|hops| max = max.max(hops));
        max
    }

    /// Visits the hop count of every reachable ordered pair (diagnostics:
    /// O(pairs × hops) predecessor walks, no allocation).
    fn for_each_hop_count(&self, mut f: impl FnMut(usize)) {
        let nc = self.node_count;
        for si in 0..self.vns.len() {
            let src = self.vns[si];
            if src.index() >= nc {
                continue;
            }
            let row = &self.pred[si * nc..(si + 1) * nc];
            for &dst in &self.vns {
                if dst.index() >= nc {
                    continue;
                }
                let mut cur = dst.index();
                let mut hops = 0usize;
                let reachable = loop {
                    if cur == src.index() {
                        break true;
                    }
                    let p = row[cur];
                    if p == NO_PRED {
                        break false;
                    }
                    hops += 1;
                    cur = self.pipe_src[p as usize] as usize;
                };
                if reachable {
                    f(hops);
                }
            }
        }
    }
}

impl RoutingMatrix {
    /// Serialises the complete persistent route state — trees, labels,
    /// reverse index, component maps, tombstones and version — for a
    /// checkpoint. Scratch buffers are not captured (they hold no state
    /// between calls); [`RoutingMatrix::decode`] restores them empty.
    pub fn encode(&self, w: &mut mn_util::ByteWriter) {
        fn put_u32s(w: &mut mn_util::ByteWriter, v: &[u32]) {
            w.put_len(v.len());
            for &x in v {
                w.put_u32(x);
            }
        }
        fn put_u64s(w: &mut mn_util::ByteWriter, v: &[u64]) {
            w.put_len(v.len());
            for &x in v {
                w.put_u64(x);
            }
        }
        fn put_nested(w: &mut mn_util::ByteWriter, v: &[Vec<u32>]) {
            w.put_len(v.len());
            for list in v {
                put_u32s(w, list);
            }
        }
        w.put_len(self.vns.len());
        for &vn in &self.vns {
            // DEAD_SOURCE is usize::MAX, which round-trips through u64.
            w.put_u64(vn.index() as u64);
        }
        put_u32s(w, &self.vn_of_node);
        w.put_usize(self.node_count);
        put_u64s(w, &self.dist);
        put_u32s(w, &self.pred);
        put_u64s(w, &self.pipe_cost);
        put_u32s(w, &self.pipe_src);
        put_u32s(w, &self.node_component);
        put_nested(w, &self.component_vns);
        put_nested(w, &self.component_nodes);
        put_nested(w, &self.pipe_sources);
        put_u32s(w, &self.free_slots);
        w.put_u64(self.version);
    }

    /// Rebuilds a matrix from bytes produced by [`RoutingMatrix::encode`].
    /// The restored matrix answers every lookup — and reacts to every
    /// future [`RoutingMatrix::update_pipes`] — identically to the one
    /// captured.
    pub fn decode(r: &mut mn_util::ByteReader) -> Result<Self, mn_util::CodecError> {
        fn get_u32s(r: &mut mn_util::ByteReader) -> Result<Vec<u32>, mn_util::CodecError> {
            let n = r.get_len()?;
            (0..n).map(|_| r.get_u32()).collect()
        }
        fn get_u64s(r: &mut mn_util::ByteReader) -> Result<Vec<u64>, mn_util::CodecError> {
            let n = r.get_len()?;
            (0..n).map(|_| r.get_u64()).collect()
        }
        fn get_nested(r: &mut mn_util::ByteReader) -> Result<Vec<Vec<u32>>, mn_util::CodecError> {
            let n = r.get_len()?;
            (0..n).map(|_| get_u32s(r)).collect()
        }
        let n = r.get_len()?;
        let mut vns = Vec::with_capacity(n);
        for _ in 0..n {
            vns.push(NodeId(r.get_u64()? as usize));
        }
        Ok(RoutingMatrix {
            vns,
            vn_of_node: get_u32s(r)?,
            node_count: r.get_usize()?,
            dist: get_u64s(r)?,
            pred: get_u32s(r)?,
            pipe_cost: get_u64s(r)?,
            pipe_src: get_u32s(r)?,
            node_component: get_u32s(r)?,
            component_vns: get_nested(r)?,
            component_nodes: get_nested(r)?,
            pipe_sources: get_nested(r)?,
            scratch_dist: Vec::new(),
            scratch_pred: Vec::new(),
            scratch_heap: Vec::new(),
            free_slots: get_u32s(r)?,
            version: r.get_u64()?,
        })
    }
}

impl RouteProvider for RoutingMatrix {
    fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Route> {
        self.lookup(src, dst)
    }

    fn stored_routes(&self) -> usize {
        // Tree-only storage holds no routes; count the resolvable pairs
        // the old dense slab would have stored (diagonal included).
        let nc = self.node_count;
        let mut count = 0;
        for si in 0..self.vns.len() {
            if self.vns[si] == DEAD_SOURCE {
                continue;
            }
            let row = &self.dist[si * nc..(si + 1) * nc];
            for (di, &dst) in self.vns.iter().enumerate() {
                if si == di {
                    count += 1; // trivial route, always materialisable
                } else if dst.index() < nc && row[dst.index()] != UNUSABLE_COST {
                    count += 1;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_distill::{distill, DistillationMode};
    use mn_topology::generators::{ring_topology, star_topology, RingParams, StarParams};
    use mn_util::{DataRate, SimDuration};

    fn small_ring() -> DistilledTopology {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        distill(&topo, DistillationMode::HopByHop)
    }

    #[test]
    fn matrix_covers_all_vn_pairs() {
        let d = small_ring();
        let m = RoutingMatrix::build(&d);
        assert_eq!(m.vn_count(), 12);
        assert_eq!(m.stored_routes(), 12 * 12);
        for &a in m.vns() {
            for &b in m.vns() {
                let r = m.lookup(a, b).unwrap();
                if a == b {
                    assert!(r.is_empty());
                } else {
                    assert!(r.hop_count() >= 2, "VN-to-VN routes cross two access links");
                }
            }
        }
    }

    #[test]
    fn matrix_routes_match_direct_dijkstra() {
        let d = small_ring();
        let m = RoutingMatrix::build(&d);
        let vns = m.vns().to_vec();
        for &a in &vns {
            for &b in &vns {
                let expected = crate::route_between(&d, a, b).unwrap();
                assert_eq!(m.lookup(a, b).unwrap().hop_count(), expected.hop_count());
            }
        }
    }

    #[test]
    fn lookup_unknown_vn_is_none() {
        let d = small_ring();
        let m = RoutingMatrix::build(&d);
        // Node 0 is a transit router, not a VN.
        let router = NodeId(0);
        assert!(m.lookup(router, m.vns()[0]).is_none());
        assert!(m.vn_index(router).is_none());
        assert!(m.vn_index(NodeId(usize::MAX)).is_none());
    }

    #[test]
    fn star_routes_are_two_hops() {
        let topo = star_topology(&StarParams {
            clients: 20,
            ..StarParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let m = RoutingMatrix::build(&d);
        assert_eq!(m.max_route_length(), 2);
        assert!((m.mean_route_length() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rebuild_picks_up_latency_changes() {
        // Square of stubs with a client at two corners; raising one side's
        // latency shifts the route to the other side.
        let mut topo = mn_topology::Topology::new();
        let a = topo.add_node(mn_topology::NodeKind::Client);
        let r1 = topo.add_node(mn_topology::NodeKind::Stub);
        let r2 = topo.add_node(mn_topology::NodeKind::Stub);
        let b = topo.add_node(mn_topology::NodeKind::Client);
        let fast =
            mn_topology::LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
        topo.add_link(a, r1, fast).unwrap();
        topo.add_link(r1, b, fast).unwrap();
        topo.add_link(a, r2, fast).unwrap();
        topo.add_link(r2, b, fast).unwrap();
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let mut m = RoutingMatrix::build(&d);
        let before = m.lookup(a, b).unwrap();
        // Slow down whichever first-hop pipe the current route uses.
        let used_pipe = before.pipes[0];
        d.pipe_attrs_mut(used_pipe).unwrap().latency = SimDuration::from_millis(50);
        m.rebuild(&d);
        let after = m.lookup(a, b).unwrap();
        assert_ne!(
            after.pipes[0], used_pipe,
            "route should avoid the slowed pipe"
        );
        assert_eq!(after.total_latency(&d), SimDuration::from_millis(2));
    }

    #[test]
    fn incremental_update_matches_scratch_rebuild_across_a_flap() {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let mut m = RoutingMatrix::build(&d);
        let v0 = m.version();
        // Fail one ring pipe (both directions of the link), then restore it;
        // after each step the incremental update must equal a from-scratch
        // build pair for pair.
        let vns = m.vns().to_vec();
        let victim = m.lookup(vns[0], vns[6]).unwrap().pipes[1];
        let original = d.pipe(victim).attrs;
        let check = |m: &RoutingMatrix, d: &DistilledTopology| {
            let scratch = RoutingMatrix::build(d);
            for &a in m.vns() {
                for &b in m.vns() {
                    assert_eq!(m.lookup(a, b), scratch.lookup(a, b), "{a}->{b}");
                }
            }
        };
        d.pipe_attrs_mut(victim).unwrap().bandwidth = mn_util::DataRate::ZERO;
        let down = m.update_pipes(&d, &[victim]);
        assert!(!down.is_empty(), "failing a used pipe rewires routes");
        assert!(m.version() > v0);
        check(&m, &d);
        *d.pipe_attrs_mut(victim).unwrap() = original;
        let up = m.update_pipes(&d, &[victim]);
        assert!(!up.is_empty(), "restoring the pipe rewires routes back");
        check(&m, &d);
    }

    #[test]
    fn update_touching_nothing_reports_empty_and_keeps_version() {
        let d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let v = m.version();
        // Same attributes: no cost change, nothing recomputed.
        let update = m.update_pipes(&d, &[mn_distill::PipeId(0)]);
        assert!(update.is_empty());
        assert_eq!(update.recomputed_sources, 0);
        assert_eq!(m.version(), v);
    }

    #[test]
    fn only_affected_sources_are_recomputed() {
        // Two disjoint duplex paths a1-r1-b1 and a2-r2-b2: failing a1's
        // access pipe can only affect sources that could route over it.
        let mut topo = mn_topology::Topology::new();
        let fast =
            mn_topology::LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
        let mut pair = || {
            let a = topo.add_node(mn_topology::NodeKind::Client);
            let r = topo.add_node(mn_topology::NodeKind::Stub);
            let b = topo.add_node(mn_topology::NodeKind::Client);
            topo.add_link(a, r, fast).unwrap();
            topo.add_link(r, b, fast).unwrap();
            (a, b)
        };
        let (a1, _b1) = pair();
        let (_a2, _b2) = pair();
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let mut m = RoutingMatrix::build(&d);
        let victim = d.out_pipes(a1)[0];
        d.pipe_attrs_mut(victim).unwrap().bandwidth = mn_util::DataRate::ZERO;
        let update = m.update_pipes(&d, &[victim]);
        // Only a1's own tree used the failed outbound pipe.
        assert_eq!(update.recomputed_sources, 1);
        assert!(update.changed_pairs.iter().all(|&(src, _)| src == a1));
        assert!(m.lookup(a1, _b1).is_none(), "a1 lost its only route out");
    }

    #[test]
    fn bandwidth_only_renegotiation_changes_no_routes() {
        // Routing cost is latency plus usability: halving a pipe's (nonzero)
        // bandwidth must not recompute or rewire anything.
        let mut d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let pipe = mn_distill::PipeId(0);
        let bw = d.pipe(pipe).attrs.bandwidth;
        d.pipe_attrs_mut(pipe).unwrap().bandwidth = bw.mul_f64(0.5);
        let update = m.update_pipes(&d, &[pipe]);
        assert!(update.is_empty());
        assert_eq!(update.recomputed_sources, 0);
    }

    #[test]
    fn provider_interface_clones_routes() {
        let d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let vns = m.vns().to_vec();
        let r = RouteProvider::route(&mut m, vns[0], vns[1]).unwrap();
        assert!(!r.is_empty());
        assert!(RouteProvider::route(&mut m, NodeId(0), vns[1]).is_none());
    }

    /// The reverse index must hold exactly the tree membership of the
    /// stored predecessor rows (`pipe_sources[p]` ≡ sources whose row names
    /// `p` at the pipe's head), and — after incremental maintenance — match
    /// the index a from-scratch build would seed.
    fn assert_reverse_index_exact(m: &RoutingMatrix, d: &DistilledTopology) {
        let nc = m.node_count;
        for pid in 0..d.pipe_count() {
            let p = PipeId(pid);
            let head = d.pipe(p).dst.index();
            let expected: Vec<u32> = (0..m.vn_count() as u32)
                .filter(|&si| m.pred[si as usize * nc + head] == pid as u32)
                .collect();
            assert_eq!(
                m.pipe_tree_sources(p),
                expected.as_slice(),
                "reverse index diverged from the stored trees for pipe {pid}"
            );
        }
        let fresh = RoutingMatrix::build(d);
        for pid in 0..d.pipe_count() {
            assert_eq!(
                m.pipe_tree_sources(PipeId(pid)),
                fresh.pipe_tree_sources(PipeId(pid)),
                "incrementally maintained index diverged from scratch for pipe {pid}"
            );
        }
    }

    #[test]
    fn reverse_index_matches_tree_membership() {
        let mut d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        assert_reverse_index_exact(&m, &d);
        // …and stays exact across a fail/restore flap maintained
        // incrementally.
        let victim = m.lookup(m.vns()[0], m.vns()[6]).unwrap().pipes[1];
        let original = d.pipe(victim).attrs;
        d.pipe_attrs_mut(victim).unwrap().bandwidth = DataRate::ZERO;
        m.update_pipes(&d, &[victim]);
        assert_reverse_index_exact(&m, &d);
        *d.pipe_attrs_mut(victim).unwrap() = original;
        m.update_pipes(&d, &[victim]);
        assert_reverse_index_exact(&m, &d);
    }

    #[test]
    fn flap_recomputes_exactly_the_reverse_index_set() {
        // The acceptance criterion of the tree-only design: a worsened pipe
        // recomputes precisely the trees in its reverse-index entry, and a
        // restore returns the index to its pre-failure state.
        let mut d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let victim = m.lookup(m.vns()[0], m.vns()[6]).unwrap().pipes[1];
        let before: Vec<u32> = m.pipe_tree_sources(victim).to_vec();
        assert!(!before.is_empty(), "a transit pipe carries some tree");
        let original = d.pipe(victim).attrs;
        d.pipe_attrs_mut(victim).unwrap().bandwidth = DataRate::ZERO;
        let down = m.update_pipes(&d, &[victim]);
        assert_eq!(
            down.recomputed_sources,
            before.len(),
            "down-flap recompute set must equal the pipe's reverse index"
        );
        assert!(
            m.pipe_tree_sources(victim).is_empty(),
            "a failed pipe sits in no tree"
        );
        *d.pipe_attrs_mut(victim).unwrap() = original;
        let up = m.update_pipes(&d, &[victim]);
        assert!(up.recomputed_sources > 0);
        assert_eq!(
            m.pipe_tree_sources(victim),
            before.as_slice(),
            "restore returns the reverse index to its pre-failure state"
        );
    }

    #[test]
    fn remove_then_add_source_round_trips_to_scratch_equality() {
        let d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let victim = m.vns()[3];
        let si = m.vn_index(victim).unwrap() as u32;
        let v = m.version();
        assert!(m.remove_source(victim));
        assert!(m.version() > v);
        assert_eq!(m.live_source_count(), 11);
        assert_eq!(m.vn_count(), 12, "the slot is tombstoned, not compacted");
        // The departed source routes nowhere; trees toward it are kept.
        assert!(m.lookup(victim, m.vns()[0]).is_none());
        assert!(m.vn_index(victim).is_none());
        for pid in 0..d.pipe_count() {
            assert!(
                !m.pipe_tree_sources(PipeId(pid)).contains(&si),
                "a removed tree must leave no reverse-index entries"
            );
        }
        // Rejoin reuses the tombstoned slot and restores scratch equality.
        assert!(m.add_source(&d, victim));
        assert_eq!(m.vn_index(victim), Some(si as usize));
        assert_eq!(m.live_source_count(), 12);
        let scratch = RoutingMatrix::build(&d);
        for &a in scratch.vns() {
            for &b in scratch.vns() {
                assert_eq!(m.lookup(a, b), scratch.lookup(a, b), "{a}->{b}");
            }
        }
        assert_reverse_index_exact(&m, &d);
    }

    #[test]
    fn add_source_rejects_live_and_unknown_nodes() {
        let d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let v = m.version();
        assert!(!m.add_source(&d, m.vns()[0]), "already a live source");
        assert!(!m.add_source(&d, NodeId(d.node_count())), "not a node");
        assert!(!m.remove_source(NodeId(0)), "a transit router is no source");
        let victim = m.vns()[5];
        assert!(m.remove_source(victim));
        assert!(!m.remove_source(victim), "double-leave is refused");
        assert_eq!(m.version(), v + 1, "refused churn must not bump version");
    }

    #[test]
    fn add_source_at_a_fresh_location_matches_direct_dijkstra() {
        // A node that was never a VN (a transit router) can become a source
        // — this is the rejoin-at-an-empty-location path.
        let d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let router = NodeId(0);
        assert!(m.add_source(&d, router));
        assert_eq!(m.vn_count(), 13, "no tombstone to reuse: the set grows");
        for &b in &m.vns().to_vec() {
            if b == DEAD_SOURCE || b == router {
                continue;
            }
            let expected = crate::route_between(&d, router, b).unwrap();
            assert_eq!(
                m.lookup(router, b).unwrap().hop_count(),
                expected.hop_count()
            );
        }
    }

    #[test]
    fn churn_storm_keeps_label_arrays_at_high_water() {
        // Sustained leave/join cycles reuse tombstoned slots: the label
        // arrays stay at the high-water source count.
        let d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let baseline = m.vn_count();
        let nodes = m.vns().to_vec();
        for round in 0..8 {
            for &n in nodes.iter().skip(round % 3).step_by(3) {
                assert!(m.remove_source(n));
            }
            for &n in nodes.iter().skip(round % 3).step_by(3) {
                assert!(m.add_source(&d, n));
            }
        }
        assert_eq!(m.vn_count(), baseline);
        assert_eq!(m.live_source_count(), baseline);
        let scratch = RoutingMatrix::build(&d);
        for &a in &nodes {
            for &b in &nodes {
                assert_eq!(m.lookup(a, b), scratch.lookup(a, b), "{a}->{b}");
            }
        }
        assert_reverse_index_exact(&m, &d);
    }

    #[test]
    fn update_pipes_skips_departed_sources() {
        // A pipe flap while a source is tombstoned must neither recompute
        // the dead tree nor resurrect its reverse-index entries.
        let mut d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let victim_vn = m.vns()[0];
        let flapped = m.lookup(victim_vn, m.vns()[6]).unwrap().pipes[1];
        let original = d.pipe(flapped).attrs;
        assert!(m.remove_source(victim_vn));
        d.pipe_attrs_mut(flapped).unwrap().bandwidth = DataRate::ZERO;
        let down = m.update_pipes(&d, &[flapped]);
        assert!(down.changed_pairs.iter().all(|&(s, _)| s != victim_vn));
        *d.pipe_attrs_mut(flapped).unwrap() = original;
        m.update_pipes(&d, &[flapped]);
        assert!(m.add_source(&d, victim_vn));
        let scratch = RoutingMatrix::build(&d);
        for &a in scratch.vns() {
            for &b in scratch.vns() {
                assert_eq!(m.lookup(a, b), scratch.lookup(a, b), "{a}->{b}");
            }
        }
        assert_reverse_index_exact(&m, &d);
    }

    #[test]
    fn codec_round_trip_preserves_state_and_future_updates() {
        // Capture a matrix mid-history (a flap plus a tombstoned source), so
        // the codec has to carry reverse-index diffs, free slots and the
        // version — not just a freshly built state.
        let mut d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let victim = m.lookup(m.vns()[0], m.vns()[6]).unwrap().pipes[1];
        let original = d.pipe(victim).attrs;
        d.pipe_attrs_mut(victim).unwrap().bandwidth = DataRate::ZERO;
        m.update_pipes(&d, &[victim]);
        let departed = m.vns()[4];
        assert!(m.remove_source(departed));

        let mut w = mn_util::ByteWriter::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        let mut restored =
            RoutingMatrix::decode(&mut mn_util::ByteReader::new(&bytes)).expect("decodes");

        // Byte-stable: re-encoding the restored matrix reproduces the bytes.
        let mut w2 = mn_util::ByteWriter::new();
        restored.encode(&mut w2);
        assert_eq!(bytes, w2.into_bytes());

        assert_eq!(restored.version(), m.version());
        assert_eq!(restored.live_source_count(), m.live_source_count());
        for &a in m.vns() {
            for &b in m.vns() {
                if a == DEAD_SOURCE || b == DEAD_SOURCE {
                    continue;
                }
                assert_eq!(m.lookup(a, b), restored.lookup(a, b), "{a}->{b}");
            }
        }
        // The restored matrix reacts to future changes identically.
        *d.pipe_attrs_mut(victim).unwrap() = original;
        let up_orig = m.update_pipes(&d, &[victim]);
        let up_restored = restored.update_pipes(&d, &[victim]);
        assert_eq!(up_orig, up_restored);
        assert!(restored.add_source(&d, departed));
        assert!(m.add_source(&d, departed));
        assert_eq!(m.vn_index(departed), restored.vn_index(departed));
        assert_reverse_index_exact(&restored, &d);
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let d = small_ring();
        let m = RoutingMatrix::build(&d);
        let mut w = mn_util::ByteWriter::new();
        m.encode(&mut w);
        let bytes = w.into_bytes();
        let truncated = &bytes[..bytes.len() / 2];
        assert!(RoutingMatrix::decode(&mut mn_util::ByteReader::new(truncated)).is_err());
    }

    #[test]
    fn materialize_at_is_allocation_free_on_a_warmed_buffer() {
        let d = small_ring();
        let m = RoutingMatrix::build(&d);
        let n = m.vn_count();
        let mut buf = Vec::with_capacity(64);
        // Warm once, then every further walk reuses the buffer.
        for s in 0..n {
            for t in 0..n {
                let _ = m.materialize_at(s, t, &mut buf);
            }
        }
        let cap = buf.capacity();
        for s in 0..n {
            for t in 0..n {
                let _ = std::hint::black_box(m.materialize_at(s, t, &mut buf));
            }
        }
        assert_eq!(buf.capacity(), cap, "warmed walks must not regrow");
    }
}
