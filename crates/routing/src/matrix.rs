//! The dense all-pairs routing matrix (the paper's default design).
//!
//! "This straightforward design allows fast indexing and scales to 10,000
//! VNs, but the routing tables consume O(n²) space." Routes are stored per
//! ordered VN pair; lookup is two array indexes. [`RoutingMatrix::rebuild`]
//! re-runs the all-pairs computation, which is how the emulation reacts to
//! link failures under the paper's "perfect routing protocol" assumption.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use serde::{Deserialize, Serialize};

use mn_distill::DistilledTopology;
use mn_topology::NodeId;

use crate::dijkstra::{
    pipe_cost, route_from_tree, shortest_route_tree_with_dist, Route, UNUSABLE_COST,
};
use crate::RouteProvider;

use mn_distill::PipeId;

/// What one [`RoutingMatrix::update_pipes`] call changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteUpdate {
    /// Ordered VN location pairs whose route changed (appeared, disappeared
    /// or was rewired). Callers re-wire exactly these pairs in their route
    /// tables.
    pub changed_pairs: Vec<(NodeId, NodeId)>,
    /// Number of sources whose shortest-route tree had to be recomputed.
    pub recomputed_sources: usize,
}

impl RouteUpdate {
    /// Returns `true` if no route changed.
    pub fn is_empty(&self) -> bool {
        self.changed_pairs.is_empty()
    }
}

/// Dense all-pairs route storage over the VN set of a distilled topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutingMatrix {
    /// The VN set, in index order.
    vns: Vec<NodeId>,
    /// Maps a VN's topology node id to its dense index.
    index_of: HashMap<NodeId, usize>,
    /// `routes[src_index * n + dst_index]`; `None` when unreachable.
    routes: Vec<Option<Route>>,
    /// Distance labels of every source's shortest-route tree
    /// (`dist[src_index * node_count + node]`, `u64::MAX` unreachable),
    /// kept so [`RoutingMatrix::update_pipes`] can bound which sources a
    /// pipe change affects without re-running Dijkstra for all of them.
    dist: Vec<u64>,
    /// Node count of the pipe graph the matrix was last (re)built against.
    node_count: usize,
    /// Per-pipe routing cost snapshot from the last (re)build/update.
    pipe_cost: Vec<u64>,
    /// Structural (attrs-independent) connected component of every node.
    /// Pipes never change endpoints at runtime — only attributes — so a
    /// pipe change can only ever affect sources and destinations inside its
    /// own structural component; [`RoutingMatrix::update_pipes`] scans those
    /// candidates instead of the whole VN set.
    node_component: Vec<u32>,
    /// VN indices per structural component, ascending.
    component_vns: Vec<Vec<u32>>,
    /// Node indices per structural component, ascending (bounds the
    /// distance-label refresh of a recomputed source).
    component_nodes: Vec<Vec<u32>>,
    /// Reusable scratch for the component-scoped Dijkstra of
    /// [`RoutingMatrix::update_pipes`]: row entries outside a call's
    /// component are never read or written, so only the component is
    /// re-initialised per recompute instead of memsetting O(nodes) arrays,
    /// and the heap's backing vector is recycled across recomputes so the
    /// incremental path performs no per-source allocation.
    scratch_dist: Vec<u64>,
    scratch_pred: Vec<Option<PipeId>>,
    scratch_heap: Vec<Reverse<(u64, NodeId)>>,
    /// Bumped by every rebuild and every non-empty incremental update.
    version: u64,
}

/// Component-scoped single-source shortest-route tree into reusable scratch
/// rows: only `nodes` (the source's structural component) is re-initialised,
/// and Dijkstra can only ever reach inside it, so the cost is
/// O(component log component), not O(graph). Tie-breaking is identical to
/// [`shortest_route_tree_with_dist`] (same heap ordering), which the
/// incremental-equals-scratch property suites rely on.
fn scoped_route_tree(
    topo: &DistilledTopology,
    source: NodeId,
    nodes: &[u32],
    dist: &mut [u64],
    pred: &mut [Option<PipeId>],
    heap_scratch: &mut Vec<Reverse<(u64, NodeId)>>,
) {
    for &u in nodes {
        dist[u as usize] = UNUSABLE_COST;
        pred[u as usize] = None;
    }
    if source.index() >= dist.len() {
        return;
    }
    heap_scratch.clear();
    let mut heap = BinaryHeap::from(std::mem::take(heap_scratch));
    dist[source.index()] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for &pipe_id in topo.out_pipes(u) {
            let cost = pipe_cost(&topo.pipe(pipe_id).attrs);
            if cost == UNUSABLE_COST {
                continue;
            }
            let nd = d.saturating_add(cost);
            let v = topo.pipe(pipe_id).dst;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                pred[v.index()] = Some(pipe_id);
                heap.push(Reverse((nd, v)));
            }
        }
    }
    // Hand the (drained) backing vector back for the next recompute.
    *heap_scratch = heap.into_vec();
}

impl RoutingMatrix {
    /// Pre-computes shortest-path routes among all pairs of VNs in the
    /// distilled topology.
    pub fn build(topo: &DistilledTopology) -> Self {
        let vns = topo.vns().to_vec();
        let mut matrix = RoutingMatrix {
            index_of: vns.iter().enumerate().map(|(i, &n)| (n, i)).collect(),
            routes: Vec::new(),
            vns,
            dist: Vec::new(),
            node_count: 0,
            pipe_cost: Vec::new(),
            node_component: Vec::new(),
            component_vns: Vec::new(),
            component_nodes: Vec::new(),
            scratch_dist: Vec::new(),
            scratch_pred: Vec::new(),
            scratch_heap: Vec::new(),
            version: 0,
        };
        matrix.rebuild(topo);
        matrix
    }

    /// Recomputes every route against the (possibly modified) pipe graph.
    /// Used after fault injection changes reachability or latencies.
    pub fn rebuild(&mut self, topo: &DistilledTopology) {
        let n = self.vns.len();
        self.node_count = topo.node_count();
        let mut routes = vec![None; n * n];
        let mut dist = vec![u64::MAX; n * self.node_count];
        for (si, &src) in self.vns.iter().enumerate() {
            let (pred, row) = shortest_route_tree_with_dist(topo, src);
            dist[si * self.node_count..(si + 1) * self.node_count].copy_from_slice(&row);
            for (di, &dst) in self.vns.iter().enumerate() {
                routes[si * n + di] = route_from_tree(topo, &pred, src, dst);
            }
        }
        self.routes = routes;
        self.dist = dist;
        self.pipe_cost = topo.pipes().map(|(_, p)| pipe_cost(&p.attrs)).collect();
        self.rebuild_components(topo);
        self.version += 1;
    }

    /// Recomputes the structural component index (union-find over the pipe
    /// graph's shape, ignoring attributes). Attribute changes can never
    /// move a node between structural components, so this only runs on
    /// (re)build.
    fn rebuild_components(&mut self, topo: &DistilledTopology) {
        fn find(parent: &mut [u32], x: u32) -> u32 {
            let mut root = x;
            while parent[root as usize] != root {
                root = parent[root as usize];
            }
            let mut cur = x;
            while parent[cur as usize] != root {
                let next = parent[cur as usize];
                parent[cur as usize] = root;
                cur = next;
            }
            root
        }
        let mut parent: Vec<u32> = (0..self.node_count as u32).collect();
        for (_, pipe) in topo.pipes() {
            let a = find(&mut parent, pipe.src.index() as u32);
            let b = find(&mut parent, pipe.dst.index() as u32);
            if a != b {
                parent[a as usize] = b;
            }
        }
        let mut id_of_root: HashMap<u32, u32> = HashMap::new();
        let mut node_component = vec![0u32; self.node_count];
        let mut component_nodes: Vec<Vec<u32>> = Vec::new();
        for u in 0..self.node_count as u32 {
            let root = find(&mut parent, u);
            let id = match id_of_root.get(&root) {
                Some(&id) => id,
                None => {
                    let id = component_nodes.len() as u32;
                    id_of_root.insert(root, id);
                    component_nodes.push(Vec::new());
                    id
                }
            };
            node_component[u as usize] = id;
            component_nodes[id as usize].push(u);
        }
        let mut component_vns: Vec<Vec<u32>> = vec![Vec::new(); component_nodes.len()];
        for (si, &vn) in self.vns.iter().enumerate() {
            if vn.index() < self.node_count {
                component_vns[node_component[vn.index()] as usize].push(si as u32);
            }
        }
        self.node_component = node_component;
        self.component_vns = component_vns;
        self.component_nodes = component_nodes;
    }

    /// Incrementally updates the matrix after the listed pipes of `topo`
    /// were mutated in place (failure, restore, latency/bandwidth
    /// renegotiation).
    ///
    /// Only sources whose shortest-route tree a change can affect are
    /// recomputed: a pipe that got *worse* matters only to sources whose
    /// distance labels show it on a shortest path, and a pipe that got
    /// *better* only to sources it can now undercut (checked against the
    /// stored labels). The result is exactly what a from-scratch
    /// [`RoutingMatrix::rebuild`] would produce — pinned by the
    /// `dynamics_invariants` property suite — at a cost proportional to the
    /// affected sources rather than the whole VN set.
    pub fn update_pipes(&mut self, topo: &DistilledTopology, changed: &[PipeId]) -> RouteUpdate {
        let n = self.vns.len();
        if self.dist.len() != n * topo.node_count() || self.pipe_cost.len() != topo.pipe_count() {
            // Shape mismatch (different pipe graph): fall back to a full
            // rebuild, reporting every rewired pair.
            let old = std::mem::take(&mut self.routes);
            self.rebuild(topo);
            let mut changed_pairs = Vec::new();
            for (si, &src) in self.vns.iter().enumerate() {
                for (di, &dst) in self.vns.iter().enumerate() {
                    if old.get(si * n + di) != Some(&self.routes[si * n + di]) {
                        changed_pairs.push((src, dst));
                    }
                }
            }
            return RouteUpdate {
                changed_pairs,
                recomputed_sources: n,
            };
        }
        // Classify each genuinely changed pipe by cost direction, resolving
        // its endpoint node indexes once — the affected-source scan below
        // runs for every VN and must be pure distance-label indexing.
        let mut worsened: Vec<(usize, usize, u64)> = Vec::new(); // (src, dst, old cost)
        let mut improved: Vec<(usize, usize, u64)> = Vec::new(); // (src, dst, new cost)
        for &p in changed {
            let old = self.pipe_cost[p.index()];
            let new = pipe_cost(&topo.pipe(p).attrs);
            if new == old {
                continue;
            }
            let pipe = topo.pipe(p);
            if new > old {
                // A pipe that was already unusable cannot sit on any stored
                // shortest path: worsening it further affects no source.
                if old != UNUSABLE_COST {
                    worsened.push((pipe.src.index(), pipe.dst.index(), old));
                }
            } else {
                improved.push((pipe.src.index(), pipe.dst.index(), new));
            }
            self.pipe_cost[p.index()] = new;
        }
        let mut update = RouteUpdate::default();
        if worsened.is_empty() && improved.is_empty() {
            return update;
        }
        // Candidate sources: a changed pipe can only affect sources in its
        // own structural component (anything else holds an unusable label
        // on the pipe's tail forever), so the scan below is proportional to
        // the components touched, not to the whole VN set. Candidates are
        // visited in ascending index order — identical to the full scan —
        // so the reported pair order cannot drift.
        let mut comps: Vec<u32> = worsened
            .iter()
            .chain(improved.iter())
            .map(|&(u, _, _)| self.node_component[u])
            .collect();
        comps.sort_unstable();
        comps.dedup();
        let mut candidates: Vec<u32> = comps
            .iter()
            .flat_map(|&c| self.component_vns[c as usize].iter().copied())
            .collect();
        candidates.sort_unstable();
        for &si in &candidates {
            let si = si as usize;
            let row = &self.dist[si * self.node_count..(si + 1) * self.node_count];
            // A worsened pipe affects this source only if the old labels put
            // it on a shortest path (label equality along the edge); an
            // improved pipe only if its new cost now ties or undercuts the
            // stored label of its head (`<=` so tie-breaking matches a
            // from-scratch recomputation exactly).
            let affected = worsened.iter().any(|&(u, v, old_cost)| {
                let du = row[u];
                du != UNUSABLE_COST && du.saturating_add(old_cost) == row[v]
            }) || improved.iter().any(|&(u, v, new_cost)| {
                let du = row[u];
                du != UNUSABLE_COST && du.saturating_add(new_cost) <= row[v]
            });
            if !affected {
                continue;
            }
            update.recomputed_sources += 1;
            let src = self.vns[si];
            // Recompute, refresh labels and re-derive routes only inside
            // the source's structural component: everything outside it is
            // unreachable in both the old and the fresh tree, so neither
            // labels nor routes can have changed there.
            let comp = self.node_component[src.index()] as usize;
            if self.scratch_dist.len() != self.node_count {
                self.scratch_dist = vec![UNUSABLE_COST; self.node_count];
                self.scratch_pred = vec![None; self.node_count];
            }
            let mut fresh = std::mem::take(&mut self.scratch_dist);
            let mut pred = std::mem::take(&mut self.scratch_pred);
            scoped_route_tree(
                topo,
                src,
                &self.component_nodes[comp],
                &mut fresh,
                &mut pred,
                &mut self.scratch_heap,
            );
            {
                let row = &mut self.dist[si * self.node_count..(si + 1) * self.node_count];
                for &u in &self.component_nodes[comp] {
                    row[u as usize] = fresh[u as usize];
                }
            }
            for &di in &self.component_vns[comp] {
                let di = di as usize;
                let dst = self.vns[di];
                let new_route = route_from_tree(topo, &pred, src, dst);
                let slot = &mut self.routes[si * n + di];
                if *slot != new_route {
                    *slot = new_route;
                    update.changed_pairs.push((src, dst));
                }
            }
            self.scratch_dist = fresh;
            self.scratch_pred = pred;
        }
        if !update.changed_pairs.is_empty() || update.recomputed_sources > 0 {
            self.version += 1;
        }
        update
    }

    /// Monotonic change counter: bumped by every rebuild and every
    /// incremental update that touched a source tree.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The VN set the matrix covers.
    pub fn vns(&self) -> &[NodeId] {
        &self.vns
    }

    /// Number of VNs.
    pub fn vn_count(&self) -> usize {
        self.vns.len()
    }

    /// Looks up a route without requiring `&mut self` (the matrix never
    /// computes lazily).
    pub fn lookup(&self, src: NodeId, dst: NodeId) -> Option<&Route> {
        let si = *self.index_of.get(&src)?;
        let di = *self.index_of.get(&dst)?;
        self.routes[si * self.vns.len() + di].as_ref()
    }

    /// The dense index of a VN in this matrix, or `None` for a node that is
    /// not a VN. Callers that resolve many pairs (the sharded route-table
    /// build) hash each node once and then use [`RoutingMatrix::route_at`].
    pub fn vn_index(&self, node: NodeId) -> Option<usize> {
        self.index_of.get(&node).copied()
    }

    /// Hash-free route lookup by dense VN indexes (see
    /// [`RoutingMatrix::vn_index`]).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn route_at(&self, src_index: usize, dst_index: usize) -> Option<&Route> {
        let n = self.vns.len();
        assert!(src_index < n && dst_index < n, "VN index out of range");
        self.routes[src_index * n + dst_index].as_ref()
    }

    /// Average route length in pipes over all reachable ordered pairs
    /// (excluding the trivial diagonal). Reported by the distillation
    /// experiments.
    pub fn mean_route_length(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for r in self.routes.iter().flatten() {
            if !r.is_empty() {
                total += r.hop_count();
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Longest route in pipes over all pairs.
    pub fn max_route_length(&self) -> usize {
        self.routes
            .iter()
            .flatten()
            .map(Route::hop_count)
            .max()
            .unwrap_or(0)
    }
}

impl RouteProvider for RoutingMatrix {
    fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Route> {
        self.lookup(src, dst).cloned()
    }

    fn stored_routes(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_distill::{distill, DistillationMode};
    use mn_topology::generators::{ring_topology, star_topology, RingParams, StarParams};
    use mn_util::{DataRate, SimDuration};

    fn small_ring() -> DistilledTopology {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        distill(&topo, DistillationMode::HopByHop)
    }

    #[test]
    fn matrix_covers_all_vn_pairs() {
        let d = small_ring();
        let m = RoutingMatrix::build(&d);
        assert_eq!(m.vn_count(), 12);
        assert_eq!(m.stored_routes(), 12 * 12);
        for &a in m.vns() {
            for &b in m.vns() {
                let r = m.lookup(a, b).unwrap();
                if a == b {
                    assert!(r.is_empty());
                } else {
                    assert!(r.hop_count() >= 2, "VN-to-VN routes cross two access links");
                }
            }
        }
    }

    #[test]
    fn matrix_routes_match_direct_dijkstra() {
        let d = small_ring();
        let m = RoutingMatrix::build(&d);
        let vns = m.vns().to_vec();
        for &a in &vns {
            for &b in &vns {
                let expected = crate::route_between(&d, a, b).unwrap();
                assert_eq!(m.lookup(a, b).unwrap().hop_count(), expected.hop_count());
            }
        }
    }

    #[test]
    fn lookup_unknown_vn_is_none() {
        let d = small_ring();
        let m = RoutingMatrix::build(&d);
        // Node 0 is a transit router, not a VN.
        let router = NodeId(0);
        assert!(m.lookup(router, m.vns()[0]).is_none());
    }

    #[test]
    fn star_routes_are_two_hops() {
        let topo = star_topology(&StarParams {
            clients: 20,
            ..StarParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let m = RoutingMatrix::build(&d);
        assert_eq!(m.max_route_length(), 2);
        assert!((m.mean_route_length() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rebuild_picks_up_latency_changes() {
        // Square of stubs with a client at two corners; raising one side's
        // latency shifts the route to the other side.
        let mut topo = mn_topology::Topology::new();
        let a = topo.add_node(mn_topology::NodeKind::Client);
        let r1 = topo.add_node(mn_topology::NodeKind::Stub);
        let r2 = topo.add_node(mn_topology::NodeKind::Stub);
        let b = topo.add_node(mn_topology::NodeKind::Client);
        let fast =
            mn_topology::LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
        topo.add_link(a, r1, fast).unwrap();
        topo.add_link(r1, b, fast).unwrap();
        topo.add_link(a, r2, fast).unwrap();
        topo.add_link(r2, b, fast).unwrap();
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let mut m = RoutingMatrix::build(&d);
        let before = m.lookup(a, b).unwrap().clone();
        // Slow down whichever first-hop pipe the current route uses.
        let used_pipe = before.pipes[0];
        d.pipe_attrs_mut(used_pipe).unwrap().latency = SimDuration::from_millis(50);
        m.rebuild(&d);
        let after = m.lookup(a, b).unwrap();
        assert_ne!(
            after.pipes[0], used_pipe,
            "route should avoid the slowed pipe"
        );
        assert_eq!(after.total_latency(&d), SimDuration::from_millis(2));
    }

    #[test]
    fn incremental_update_matches_scratch_rebuild_across_a_flap() {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let mut m = RoutingMatrix::build(&d);
        let v0 = m.version();
        // Fail one ring pipe (both directions of the link), then restore it;
        // after each step the incremental update must equal a from-scratch
        // build pair for pair.
        let vns = m.vns().to_vec();
        let victim = m.lookup(vns[0], vns[6]).unwrap().pipes[1];
        let original = d.pipe(victim).attrs;
        let check = |m: &RoutingMatrix, d: &DistilledTopology| {
            let scratch = RoutingMatrix::build(d);
            for &a in m.vns() {
                for &b in m.vns() {
                    assert_eq!(m.lookup(a, b), scratch.lookup(a, b), "{a}->{b}");
                }
            }
        };
        d.pipe_attrs_mut(victim).unwrap().bandwidth = mn_util::DataRate::ZERO;
        let down = m.update_pipes(&d, &[victim]);
        assert!(!down.is_empty(), "failing a used pipe rewires routes");
        assert!(m.version() > v0);
        check(&m, &d);
        *d.pipe_attrs_mut(victim).unwrap() = original;
        let up = m.update_pipes(&d, &[victim]);
        assert!(!up.is_empty(), "restoring the pipe rewires routes back");
        check(&m, &d);
    }

    #[test]
    fn update_touching_nothing_reports_empty_and_keeps_version() {
        let d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let v = m.version();
        // Same attributes: no cost change, nothing recomputed.
        let update = m.update_pipes(&d, &[mn_distill::PipeId(0)]);
        assert!(update.is_empty());
        assert_eq!(update.recomputed_sources, 0);
        assert_eq!(m.version(), v);
    }

    #[test]
    fn only_affected_sources_are_recomputed() {
        // Two disjoint duplex paths a1-r1-b1 and a2-r2-b2: failing a1's
        // access pipe can only affect sources that could route over it.
        let mut topo = mn_topology::Topology::new();
        let fast =
            mn_topology::LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
        let mut pair = || {
            let a = topo.add_node(mn_topology::NodeKind::Client);
            let r = topo.add_node(mn_topology::NodeKind::Stub);
            let b = topo.add_node(mn_topology::NodeKind::Client);
            topo.add_link(a, r, fast).unwrap();
            topo.add_link(r, b, fast).unwrap();
            (a, b)
        };
        let (a1, _b1) = pair();
        let (_a2, _b2) = pair();
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let mut m = RoutingMatrix::build(&d);
        let victim = d.out_pipes(a1)[0];
        d.pipe_attrs_mut(victim).unwrap().bandwidth = mn_util::DataRate::ZERO;
        let update = m.update_pipes(&d, &[victim]);
        // Only a1's own tree used the failed outbound pipe.
        assert_eq!(update.recomputed_sources, 1);
        assert!(update.changed_pairs.iter().all(|&(src, _)| src == a1));
        assert!(m.lookup(a1, _b1).is_none(), "a1 lost its only route out");
    }

    #[test]
    fn bandwidth_only_renegotiation_changes_no_routes() {
        // Routing cost is latency plus usability: halving a pipe's (nonzero)
        // bandwidth must not recompute or rewire anything.
        let mut d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let pipe = mn_distill::PipeId(0);
        let bw = d.pipe(pipe).attrs.bandwidth;
        d.pipe_attrs_mut(pipe).unwrap().bandwidth = bw.mul_f64(0.5);
        let update = m.update_pipes(&d, &[pipe]);
        assert!(update.is_empty());
        assert_eq!(update.recomputed_sources, 0);
    }

    #[test]
    fn provider_interface_clones_routes() {
        let d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let vns = m.vns().to_vec();
        let r = RouteProvider::route(&mut m, vns[0], vns[1]).unwrap();
        assert!(!r.is_empty());
        assert!(RouteProvider::route(&mut m, NodeId(0), vns[1]).is_none());
    }
}
