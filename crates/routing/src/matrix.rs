//! The dense all-pairs routing matrix (the paper's default design).
//!
//! "This straightforward design allows fast indexing and scales to 10,000
//! VNs, but the routing tables consume O(n²) space." Routes are stored per
//! ordered VN pair; lookup is two array indexes. [`RoutingMatrix::rebuild`]
//! re-runs the all-pairs computation, which is how the emulation reacts to
//! link failures under the paper's "perfect routing protocol" assumption.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use mn_distill::DistilledTopology;
use mn_topology::NodeId;

use crate::dijkstra::{
    pipe_cost, route_from_tree, shortest_route_tree_with_dist, Route, UNUSABLE_COST,
};
use crate::RouteProvider;

use mn_distill::PipeId;

/// What one [`RoutingMatrix::update_pipes`] call changed.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouteUpdate {
    /// Ordered VN location pairs whose route changed (appeared, disappeared
    /// or was rewired). Callers re-wire exactly these pairs in their route
    /// tables.
    pub changed_pairs: Vec<(NodeId, NodeId)>,
    /// Number of sources whose shortest-route tree had to be recomputed.
    pub recomputed_sources: usize,
}

impl RouteUpdate {
    /// Returns `true` if no route changed.
    pub fn is_empty(&self) -> bool {
        self.changed_pairs.is_empty()
    }
}

/// Dense all-pairs route storage over the VN set of a distilled topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutingMatrix {
    /// The VN set, in index order.
    vns: Vec<NodeId>,
    /// Maps a VN's topology node id to its dense index.
    index_of: HashMap<NodeId, usize>,
    /// `routes[src_index * n + dst_index]`; `None` when unreachable.
    routes: Vec<Option<Route>>,
    /// Distance labels of every source's shortest-route tree
    /// (`dist[src_index * node_count + node]`, `u64::MAX` unreachable),
    /// kept so [`RoutingMatrix::update_pipes`] can bound which sources a
    /// pipe change affects without re-running Dijkstra for all of them.
    dist: Vec<u64>,
    /// Node count of the pipe graph the matrix was last (re)built against.
    node_count: usize,
    /// Per-pipe routing cost snapshot from the last (re)build/update.
    pipe_cost: Vec<u64>,
    /// Bumped by every rebuild and every non-empty incremental update.
    version: u64,
}

impl RoutingMatrix {
    /// Pre-computes shortest-path routes among all pairs of VNs in the
    /// distilled topology.
    pub fn build(topo: &DistilledTopology) -> Self {
        let vns = topo.vns().to_vec();
        let mut matrix = RoutingMatrix {
            index_of: vns.iter().enumerate().map(|(i, &n)| (n, i)).collect(),
            routes: Vec::new(),
            vns,
            dist: Vec::new(),
            node_count: 0,
            pipe_cost: Vec::new(),
            version: 0,
        };
        matrix.rebuild(topo);
        matrix
    }

    /// Recomputes every route against the (possibly modified) pipe graph.
    /// Used after fault injection changes reachability or latencies.
    pub fn rebuild(&mut self, topo: &DistilledTopology) {
        let n = self.vns.len();
        self.node_count = topo.node_count();
        let mut routes = vec![None; n * n];
        let mut dist = vec![u64::MAX; n * self.node_count];
        for (si, &src) in self.vns.iter().enumerate() {
            let (pred, row) = shortest_route_tree_with_dist(topo, src);
            dist[si * self.node_count..(si + 1) * self.node_count].copy_from_slice(&row);
            for (di, &dst) in self.vns.iter().enumerate() {
                routes[si * n + di] = route_from_tree(topo, &pred, src, dst);
            }
        }
        self.routes = routes;
        self.dist = dist;
        self.pipe_cost = topo.pipes().map(|(_, p)| pipe_cost(&p.attrs)).collect();
        self.version += 1;
    }

    /// Incrementally updates the matrix after the listed pipes of `topo`
    /// were mutated in place (failure, restore, latency/bandwidth
    /// renegotiation).
    ///
    /// Only sources whose shortest-route tree a change can affect are
    /// recomputed: a pipe that got *worse* matters only to sources whose
    /// distance labels show it on a shortest path, and a pipe that got
    /// *better* only to sources it can now undercut (checked against the
    /// stored labels). The result is exactly what a from-scratch
    /// [`RoutingMatrix::rebuild`] would produce — pinned by the
    /// `dynamics_invariants` property suite — at a cost proportional to the
    /// affected sources rather than the whole VN set.
    pub fn update_pipes(&mut self, topo: &DistilledTopology, changed: &[PipeId]) -> RouteUpdate {
        let n = self.vns.len();
        if self.dist.len() != n * topo.node_count() || self.pipe_cost.len() != topo.pipe_count() {
            // Shape mismatch (different pipe graph): fall back to a full
            // rebuild, reporting every rewired pair.
            let old = std::mem::take(&mut self.routes);
            self.rebuild(topo);
            let mut changed_pairs = Vec::new();
            for (si, &src) in self.vns.iter().enumerate() {
                for (di, &dst) in self.vns.iter().enumerate() {
                    if old.get(si * n + di) != Some(&self.routes[si * n + di]) {
                        changed_pairs.push((src, dst));
                    }
                }
            }
            return RouteUpdate {
                changed_pairs,
                recomputed_sources: n,
            };
        }
        // Classify each genuinely changed pipe by cost direction.
        let mut worsened: Vec<(PipeId, u64)> = Vec::new(); // with old cost
        let mut improved: Vec<PipeId> = Vec::new(); // new cost in snapshot
        for &p in changed {
            let old = self.pipe_cost[p.index()];
            let new = pipe_cost(&topo.pipe(p).attrs);
            if new == old {
                continue;
            }
            if new > old {
                worsened.push((p, old));
            } else {
                improved.push(p);
            }
            self.pipe_cost[p.index()] = new;
        }
        let mut update = RouteUpdate::default();
        if worsened.is_empty() && improved.is_empty() {
            return update;
        }
        for si in 0..n {
            let row = &self.dist[si * self.node_count..(si + 1) * self.node_count];
            // A worsened pipe affects this source only if the old labels put
            // it on a shortest path (label equality along the edge); an
            // improved pipe only if its new cost now ties or undercuts the
            // stored label of its head (`<=` so tie-breaking matches a
            // from-scratch recomputation exactly).
            let affected = worsened.iter().any(|&(p, old_cost)| {
                let pipe = topo.pipe(p);
                let du = row[pipe.src.index()];
                du != UNUSABLE_COST
                    && old_cost != UNUSABLE_COST
                    && du.saturating_add(old_cost) == row[pipe.dst.index()]
            }) || improved.iter().any(|&p| {
                let pipe = topo.pipe(p);
                let du = row[pipe.src.index()];
                let new_cost = self.pipe_cost[p.index()];
                du != UNUSABLE_COST && du.saturating_add(new_cost) <= row[pipe.dst.index()]
            });
            if !affected {
                continue;
            }
            update.recomputed_sources += 1;
            let src = self.vns[si];
            let (pred, fresh) = shortest_route_tree_with_dist(topo, src);
            self.dist[si * self.node_count..(si + 1) * self.node_count].copy_from_slice(&fresh);
            for (di, &dst) in self.vns.iter().enumerate() {
                let new_route = route_from_tree(topo, &pred, src, dst);
                let slot = &mut self.routes[si * n + di];
                if *slot != new_route {
                    *slot = new_route;
                    update.changed_pairs.push((src, dst));
                }
            }
        }
        if !update.changed_pairs.is_empty() || update.recomputed_sources > 0 {
            self.version += 1;
        }
        update
    }

    /// Monotonic change counter: bumped by every rebuild and every
    /// incremental update that touched a source tree.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The VN set the matrix covers.
    pub fn vns(&self) -> &[NodeId] {
        &self.vns
    }

    /// Number of VNs.
    pub fn vn_count(&self) -> usize {
        self.vns.len()
    }

    /// Looks up a route without requiring `&mut self` (the matrix never
    /// computes lazily).
    pub fn lookup(&self, src: NodeId, dst: NodeId) -> Option<&Route> {
        let si = *self.index_of.get(&src)?;
        let di = *self.index_of.get(&dst)?;
        self.routes[si * self.vns.len() + di].as_ref()
    }

    /// Average route length in pipes over all reachable ordered pairs
    /// (excluding the trivial diagonal). Reported by the distillation
    /// experiments.
    pub fn mean_route_length(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for r in self.routes.iter().flatten() {
            if !r.is_empty() {
                total += r.hop_count();
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Longest route in pipes over all pairs.
    pub fn max_route_length(&self) -> usize {
        self.routes
            .iter()
            .flatten()
            .map(Route::hop_count)
            .max()
            .unwrap_or(0)
    }
}

impl RouteProvider for RoutingMatrix {
    fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Route> {
        self.lookup(src, dst).cloned()
    }

    fn stored_routes(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_distill::{distill, DistillationMode};
    use mn_topology::generators::{ring_topology, star_topology, RingParams, StarParams};
    use mn_util::{DataRate, SimDuration};

    fn small_ring() -> DistilledTopology {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        distill(&topo, DistillationMode::HopByHop)
    }

    #[test]
    fn matrix_covers_all_vn_pairs() {
        let d = small_ring();
        let m = RoutingMatrix::build(&d);
        assert_eq!(m.vn_count(), 12);
        assert_eq!(m.stored_routes(), 12 * 12);
        for &a in m.vns() {
            for &b in m.vns() {
                let r = m.lookup(a, b).unwrap();
                if a == b {
                    assert!(r.is_empty());
                } else {
                    assert!(r.hop_count() >= 2, "VN-to-VN routes cross two access links");
                }
            }
        }
    }

    #[test]
    fn matrix_routes_match_direct_dijkstra() {
        let d = small_ring();
        let m = RoutingMatrix::build(&d);
        let vns = m.vns().to_vec();
        for &a in &vns {
            for &b in &vns {
                let expected = crate::route_between(&d, a, b).unwrap();
                assert_eq!(m.lookup(a, b).unwrap().hop_count(), expected.hop_count());
            }
        }
    }

    #[test]
    fn lookup_unknown_vn_is_none() {
        let d = small_ring();
        let m = RoutingMatrix::build(&d);
        // Node 0 is a transit router, not a VN.
        let router = NodeId(0);
        assert!(m.lookup(router, m.vns()[0]).is_none());
    }

    #[test]
    fn star_routes_are_two_hops() {
        let topo = star_topology(&StarParams {
            clients: 20,
            ..StarParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let m = RoutingMatrix::build(&d);
        assert_eq!(m.max_route_length(), 2);
        assert!((m.mean_route_length() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rebuild_picks_up_latency_changes() {
        // Square of stubs with a client at two corners; raising one side's
        // latency shifts the route to the other side.
        let mut topo = mn_topology::Topology::new();
        let a = topo.add_node(mn_topology::NodeKind::Client);
        let r1 = topo.add_node(mn_topology::NodeKind::Stub);
        let r2 = topo.add_node(mn_topology::NodeKind::Stub);
        let b = topo.add_node(mn_topology::NodeKind::Client);
        let fast =
            mn_topology::LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
        topo.add_link(a, r1, fast).unwrap();
        topo.add_link(r1, b, fast).unwrap();
        topo.add_link(a, r2, fast).unwrap();
        topo.add_link(r2, b, fast).unwrap();
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let mut m = RoutingMatrix::build(&d);
        let before = m.lookup(a, b).unwrap().clone();
        // Slow down whichever first-hop pipe the current route uses.
        let used_pipe = before.pipes[0];
        d.pipe_attrs_mut(used_pipe).unwrap().latency = SimDuration::from_millis(50);
        m.rebuild(&d);
        let after = m.lookup(a, b).unwrap();
        assert_ne!(
            after.pipes[0], used_pipe,
            "route should avoid the slowed pipe"
        );
        assert_eq!(after.total_latency(&d), SimDuration::from_millis(2));
    }

    #[test]
    fn incremental_update_matches_scratch_rebuild_across_a_flap() {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let mut m = RoutingMatrix::build(&d);
        let v0 = m.version();
        // Fail one ring pipe (both directions of the link), then restore it;
        // after each step the incremental update must equal a from-scratch
        // build pair for pair.
        let vns = m.vns().to_vec();
        let victim = m.lookup(vns[0], vns[6]).unwrap().pipes[1];
        let original = d.pipe(victim).attrs;
        let check = |m: &RoutingMatrix, d: &DistilledTopology| {
            let scratch = RoutingMatrix::build(d);
            for &a in m.vns() {
                for &b in m.vns() {
                    assert_eq!(m.lookup(a, b), scratch.lookup(a, b), "{a}->{b}");
                }
            }
        };
        d.pipe_attrs_mut(victim).unwrap().bandwidth = mn_util::DataRate::ZERO;
        let down = m.update_pipes(&d, &[victim]);
        assert!(!down.is_empty(), "failing a used pipe rewires routes");
        assert!(m.version() > v0);
        check(&m, &d);
        *d.pipe_attrs_mut(victim).unwrap() = original;
        let up = m.update_pipes(&d, &[victim]);
        assert!(!up.is_empty(), "restoring the pipe rewires routes back");
        check(&m, &d);
    }

    #[test]
    fn update_touching_nothing_reports_empty_and_keeps_version() {
        let d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let v = m.version();
        // Same attributes: no cost change, nothing recomputed.
        let update = m.update_pipes(&d, &[mn_distill::PipeId(0)]);
        assert!(update.is_empty());
        assert_eq!(update.recomputed_sources, 0);
        assert_eq!(m.version(), v);
    }

    #[test]
    fn only_affected_sources_are_recomputed() {
        // Two disjoint duplex paths a1-r1-b1 and a2-r2-b2: failing a1's
        // access pipe can only affect sources that could route over it.
        let mut topo = mn_topology::Topology::new();
        let fast =
            mn_topology::LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
        let mut pair = || {
            let a = topo.add_node(mn_topology::NodeKind::Client);
            let r = topo.add_node(mn_topology::NodeKind::Stub);
            let b = topo.add_node(mn_topology::NodeKind::Client);
            topo.add_link(a, r, fast).unwrap();
            topo.add_link(r, b, fast).unwrap();
            (a, b)
        };
        let (a1, _b1) = pair();
        let (_a2, _b2) = pair();
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let mut m = RoutingMatrix::build(&d);
        let victim = d.out_pipes(a1)[0];
        d.pipe_attrs_mut(victim).unwrap().bandwidth = mn_util::DataRate::ZERO;
        let update = m.update_pipes(&d, &[victim]);
        // Only a1's own tree used the failed outbound pipe.
        assert_eq!(update.recomputed_sources, 1);
        assert!(update.changed_pairs.iter().all(|&(src, _)| src == a1));
        assert!(m.lookup(a1, _b1).is_none(), "a1 lost its only route out");
    }

    #[test]
    fn bandwidth_only_renegotiation_changes_no_routes() {
        // Routing cost is latency plus usability: halving a pipe's (nonzero)
        // bandwidth must not recompute or rewire anything.
        let mut d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let pipe = mn_distill::PipeId(0);
        let bw = d.pipe(pipe).attrs.bandwidth;
        d.pipe_attrs_mut(pipe).unwrap().bandwidth = bw.mul_f64(0.5);
        let update = m.update_pipes(&d, &[pipe]);
        assert!(update.is_empty());
        assert_eq!(update.recomputed_sources, 0);
    }

    #[test]
    fn provider_interface_clones_routes() {
        let d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let vns = m.vns().to_vec();
        let r = RouteProvider::route(&mut m, vns[0], vns[1]).unwrap();
        assert!(!r.is_empty());
        assert!(RouteProvider::route(&mut m, NodeId(0), vns[1]).is_none());
    }
}
