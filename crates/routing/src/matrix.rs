//! The dense all-pairs routing matrix (the paper's default design).
//!
//! "This straightforward design allows fast indexing and scales to 10,000
//! VNs, but the routing tables consume O(n²) space." Routes are stored per
//! ordered VN pair; lookup is two array indexes. [`RoutingMatrix::rebuild`]
//! re-runs the all-pairs computation, which is how the emulation reacts to
//! link failures under the paper's "perfect routing protocol" assumption.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use mn_distill::DistilledTopology;
use mn_topology::NodeId;

use crate::dijkstra::{route_from_tree, shortest_route_tree, Route};
use crate::RouteProvider;

/// Dense all-pairs route storage over the VN set of a distilled topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RoutingMatrix {
    /// The VN set, in index order.
    vns: Vec<NodeId>,
    /// Maps a VN's topology node id to its dense index.
    index_of: HashMap<NodeId, usize>,
    /// `routes[src_index * n + dst_index]`; `None` when unreachable.
    routes: Vec<Option<Route>>,
}

impl RoutingMatrix {
    /// Pre-computes shortest-path routes among all pairs of VNs in the
    /// distilled topology.
    pub fn build(topo: &DistilledTopology) -> Self {
        let vns = topo.vns().to_vec();
        let mut matrix = RoutingMatrix {
            index_of: vns.iter().enumerate().map(|(i, &n)| (n, i)).collect(),
            routes: Vec::new(),
            vns,
        };
        matrix.rebuild(topo);
        matrix
    }

    /// Recomputes every route against the (possibly modified) pipe graph.
    /// Used after fault injection changes reachability or latencies.
    pub fn rebuild(&mut self, topo: &DistilledTopology) {
        let n = self.vns.len();
        let mut routes = vec![None; n * n];
        for (si, &src) in self.vns.iter().enumerate() {
            let pred = shortest_route_tree(topo, src);
            for (di, &dst) in self.vns.iter().enumerate() {
                routes[si * n + di] = route_from_tree(topo, &pred, src, dst);
            }
        }
        self.routes = routes;
    }

    /// The VN set the matrix covers.
    pub fn vns(&self) -> &[NodeId] {
        &self.vns
    }

    /// Number of VNs.
    pub fn vn_count(&self) -> usize {
        self.vns.len()
    }

    /// Looks up a route without requiring `&mut self` (the matrix never
    /// computes lazily).
    pub fn lookup(&self, src: NodeId, dst: NodeId) -> Option<&Route> {
        let si = *self.index_of.get(&src)?;
        let di = *self.index_of.get(&dst)?;
        self.routes[si * self.vns.len() + di].as_ref()
    }

    /// Average route length in pipes over all reachable ordered pairs
    /// (excluding the trivial diagonal). Reported by the distillation
    /// experiments.
    pub fn mean_route_length(&self) -> f64 {
        let mut total = 0usize;
        let mut count = 0usize;
        for r in self.routes.iter().flatten() {
            if !r.is_empty() {
                total += r.hop_count();
                count += 1;
            }
        }
        if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        }
    }

    /// Longest route in pipes over all pairs.
    pub fn max_route_length(&self) -> usize {
        self.routes
            .iter()
            .flatten()
            .map(Route::hop_count)
            .max()
            .unwrap_or(0)
    }
}

impl RouteProvider for RoutingMatrix {
    fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Route> {
        self.lookup(src, dst).cloned()
    }

    fn stored_routes(&self) -> usize {
        self.routes.iter().filter(|r| r.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_distill::{distill, DistillationMode};
    use mn_topology::generators::{ring_topology, star_topology, RingParams, StarParams};
    use mn_util::{DataRate, SimDuration};

    fn small_ring() -> DistilledTopology {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        distill(&topo, DistillationMode::HopByHop)
    }

    #[test]
    fn matrix_covers_all_vn_pairs() {
        let d = small_ring();
        let m = RoutingMatrix::build(&d);
        assert_eq!(m.vn_count(), 12);
        assert_eq!(m.stored_routes(), 12 * 12);
        for &a in m.vns() {
            for &b in m.vns() {
                let r = m.lookup(a, b).unwrap();
                if a == b {
                    assert!(r.is_empty());
                } else {
                    assert!(r.hop_count() >= 2, "VN-to-VN routes cross two access links");
                }
            }
        }
    }

    #[test]
    fn matrix_routes_match_direct_dijkstra() {
        let d = small_ring();
        let m = RoutingMatrix::build(&d);
        let vns = m.vns().to_vec();
        for &a in &vns {
            for &b in &vns {
                let expected = crate::route_between(&d, a, b).unwrap();
                assert_eq!(m.lookup(a, b).unwrap().hop_count(), expected.hop_count());
            }
        }
    }

    #[test]
    fn lookup_unknown_vn_is_none() {
        let d = small_ring();
        let m = RoutingMatrix::build(&d);
        // Node 0 is a transit router, not a VN.
        let router = NodeId(0);
        assert!(m.lookup(router, m.vns()[0]).is_none());
    }

    #[test]
    fn star_routes_are_two_hops() {
        let topo = star_topology(&StarParams {
            clients: 20,
            ..StarParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let m = RoutingMatrix::build(&d);
        assert_eq!(m.max_route_length(), 2);
        assert!((m.mean_route_length() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn rebuild_picks_up_latency_changes() {
        // Square of stubs with a client at two corners; raising one side's
        // latency shifts the route to the other side.
        let mut topo = mn_topology::Topology::new();
        let a = topo.add_node(mn_topology::NodeKind::Client);
        let r1 = topo.add_node(mn_topology::NodeKind::Stub);
        let r2 = topo.add_node(mn_topology::NodeKind::Stub);
        let b = topo.add_node(mn_topology::NodeKind::Client);
        let fast =
            mn_topology::LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
        topo.add_link(a, r1, fast).unwrap();
        topo.add_link(r1, b, fast).unwrap();
        topo.add_link(a, r2, fast).unwrap();
        topo.add_link(r2, b, fast).unwrap();
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let mut m = RoutingMatrix::build(&d);
        let before = m.lookup(a, b).unwrap().clone();
        // Slow down whichever first-hop pipe the current route uses.
        let used_pipe = before.pipes[0];
        d.pipe_attrs_mut(used_pipe).unwrap().latency = SimDuration::from_millis(50);
        m.rebuild(&d);
        let after = m.lookup(a, b).unwrap();
        assert_ne!(
            after.pipes[0], used_pipe,
            "route should avoid the slowed pipe"
        );
        assert_eq!(after.total_latency(&d), SimDuration::from_millis(2));
    }

    #[test]
    fn provider_interface_clones_routes() {
        let d = small_ring();
        let mut m = RoutingMatrix::build(&d);
        let vns = m.vns().to_vec();
        let r = RouteProvider::route(&mut m, vns[0], vns[1]).unwrap();
        assert!(!r.is_empty());
        assert!(RouteProvider::route(&mut m, NodeId(0), vns[1]).is_none());
    }
}
