//! Hierarchical two-level route tables.
//!
//! The paper: "For common Internet-like topologies that cluster VNs on stub
//! domains, we could spread lookups among hierarchical but smaller tables,
//! trading less storage for a slight increase in lookup cost." This module
//! implements that extension: each VN records the single route segment to its
//! first-hop *gateway*, and a much smaller matrix stores gateway-to-gateway
//! routes. A VN-to-VN lookup composes three segments, so storage is
//! O(V + G²) for V VNs clustered behind G gateways instead of O(V²).
//!
//! Composition can be a hop longer than the true shortest path when the
//! optimum route would bypass a gateway; that is exactly the "slight increase
//! in lookup cost" trade-off the paper describes. For pipe graphs where VNs
//! connect directly (end-to-end distillations), direct pipes are used and the
//! gateway machinery is bypassed.

use std::collections::HashMap;

use mn_distill::{DistilledTopology, PipeId};
use mn_topology::NodeId;

use crate::dijkstra::{route_from_tree, shortest_route_tree, Route};
use crate::RouteProvider;

/// Two-level routing tables: VN → gateway segments plus a gateway matrix.
#[derive(Debug, Clone)]
pub struct HierarchicalRouter {
    topo: DistilledTopology,
    /// For each VN: (gateway node, pipe VN→gateway, pipe gateway→VN).
    vn_gateway: HashMap<NodeId, (NodeId, PipeId, PipeId)>,
    /// Gateways in index order.
    gateways: Vec<NodeId>,
    gateway_index: HashMap<NodeId, usize>,
    /// Dense gateway-to-gateway route matrix.
    gateway_routes: Vec<Option<Route>>,
}

impl HierarchicalRouter {
    /// Builds the two-level tables from a distilled topology.
    ///
    /// A VN's gateway is the far end of its lowest-latency outgoing pipe.
    /// VNs with no usable gateway (isolated nodes) simply have no entries and
    /// their lookups return `None`.
    pub fn build(topo: &DistilledTopology) -> Self {
        let mut vn_gateway = HashMap::new();
        let mut gateways = Vec::new();
        let mut gateway_index: HashMap<NodeId, usize> = HashMap::new();

        for &vn in topo.vns() {
            let best = topo
                .out_pipes(vn)
                .iter()
                .copied()
                .min_by_key(|&p| topo.pipe(p).attrs.latency);
            let Some(up) = best else { continue };
            let gw = topo.pipe(up).dst;
            let Some(down) = topo.find_pipe(gw, vn) else {
                continue;
            };
            vn_gateway.insert(vn, (gw, up, down));
            if let std::collections::hash_map::Entry::Vacant(e) = gateway_index.entry(gw) {
                e.insert(gateways.len());
                gateways.push(gw);
            }
        }

        let g = gateways.len();
        let mut gateway_routes = vec![None; g * g];
        for (gi, &gsrc) in gateways.iter().enumerate() {
            let pred = shortest_route_tree(topo, gsrc);
            for (gj, &gdst) in gateways.iter().enumerate() {
                gateway_routes[gi * g + gj] = route_from_tree(topo, &pred, gsrc, gdst);
            }
        }

        HierarchicalRouter {
            topo: topo.clone(),
            vn_gateway,
            gateways,
            gateway_index,
            gateway_routes,
        }
    }

    /// Number of distinct gateways discovered.
    pub fn gateway_count(&self) -> usize {
        self.gateways.len()
    }

    fn gateway_route(&self, a: NodeId, b: NodeId) -> Option<&Route> {
        let g = self.gateways.len();
        let ia = *self.gateway_index.get(&a)?;
        let ib = *self.gateway_index.get(&b)?;
        self.gateway_routes[ia * g + ib].as_ref()
    }
}

impl RouteProvider for HierarchicalRouter {
    fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Route> {
        if src == dst {
            return Some(Route::default());
        }
        // Direct pipe (end-to-end style graphs, or VNs on the same router in
        // a mesh) short-circuits the hierarchy.
        if let Some(direct) = self.topo.find_pipe(src, dst) {
            return Some(Route::new(vec![direct]));
        }
        let &(gw_src, up, _) = self.vn_gateway.get(&src)?;
        let &(gw_dst, _, down) = self.vn_gateway.get(&dst)?;
        let mut pipes = vec![up];
        if gw_src != gw_dst {
            let middle = self.gateway_route(gw_src, gw_dst)?;
            pipes.extend_from_slice(&middle.pipes);
        }
        pipes.push(down);
        Some(Route::new(pipes))
    }

    fn stored_routes(&self) -> usize {
        // Each VN stores two segments; the gateway matrix stores G² routes.
        self.vn_gateway.len() + self.gateway_routes.iter().filter(|r| r.is_some()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingMatrix;
    use mn_distill::{distill, DistillationMode};
    use mn_topology::generators::{
        ring_topology, transit_stub_topology, RingParams, TransitStubParams,
    };

    fn ring_graph() -> DistilledTopology {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 3,
            ..RingParams::default()
        });
        distill(&topo, DistillationMode::HopByHop)
    }

    #[test]
    fn gateway_discovery_finds_one_gateway_per_router() {
        let d = ring_graph();
        let h = HierarchicalRouter::build(&d);
        assert_eq!(h.gateway_count(), 6);
    }

    #[test]
    fn hierarchical_routes_connect_and_are_near_optimal() {
        let d = ring_graph();
        let matrix = RoutingMatrix::build(&d);
        let mut h = HierarchicalRouter::build(&d);
        for &a in matrix.vns() {
            for &b in matrix.vns() {
                if a == b {
                    continue;
                }
                let hr = h.route(a, b).expect("hierarchical route exists");
                let best = matrix.lookup(a, b).unwrap();
                // Route is valid: pipes chain from a to b.
                let mut cur = a;
                for &p in &hr.pipes {
                    assert_eq!(d.pipe(p).src, cur);
                    cur = d.pipe(p).dst;
                }
                assert_eq!(cur, b);
                // And within one hop of optimal.
                assert!(hr.hop_count() <= best.hop_count() + 1);
            }
        }
    }

    #[test]
    fn storage_is_much_smaller_than_matrix() {
        let ts = transit_stub_topology(&TransitStubParams::default());
        let d = distill(&ts.topology, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let h = HierarchicalRouter::build(&d);
        assert!(
            h.stored_routes() * 2 < matrix.stored_routes(),
            "hierarchical {} vs matrix {}",
            h.stored_routes(),
            matrix.stored_routes()
        );
    }

    #[test]
    fn direct_pipes_short_circuit() {
        let topo = ring_topology(&RingParams {
            routers: 4,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::EndToEnd);
        let mut h = HierarchicalRouter::build(&d);
        let vns = d.vns().to_vec();
        let r = h.route(vns[0], vns[3]).unwrap();
        assert_eq!(r.hop_count(), 1);
    }

    #[test]
    fn same_node_is_trivial_and_unknown_is_none() {
        let d = ring_graph();
        let mut h = HierarchicalRouter::build(&d);
        let vns = d.vns().to_vec();
        assert!(h.route(vns[0], vns[0]).unwrap().is_empty());
        // A transit router is not a VN and has no gateway entry.
        assert!(h.route(NodeId(0), vns[1]).is_none() || !d.vns().contains(&NodeId(0)));
    }
}
