//! Shortest-path computation over the distilled pipe graph.
//!
//! Routes minimise total pipe latency with hop count as the tie breaker,
//! mirroring the "shortest-path routes between all pairs of VNs" the Binding
//! phase installs. The functions here are the building blocks for every
//! [`crate::RouteProvider`] implementation.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use serde::{Deserialize, Serialize};

use mn_distill::{DistilledTopology, PipeId};
use mn_topology::NodeId;
use mn_util::SimDuration;

/// An ordered list of pipes a packet traverses from source to destination.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Route {
    /// The pipes, in traversal order. Empty for `src == dst`.
    pub pipes: Vec<PipeId>,
}

impl Route {
    /// Creates a route from a pipe list.
    pub fn new(pipes: Vec<PipeId>) -> Self {
        Route { pipes }
    }

    /// Number of emulated hops.
    pub fn hop_count(&self) -> usize {
        self.pipes.len()
    }

    /// Returns `true` for the trivial (same-node) route.
    pub fn is_empty(&self) -> bool {
        self.pipes.is_empty()
    }

    /// Sum of pipe latencies along the route — the propagation component of
    /// the end-to-end delay the emulation should impose.
    pub fn total_latency(&self, topo: &DistilledTopology) -> SimDuration {
        self.pipes.iter().map(|&p| topo.pipe(p).attrs.latency).sum()
    }

    /// Minimum pipe bandwidth along the route.
    pub fn bottleneck_bandwidth(&self, topo: &DistilledTopology) -> mn_util::DataRate {
        self.pipes
            .iter()
            .map(|&p| topo.pipe(p).attrs.bandwidth)
            .fold(
                mn_util::DataRate::from_bps(u64::MAX),
                mn_util::DataRate::min,
            )
    }
}

/// Routing cost of a pipe in the shortest-path computation: its latency in
/// nanoseconds plus one (the hop-count tie breaker), or [`UNUSABLE_COST`]
/// for a failed (zero-bandwidth) pipe, which routing must avoid — the
/// "perfect routing protocol" reacting to a failure.
pub fn pipe_cost(attrs: &mn_distill::PipeAttrs) -> u64 {
    if attrs.bandwidth.is_zero() {
        UNUSABLE_COST
    } else {
        attrs.latency.as_nanos() + 1
    }
}

/// The cost assigned to a pipe that cannot carry traffic.
pub const UNUSABLE_COST: u64 = u64::MAX;

/// Single-source shortest routes over the pipe graph.
///
/// Returns, for every node, the predecessor pipe on a latency-shortest route
/// from `source` (or `None` if unreachable or the source itself).
pub fn shortest_route_tree(topo: &DistilledTopology, source: NodeId) -> Vec<Option<PipeId>> {
    shortest_route_tree_with_dist(topo, source).0
}

/// Like [`shortest_route_tree`], but also returns the distance label of
/// every node (`u64::MAX` when unreachable). The incremental routing-matrix
/// update stores these labels to bound which sources a pipe change can
/// affect.
pub fn shortest_route_tree_with_dist(
    topo: &DistilledTopology,
    source: NodeId,
) -> (Vec<Option<PipeId>>, Vec<u64>) {
    let n = topo.node_count();
    let mut dist = vec![u64::MAX; n];
    let mut pred: Vec<Option<PipeId>> = vec![None; n];
    if source.index() >= n {
        return (pred, dist);
    }
    let mut heap = BinaryHeap::new();
    dist[source.index()] = 0;
    heap.push(Reverse((0u64, source)));
    while let Some(Reverse((d, u))) = heap.pop() {
        if d > dist[u.index()] {
            continue;
        }
        for &pipe_id in topo.out_pipes(u) {
            let cost = pipe_cost(&topo.pipe(pipe_id).attrs);
            if cost == UNUSABLE_COST {
                continue;
            }
            let nd = d.saturating_add(cost);
            let v = topo.pipe(pipe_id).dst;
            if nd < dist[v.index()] {
                dist[v.index()] = nd;
                pred[v.index()] = Some(pipe_id);
                heap.push(Reverse((nd, v)));
            }
        }
    }
    (pred, dist)
}

/// Extracts the route to `dst` from a predecessor tree rooted at `src`.
pub fn route_from_tree(
    topo: &DistilledTopology,
    pred: &[Option<PipeId>],
    src: NodeId,
    dst: NodeId,
) -> Option<Route> {
    if src == dst {
        return Some(Route::default());
    }
    let mut pipes = Vec::new();
    let mut cur = dst;
    while cur != src {
        let pipe_id = (*pred.get(cur.index())?)?;
        pipes.push(pipe_id);
        cur = topo.pipe(pipe_id).src;
    }
    pipes.reverse();
    Some(Route::new(pipes))
}

/// Computes the latency-shortest route between two nodes, or `None` if the
/// destination is unreachable.
pub fn route_between(topo: &DistilledTopology, src: NodeId, dst: NodeId) -> Option<Route> {
    if src == dst {
        return Some(Route::default());
    }
    let pred = shortest_route_tree(topo, src);
    route_from_tree(topo, &pred, src, dst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_distill::{distill, DistillationMode};
    use mn_topology::generators::{ring_topology, RingParams};
    use mn_topology::{LinkAttrs, NodeKind, Topology};
    use mn_util::DataRate;

    fn line_topology(n: usize) -> (Topology, Vec<NodeId>) {
        let mut t = Topology::new();
        let mut ids = Vec::new();
        for i in 0..n {
            let kind = if i == 0 || i == n - 1 {
                NodeKind::Client
            } else {
                NodeKind::Stub
            };
            ids.push(t.add_node(kind));
        }
        let attrs = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(5));
        for w in ids.windows(2) {
            t.add_link(w[0], w[1], attrs).unwrap();
        }
        (t, ids)
    }

    #[test]
    fn route_along_a_line() {
        let (topo, ids) = line_topology(5);
        let d = distill(&topo, DistillationMode::HopByHop);
        let route = route_between(&d, ids[0], ids[4]).unwrap();
        assert_eq!(route.hop_count(), 4);
        assert_eq!(route.total_latency(&d), SimDuration::from_millis(20));
        assert_eq!(route.bottleneck_bandwidth(&d), DataRate::from_mbps(10));
        // The route's pipes chain correctly from src to dst.
        let mut cur = ids[0];
        for &p in &route.pipes {
            assert_eq!(d.pipe(p).src, cur);
            cur = d.pipe(p).dst;
        }
        assert_eq!(cur, ids[4]);
    }

    #[test]
    fn trivial_route_is_empty() {
        let (topo, ids) = line_topology(3);
        let d = distill(&topo, DistillationMode::HopByHop);
        let route = route_between(&d, ids[0], ids[0]).unwrap();
        assert!(route.is_empty());
        assert_eq!(route.total_latency(&d), SimDuration::ZERO);
    }

    #[test]
    fn unreachable_returns_none() {
        let (mut topo, ids) = line_topology(3);
        let lonely = topo.add_node(NodeKind::Client);
        let d = distill(&topo, DistillationMode::HopByHop);
        assert!(route_between(&d, ids[0], lonely).is_none());
    }

    #[test]
    fn routes_prefer_lower_latency_not_fewer_hops() {
        // a -1ms- b -1ms- c  versus a -10ms- c direct.
        let mut t = Topology::new();
        let a = t.add_node(NodeKind::Client);
        let b = t.add_node(NodeKind::Stub);
        let c = t.add_node(NodeKind::Client);
        let fast = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
        let slow = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(10));
        t.add_link(a, b, fast).unwrap();
        t.add_link(b, c, fast).unwrap();
        t.add_link(a, c, slow).unwrap();
        let d = distill(&t, DistillationMode::HopByHop);
        let route = route_between(&d, a, c).unwrap();
        assert_eq!(route.hop_count(), 2);
        assert_eq!(route.total_latency(&d), SimDuration::from_millis(2));
    }

    #[test]
    fn ring_routes_take_shorter_arc() {
        let topo = ring_topology(&RingParams {
            routers: 8,
            clients_per_router: 1,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let vns: Vec<NodeId> = d.vns().to_vec();
        // Opposite VNs: 4 ring hops + 2 access hops.
        let route = route_between(&d, vns[0], vns[4]).unwrap();
        assert_eq!(route.hop_count(), 6);
        // Adjacent VNs: 1 ring hop + 2 access hops.
        let route = route_between(&d, vns[0], vns[1]).unwrap();
        assert_eq!(route.hop_count(), 3);
    }

    #[test]
    fn end_to_end_routes_are_single_pipe() {
        let topo = ring_topology(&RingParams {
            routers: 4,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::EndToEnd);
        let vns = d.vns().to_vec();
        for &a in &vns {
            for &b in &vns {
                if a == b {
                    continue;
                }
                let route = route_between(&d, a, b).unwrap();
                assert_eq!(route.hop_count(), 1, "{a}->{b}");
            }
        }
    }

    #[test]
    fn tree_reuse_matches_pairwise_routes() {
        let (topo, ids) = line_topology(6);
        let d = distill(&topo, DistillationMode::HopByHop);
        let pred = shortest_route_tree(&d, ids[0]);
        for &dst in &ids[1..] {
            let via_tree = route_from_tree(&d, &pred, ids[0], dst).unwrap();
            let direct = route_between(&d, ids[0], dst).unwrap();
            assert_eq!(via_tree, direct);
        }
    }
}
