//! Interned route storage with dense endpoint-pair indexing.
//!
//! The per-packet path must not hash: the core looks routes up for every
//! submitted packet, and descriptors reference their route on every hop and
//! on every inter-core tunnel. [`RouteTable`] therefore flattens the routing
//! state the Binding phase produces into two ID-indexed arrays:
//!
//! * `routes` — each **distinct** route stored exactly once, addressed by
//!   [`RouteId`] (the handle descriptors carry instead of a cloned route);
//! * `pair` — a dense `endpoint_count × endpoint_count` table mapping an
//!   ordered endpoint-index pair to its `RouteId`, one multiply and one array
//!   read per lookup.
//!
//! Endpoint indices are the dense VN indices of the binding (`VnId::index`),
//! but the table is deliberately typed on `usize` so `mn-routing` stays
//! independent of `mn-packet`. The table is immutable once built; reacting
//! to a routing change (link failure, new matrix) is an **explicit rebuild**
//! via [`RouteTable::build`] — there is no incremental cache to invalidate,
//! which is what made the old per-pair route cache double-store every route.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use mn_distill::PipeId;
use mn_topology::NodeId;

use crate::dijkstra::Route;
use crate::matrix::RoutingMatrix;

/// Handle to an interned route in a [`RouteTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RouteId(pub u32);

impl RouteId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel for "no route" in the dense pair table.
const NO_ROUTE: u32 = u32::MAX;

/// Dense, immutable route lookup state for one emulation.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    /// Each distinct route, stored once.
    routes: Vec<Route>,
    /// `pair[src * endpoint_count + dst]` is the route's id, or `NO_ROUTE`.
    pair: Vec<u32>,
    endpoint_count: usize,
    /// Content index over `routes` (pipe sequence → first id with that
    /// content), maintained by [`RouteTable::intern`] so incremental
    /// rewires reuse any retained route — a restored link maps back to its
    /// pre-failure `RouteId` instead of growing the table on every flap.
    by_content: HashMap<Vec<PipeId>, RouteId>,
    /// Bumped by every rebuild/rewire, so drivers and tests can observe
    /// that a routing change took effect.
    version: u64,
}

impl RouteTable {
    /// Creates an empty table over `endpoint_count` endpoints (all pairs
    /// unroutable). Routes are added with [`RouteTable::intern`] and wired to
    /// pairs with [`RouteTable::set_pair`].
    pub fn new(endpoint_count: usize) -> Self {
        RouteTable {
            routes: Vec::new(),
            pair: vec![NO_ROUTE; endpoint_count * endpoint_count],
            endpoint_count,
            by_content: HashMap::new(),
            version: 0,
        }
    }

    /// Flattens a routing matrix for the given endpoint locations:
    /// `locations[i]` is the topology node endpoint `i` is bound to. Each
    /// distinct location pair's route is interned once and shared by every
    /// endpoint pair bound to those locations. Same-location pairs stay
    /// unroutable — callers deliver those locally without touching a route.
    pub fn build(matrix: &RoutingMatrix, locations: &[NodeId]) -> Self {
        Self::build_preserving(Vec::new(), matrix, locations)
    }

    /// Rebuilds the table against a new matrix while keeping every route id
    /// of `prev` valid: the previous interned routes are retained (ids are
    /// never reassigned), and the pair table is re-wired, reusing any retained
    /// route whose pipe sequence is unchanged. Descriptors in flight across a
    /// routing change therefore keep resolving to the exact route they
    /// started on — the paper's semantics, where packets already inside a
    /// core finish on pre-failure routes — while new packets see only the new
    /// routes. Only routes the change actually rewired are interned anew, so
    /// repeated rebuilds (periodic fault injection) do not grow the table
    /// unless routes keep changing.
    pub fn rebuild(prev: &RouteTable, matrix: &RoutingMatrix, locations: &[NodeId]) -> Self {
        let mut table = Self::build_preserving(prev.routes.clone(), matrix, locations);
        table.version = prev.version + 1;
        table
    }

    fn build_preserving(routes: Vec<Route>, matrix: &RoutingMatrix, locations: &[NodeId]) -> Self {
        let mut table = RouteTable::new(locations.len());
        // Re-interning rebuilds the content index; dedup lets a rebuild
        // reuse every retained route that did not change. Build-time only:
        // the hot path never touches the maps.
        for route in routes {
            table.intern(route);
        }
        let mut by_location_pair: HashMap<(NodeId, NodeId), RouteId> = HashMap::new();
        for (si, &src_loc) in locations.iter().enumerate() {
            for (di, &dst_loc) in locations.iter().enumerate() {
                if si == di || src_loc == dst_loc {
                    continue;
                }
                let id = match by_location_pair.get(&(src_loc, dst_loc)) {
                    Some(&id) => id,
                    None => {
                        let Some(route) = matrix.lookup(src_loc, dst_loc) else {
                            continue;
                        };
                        let id = match table.by_content.get(&route.pipes) {
                            Some(&id) => id,
                            None => table.intern(route.clone()),
                        };
                        by_location_pair.insert((src_loc, dst_loc), id);
                        id
                    }
                };
                table.set_pair(si, di, id);
            }
        }
        table
    }

    /// Re-wires only the endpoint pairs bound to the given changed location
    /// pairs against the updated matrix, retaining every existing route id —
    /// the incremental counterpart of [`RouteTable::rebuild`] driven by
    /// [`RoutingMatrix::update_pipes`](crate::RoutingMatrix::update_pipes).
    /// A new route whose pipe sequence already exists (e.g. a restored link
    /// bringing back the pre-failure path) resolves to its old id, so
    /// oscillating links do not grow the table. Untouched pairs — and the
    /// `RouteId`s of descriptors in flight on them — are not visited at all.
    pub fn rewire_in_place(
        &mut self,
        matrix: &RoutingMatrix,
        locations: &[NodeId],
        changed: &[(NodeId, NodeId)],
    ) {
        assert_eq!(
            locations.len(),
            self.endpoint_count,
            "locations must match the endpoint set the table was built over"
        );
        if changed.is_empty() {
            return;
        }
        // Endpoint indices per location (build-time only, O(endpoints)).
        let mut endpoints_at: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for (i, &loc) in locations.iter().enumerate() {
            endpoints_at.entry(loc).or_default().push(i);
        }
        for &(src_loc, dst_loc) in changed {
            if src_loc == dst_loc {
                continue; // same-location pairs stay local, never routed
            }
            let (Some(srcs), Some(dsts)) = (endpoints_at.get(&src_loc), endpoints_at.get(&dst_loc))
            else {
                continue; // no endpoint bound there: nothing to rewire
            };
            // Resolve the pair's new route id once.
            let id = match matrix.lookup(src_loc, dst_loc) {
                Some(route) => Some(match self.by_content.get(&route.pipes).copied() {
                    Some(id) => id,
                    None => self.intern(route.clone()),
                }),
                None => None,
            };
            for &si in srcs {
                for &di in dsts {
                    let slot = &mut self.pair[si * self.endpoint_count + di];
                    *slot = id.map_or(NO_ROUTE, |id| id.0);
                }
            }
        }
        self.version += 1;
    }

    /// Stores a route and returns its handle; the content index keeps the
    /// first id interned for any given pipe sequence, so later rewires
    /// dedup against it. Callers wiring pairs by hand are still responsible
    /// for reusing ids where they want sharing (see [`RouteTable::build`]).
    pub fn intern(&mut self, route: Route) -> RouteId {
        assert!(
            self.routes.len() < NO_ROUTE as usize,
            "route table overflow"
        );
        let id = RouteId(self.routes.len() as u32);
        self.by_content.entry(route.pipes.clone()).or_insert(id);
        self.routes.push(route);
        id
    }

    /// Monotonic change counter, bumped by every rewire.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Wires an ordered endpoint pair to an interned route.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint or the route id is out of range.
    pub fn set_pair(&mut self, src: usize, dst: usize, id: RouteId) {
        assert!(src < self.endpoint_count, "src endpoint out of range");
        assert!(dst < self.endpoint_count, "dst endpoint out of range");
        assert!(id.index() < self.routes.len(), "route id out of range");
        self.pair[src * self.endpoint_count + dst] = id.0;
    }

    /// The route for an ordered endpoint pair, or `None` if the pair is
    /// unroutable or either index is out of range. This is the per-packet
    /// lookup: bounds checks, one multiply, one array read.
    #[inline]
    pub fn route_id(&self, src: usize, dst: usize) -> Option<RouteId> {
        if src >= self.endpoint_count || dst >= self.endpoint_count {
            return None;
        }
        match self.pair[src * self.endpoint_count + dst] {
            NO_ROUTE => None,
            id => Some(RouteId(id)),
        }
    }

    /// The interned route behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this table.
    #[inline]
    pub fn route(&self, id: RouteId) -> &Route {
        &self.routes[id.index()]
    }

    /// The pipe sequence of an interned route (the per-hop access).
    #[inline]
    pub fn pipes(&self, id: RouteId) -> &[PipeId] {
        &self.routes[id.index()].pipes
    }

    /// Number of distinct routes stored.
    pub fn route_count(&self) -> usize {
        self.routes.len()
    }

    /// Number of endpoints the pair table covers.
    pub fn endpoint_count(&self) -> usize {
        self.endpoint_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_distill::{distill, DistillationMode};
    use mn_topology::generators::{ring_topology, RingParams};

    fn ring_table() -> (RouteTable, usize) {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let locations = d.vns().to_vec();
        let n = locations.len();
        (RouteTable::build(&matrix, &locations), n)
    }

    #[test]
    fn covers_every_distinct_pair() {
        let (table, n) = ring_table();
        assert_eq!(table.endpoint_count(), n);
        for s in 0..n {
            for d in 0..n {
                let id = table.route_id(s, d);
                if s == d {
                    assert!(id.is_none(), "diagonal pairs are local, not routed");
                } else {
                    let id = id.expect("connected ring has all-pairs routes");
                    assert!(table.pipes(id).len() >= 2);
                }
            }
        }
    }

    #[test]
    fn routes_are_interned_not_duplicated() {
        let (table, n) = ring_table();
        // At most one stored route per ordered pair, and strictly fewer than
        // the pair count whenever any two pairs share a location pair (here
        // locations are unique per VN, so it is exactly n*(n-1)).
        assert_eq!(table.route_count(), n * (n - 1));
        // Distinct pairs resolve to distinct interned routes at most once:
        // the same id is returned for repeated lookups, with no copy.
        let a = table.route_id(0, 1).unwrap();
        let b = table.route_id(0, 1).unwrap();
        assert_eq!(a, b);
        assert!(std::ptr::eq(table.route(a), table.route(b)));
    }

    #[test]
    fn shared_locations_share_one_route() {
        let topo = ring_topology(&RingParams {
            routers: 4,
            clients_per_router: 1,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        // Bind two endpoints to every location: 8 endpoints over 4 locations.
        let mut locations = d.vns().to_vec();
        locations.extend(d.vns().to_vec());
        let table = RouteTable::build(&matrix, &locations);
        let n = d.vns().len();
        // Endpoint i and i+n share a location, so (i, j) and (i+n, j) must
        // resolve to the same interned route.
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                assert_eq!(table.route_id(i, j), table.route_id(i + n, j));
            }
        }
        // Same-location pairs are unroutable (handled as local delivery).
        for i in 0..n {
            assert!(table.route_id(i, i + n).is_none());
        }
        // 4 locations -> 12 distinct ordered location pairs, stored once each.
        assert_eq!(table.route_count(), 12);
    }

    #[test]
    fn rebuild_preserves_ids_and_reuses_unchanged_routes() {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let locations = d.vns().to_vec();
        let first = RouteTable::build(&matrix, &locations);
        // Rebuilding against an unchanged matrix must not grow the table:
        // every pair resolves to the same retained route id.
        let rebuilt = RouteTable::rebuild(&first, &matrix, &locations);
        assert_eq!(rebuilt.route_count(), first.route_count());
        let n = locations.len();
        for s in 0..n {
            for t in 0..n {
                assert_eq!(rebuilt.route_id(s, t), first.route_id(s, t));
                if let Some(id) = first.route_id(s, t) {
                    assert_eq!(rebuilt.pipes(id), first.pipes(id));
                }
            }
        }
        // Ten no-op rebuilds still do not grow it.
        let mut table = rebuilt;
        for _ in 0..10 {
            table = RouteTable::rebuild(&table, &matrix, &locations);
        }
        assert_eq!(table.route_count(), first.route_count());
    }

    #[test]
    fn rewire_preserves_untouched_ids_and_dedups_restored_routes() {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let mut matrix = RoutingMatrix::build(&d);
        let locations = d.vns().to_vec();
        let mut table = RouteTable::build(&matrix, &locations);
        let baseline: Vec<Option<RouteId>> = (0..locations.len() * locations.len())
            .map(|i| table.route_id(i / locations.len(), i % locations.len()))
            .collect();
        let count_after_build = table.route_count();
        // Fail one transit pipe both ways, rewire only the changed pairs.
        let victim = matrix.lookup(locations[0], locations[6]).unwrap().pipes[1];
        let reverse = {
            let p = d.pipe(victim);
            d.find_pipe(p.dst, p.src).expect("duplex link")
        };
        let original = d.pipe(victim).attrs;
        let flap = |d: &mut mn_distill::DistilledTopology,
                    matrix: &mut RoutingMatrix,
                    table: &mut RouteTable,
                    attrs: mn_distill::PipeAttrs| {
            *d.pipe_attrs_mut(victim).unwrap() = attrs;
            *d.pipe_attrs_mut(reverse).unwrap() = attrs;
            let update = matrix.update_pipes(d, &[victim, reverse]);
            assert!(!update.is_empty());
            table.rewire_in_place(matrix, &locations, &update.changed_pairs);
            update
        };
        let failed = mn_distill::PipeAttrs {
            bandwidth: mn_util::DataRate::ZERO,
            ..original
        };
        let down = flap(&mut d, &mut matrix, &mut table, failed);
        let count_after_down = table.route_count();
        // Untouched pairs keep their exact RouteId; changed pairs resolve to
        // routes avoiding the failed pipe.
        let n = locations.len();
        let changed: std::collections::HashSet<(usize, usize)> = down
            .changed_pairs
            .iter()
            .map(|&(a, b)| {
                let si = locations.iter().position(|&l| l == a).unwrap();
                let di = locations.iter().position(|&l| l == b).unwrap();
                (si, di)
            })
            .collect();
        for s in 0..n {
            for t in 0..n {
                if changed.contains(&(s, t)) {
                    if let Some(id) = table.route_id(s, t) {
                        assert!(!table.pipes(id).contains(&victim));
                        assert!(!table.pipes(id).contains(&reverse));
                    }
                } else {
                    assert_eq!(
                        table.route_id(s, t),
                        baseline[s * n + t],
                        "untouched pair ({s},{t}) must keep its RouteId"
                    );
                }
            }
        }
        // Restore: every pair maps back to its original id, and a second
        // full flap cycle does not grow the table (oscillation-safe dedup).
        flap(&mut d, &mut matrix, &mut table, original);
        for s in 0..n {
            for t in 0..n {
                assert_eq!(table.route_id(s, t), baseline[s * n + t]);
            }
        }
        assert_eq!(table.route_count(), count_after_down);
        flap(&mut d, &mut matrix, &mut table, failed);
        flap(&mut d, &mut matrix, &mut table, original);
        assert_eq!(table.route_count(), count_after_down);
        assert!(
            count_after_down > count_after_build,
            "detour routes interned"
        );
        assert_eq!(table.version(), 4, "one bump per rewire");
    }

    #[test]
    fn out_of_range_lookups_are_none() {
        let (table, n) = ring_table();
        assert!(table.route_id(n, 0).is_none());
        assert!(table.route_id(0, n + 100).is_none());
        assert!(table.route_id(usize::MAX, usize::MAX).is_none());
    }

    #[test]
    fn manual_construction_for_tests() {
        let mut table = RouteTable::new(2);
        let id = table.intern(Route::new(vec![PipeId(3), PipeId(5)]));
        table.set_pair(0, 1, id);
        assert_eq!(table.route_id(0, 1), Some(id));
        assert_eq!(table.route_id(1, 0), None);
        assert_eq!(table.pipes(id), &[PipeId(3), PipeId(5)]);
    }
}
