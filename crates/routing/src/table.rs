//! Sharded copy-on-write route storage with dense per-source row shards.
//!
//! The per-packet path must not hash: the core looks routes up for every
//! submitted packet, and descriptors reference their route on every hop and
//! on every inter-core tunnel. [`RouteTable`] therefore flattens the routing
//! state the Binding phase produces into ID-indexed structures — but unlike
//! the original dense `endpoint_count²` pair table, the state is **sharded
//! per source endpoint** and published copy-on-write:
//!
//! * `store` — each **distinct** route stored exactly once, addressed by
//!   [`RouteId`] (the handle descriptors carry instead of a cloned route).
//!   Routes live in sealed `Arc<[Route]>` chunks, so cloning a table for a
//!   copy-on-write publish bumps one reference count per chunk instead of
//!   deep-copying every route.
//! * `rows` — one row shard per source endpoint mapping a destination
//!   *column* (the destination's location slot) to its raw `RouteId`,
//!   page-grouped into shared blocks of [`BLOCK_ROWS`] rows. A row stores
//!   only the window `[base, base + width)` that actually holds routable
//!   columns: narrow windows (≤ 4 entries) are kept inline in the block
//!   with no heap allocation at all, wider windows spill to a shared
//!   `Arc<[u32]>`. Because co-located endpoints share a **column** as well
//!   as a row allocation, both axes compress: row width is bounded by the
//!   location count, and route-state memory is O(locations²) plus one
//!   dense column map — not O(endpoints²) — which is what lets tens of
//!   thousands of VNs multiplex onto one emulation.
//!
//! The per-packet lookup is a fixed chain of indexed loads — destination
//! column, block, row shard, slot (inline rows resolve the slot inside the
//! already-loaded shard) — with no hashing, no allocation, and no
//! data-dependent depth.
//!
//! **Reconfiguration is O(changed).** [`RouteTable::rewire_in_place`]
//! patches only the row shards whose routes actually changed, and a
//! copy-on-write publish clones only the blocks holding them: untouched
//! blocks and untouched spilled rows keep literally the same allocation
//! across the publish (`Arc` identity is pinned by tests), so a 1-link
//! flap costs O(affected sources + touched blocks) instead of copying
//! `endpoint_count²` entries — flat in the endpoint count.
//! [`RouteTable::rebuild`] likewise carries the route store *and* the
//! content-dedup index forward structurally — a rebuild that changes
//! nothing re-interns nothing.
//!
//! Endpoint indices are the dense VN indices of the binding (`VnId::index`),
//! but the table is deliberately typed on `usize` so `mn-routing` stays
//! independent of `mn-packet`. The published table is immutable from the
//! cores' point of view: a routing change builds the next generation (cheap,
//! structurally shared) and swaps the `Arc<RouteTable>`.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use mn_distill::PipeId;
use mn_topology::NodeId;

use crate::dijkstra::Route;
use crate::matrix::RoutingMatrix;

/// Handle to an interned route in a [`RouteTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RouteId(pub u32);

impl RouteId {
    /// Returns the raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Sentinel for "no route" in the row shards.
const NO_ROUTE: u32 = u32::MAX;

/// Widest row window kept inline in the shard table. Inline rows cost no
/// heap allocation and no reference-count traffic on a copy-on-write
/// publish — for row-sparse workloads (disjoint path pairs) the whole pair
/// mapping is a flat memcpy.
const INLINE_ROW_CAP: usize = 4;

/// Routes per sealed chunk of the append-only route store.
const ROUTE_CHUNK: usize = 1024;

/// Source rows per shared row block. A copy-on-write publish clones the
/// block table (`endpoints / BLOCK_ROWS` reference bumps) plus only the
/// blocks holding patched rows, so publish cost is O(touched blocks), flat
/// in the endpoint count for a fixed-fanout change.
const BLOCK_ROWS: usize = 1024;

/// Content-index overlay depth at which an insert flattens the chain back
/// into a single map (amortised; overlays only stack when a rewire interns
/// genuinely new route content).
const INDEX_FLATTEN_DEPTH: u32 = 16;

/// One source endpoint's row shard: destination *column* → raw `RouteId`,
/// stored as a dense window over the columns that are actually routable.
/// For built tables a column is a destination location slot — co-located
/// endpoints share one column, so row width is bounded by the location
/// count, not the endpoint count; hand-assembled tables use the identity
/// mapping (column = endpoint index).
#[derive(Debug, Clone)]
enum RowShard {
    /// Every destination unroutable (also the [`RouteTable::new`] initial
    /// state).
    Empty,
    /// A window of at most [`INLINE_ROW_CAP`] destinations, stored inline.
    Inline {
        base: u32,
        len: u8,
        slots: [u32; INLINE_ROW_CAP],
    },
    /// A wider window, heap-allocated and shared copy-on-write: co-located
    /// endpoints (identical rows) and successive table generations
    /// (untouched rows) all point at the same allocation.
    Spilled { base: u32, slots: Arc<[u32]> },
}

impl RowShard {
    /// The raw id for a destination (`NO_ROUTE` outside the window). This
    /// is half of the per-packet lookup: one window test, one slot read.
    #[inline]
    fn raw(&self, dst: usize) -> u32 {
        match self {
            RowShard::Empty => NO_ROUTE,
            RowShard::Inline { base, len, slots } => {
                let i = dst.wrapping_sub(*base as usize);
                if i < *len as usize {
                    slots[i]
                } else {
                    NO_ROUTE
                }
            }
            RowShard::Spilled { base, slots } => {
                let i = dst.wrapping_sub(*base as usize);
                if i < slots.len() {
                    slots[i]
                } else {
                    NO_ROUTE
                }
            }
        }
    }

    /// The stored window as `(base, width)`.
    fn window(&self) -> (usize, usize) {
        match self {
            RowShard::Empty => (0, 0),
            RowShard::Inline { base, len, .. } => (*base as usize, *len as usize),
            RowShard::Spilled { base, slots } => (*base as usize, slots.len()),
        }
    }

    /// Normalises a window of raw ids into shard form: unroutable edges are
    /// trimmed, all-unroutable collapses to [`RowShard::Empty`], narrow
    /// windows inline, wide ones spill to a fresh shared allocation.
    fn from_window(base: usize, values: &[u32]) -> RowShard {
        let Some(first) = values.iter().position(|&v| v != NO_ROUTE) else {
            return RowShard::Empty;
        };
        let last = values
            .iter()
            .rposition(|&v| v != NO_ROUTE)
            .expect("a first routable entry implies a last");
        let trimmed = &values[first..=last];
        let base = (base + first) as u32;
        if trimmed.len() <= INLINE_ROW_CAP {
            let mut slots = [NO_ROUTE; INLINE_ROW_CAP];
            slots[..trimmed.len()].copy_from_slice(trimmed);
            RowShard::Inline {
                base,
                len: trimmed.len() as u8,
                slots,
            }
        } else {
            RowShard::Spilled {
                base,
                slots: trimmed.into(),
            }
        }
    }

    /// `true` when two shards are literally the same storage: a shared slot
    /// allocation for spilled rows, bit-identical content for the
    /// allocation-free forms.
    fn same_storage(&self, other: &RowShard) -> bool {
        match (self, other) {
            (RowShard::Empty, RowShard::Empty) => true,
            (
                RowShard::Inline { base, len, slots },
                RowShard::Inline {
                    base: b,
                    len: l,
                    slots: s,
                },
            ) => base == b && len == l && slots == s,
            (RowShard::Spilled { slots: a, .. }, RowShard::Spilled { slots: b, .. }) => {
                Arc::ptr_eq(a, b)
            }
            _ => false,
        }
    }

    /// Applies `patches` (destination index, new raw id), returning the
    /// patched row — or `None` when every patch matches the stored value,
    /// leaving the shard (and its shared allocation) untouched. Windows
    /// grow to cover newly routable destinations and are re-trimmed, so an
    /// oscillating link returns the row to its exact pre-failure form.
    ///
    /// When every routable patch lands inside the stored window, the
    /// window cannot change and the patch takes an early-out: one slot
    /// copy, patches written in place, no re-trim. Clearing patches keep
    /// the stored bounds on this path — re-deriving them is an O(width)
    /// normalisation that a flapping link would pay twice per flap, and a
    /// kept window is semantically identical (interior gaps already read
    /// as unroutable) while never exceeding the row's high-water width.
    fn patched(&self, patches: &[(usize, u32)]) -> Option<RowShard> {
        if patches.iter().all(|&(d, raw)| self.raw(d) == raw) {
            return None;
        }
        let (base, width) = self.window();
        if width > 0
            && patches
                .iter()
                .all(|&(d, raw)| raw == NO_ROUTE || d.wrapping_sub(base) < width)
        {
            return Some(self.patched_in_window(patches));
        }
        let (mut lo, mut hi) = if width == 0 {
            (usize::MAX, 0)
        } else {
            (base, base + width)
        };
        for &(d, raw) in patches {
            if raw != NO_ROUTE {
                lo = lo.min(d);
                hi = hi.max(d + 1);
            }
        }
        if lo >= hi {
            // Every remaining patch clears entries of a row that had none:
            // unreachable because the no-op test above would have caught it,
            // but collapse defensively rather than panic on an empty window.
            return Some(RowShard::Empty);
        }
        let mut scratch = vec![NO_ROUTE; hi - lo];
        match self {
            RowShard::Empty => {}
            RowShard::Inline { base, len, slots } => {
                let b = *base as usize - lo;
                scratch[b..b + *len as usize].copy_from_slice(&slots[..*len as usize]);
            }
            RowShard::Spilled { base, slots } => {
                let b = *base as usize - lo;
                scratch[b..b + slots.len()].copy_from_slice(slots);
            }
        }
        for &(d, raw) in patches {
            // A patch outside the computed window is necessarily a clearing
            // one (routable patches extended the window above): the scratch
            // there is conceptually NO_ROUTE already, so it is a no-op —
            // indexing it would walk off the buffer.
            if (lo..hi).contains(&d) {
                scratch[d - lo] = raw;
            }
        }
        Some(RowShard::from_window(lo, &scratch))
    }

    /// The window-unchanged early-out of [`RowShard::patched`]: every
    /// routable patch is inside the stored window, so the shard keeps its
    /// base and width — inline rows are patched in a register copy, spilled
    /// rows in a single freshly allocated slot copy. Patches outside the
    /// window are necessarily clearing ones and read as unroutable there
    /// already, so they are skipped.
    fn patched_in_window(&self, patches: &[(usize, u32)]) -> RowShard {
        match self {
            RowShard::Empty => unreachable!("the early-out requires a non-empty window"),
            RowShard::Inline { base, len, slots } => {
                let mut slots = *slots;
                for &(d, raw) in patches {
                    let i = d.wrapping_sub(*base as usize);
                    if i < *len as usize {
                        slots[i] = raw;
                    }
                }
                RowShard::Inline {
                    base: *base,
                    len: *len,
                    slots,
                }
            }
            RowShard::Spilled { base, slots } => {
                let mut copy: Arc<[u32]> = Arc::from(&slots[..]);
                let buf = Arc::get_mut(&mut copy).expect("freshly allocated slot copy is unique");
                for &(d, raw) in patches {
                    let i = d.wrapping_sub(*base as usize);
                    if i < buf.len() {
                        buf[i] = raw;
                    }
                }
                RowShard::Spilled {
                    base: *base,
                    slots: copy,
                }
            }
        }
    }
}

/// Append-only interned route storage, structurally shared across table
/// generations: sealed chunks are `Arc<[Route]>` (a clone is one reference
/// bump per chunk), and only the open tail chunk is ever deep-copied — at
/// most `ROUTE_CHUNK - 1` routes, and only when a publish-shared table
/// interns new content.
#[derive(Debug, Clone)]
struct RouteStore {
    sealed: Vec<Arc<[Route]>>,
    tail: Arc<Vec<Route>>,
}

impl Default for RouteStore {
    fn default() -> Self {
        RouteStore {
            sealed: Vec::new(),
            tail: Arc::new(Vec::new()),
        }
    }
}

impl RouteStore {
    fn len(&self) -> usize {
        self.sealed.len() * ROUTE_CHUNK + self.tail.len()
    }

    /// The interned route at `index`. Two indexed loads (chunk, then slot).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[inline]
    fn get(&self, index: usize) -> &Route {
        let chunk = index / ROUTE_CHUNK;
        match self.sealed.get(chunk) {
            Some(c) => &c[index % ROUTE_CHUNK],
            None => &self.tail[index - self.sealed.len() * ROUTE_CHUNK],
        }
    }

    fn push(&mut self, route: Route) {
        if self.tail.len() == ROUTE_CHUNK {
            let full = std::mem::take(&mut self.tail);
            let chunk: Arc<[Route]> = match Arc::try_unwrap(full) {
                Ok(vec) => vec.into(),
                Err(shared) => shared.as_slice().into(),
            };
            self.sealed.push(chunk);
        }
        Arc::make_mut(&mut self.tail).push(route);
    }

    fn iter(&self) -> impl Iterator<Item = &Route> {
        self.sealed
            .iter()
            .flat_map(|c| c.iter())
            .chain(self.tail.iter())
    }
}

/// Persistent content → first-id index over the route store, shared across
/// table generations. Inserts into a publish-shared index stack a thin
/// overlay instead of deep-copying the map; overlays only accumulate while
/// rewires keep interning *new* route content (an oscillating link finds
/// its pre-failure routes here and adds nothing), and the chain flattens
/// once it reaches [`INDEX_FLATTEN_DEPTH`].
#[derive(Debug, Default)]
struct ContentIndex {
    entries: HashMap<Vec<PipeId>, RouteId>,
    parent: Option<Arc<ContentIndex>>,
    depth: u32,
}

impl ContentIndex {
    fn get(&self, pipes: &[PipeId]) -> Option<RouteId> {
        let mut layer = self;
        loop {
            if let Some(&id) = layer.entries.get(pipes) {
                return Some(id);
            }
            match &layer.parent {
                Some(parent) => layer = parent,
                None => return None,
            }
        }
    }

    /// Entries across every layer (each content key appears in at most one
    /// layer — inserts are first-id-wins).
    fn total_entries(&self) -> usize {
        let mut layer = self;
        let mut total = 0;
        loop {
            total += layer.entries.len();
            match &layer.parent {
                Some(parent) => layer = parent,
                None => return total,
            }
        }
    }
}

/// Endpoint ⇄ location geometry of a built table: which endpoints share a
/// location (and therefore share a row shard), in deterministic
/// first-appearance order. Shared by every table generation over the same
/// binding, so rewires pay no per-call grouping rebuild. The per-slot
/// endpoint lists are `Arc`-shared so a churn publish that rebinds one
/// endpoint clones O(locations) handles plus the one mutated list — not
/// the whole per-endpoint geometry.
#[derive(Debug, Default, Clone)]
struct LocationIndex {
    /// Distinct locations in first-appearance order.
    locations: Vec<NodeId>,
    slot_of: HashMap<NodeId, u32>,
    /// Endpoint indices bound to each location slot, ascending. Departed
    /// endpoints are removed from their list (so rewires never resurrect
    /// their rows); the slot itself persists once created.
    endpoints: Vec<Arc<[u32]>>,
}

impl LocationIndex {
    /// Builds the geometry, also returning each endpoint's location slot
    /// (the column map of a built table).
    fn build(locations: &[NodeId]) -> (Self, Vec<u32>) {
        let mut idx = LocationIndex::default();
        let mut lists: Vec<Vec<u32>> = Vec::new();
        let mut slot_of_endpoint = Vec::with_capacity(locations.len());
        for (e, &loc) in locations.iter().enumerate() {
            let slot = match idx.slot_of.get(&loc) {
                Some(&slot) => slot,
                None => {
                    let slot = idx.locations.len() as u32;
                    idx.slot_of.insert(loc, slot);
                    idx.locations.push(loc);
                    lists.push(Vec::new());
                    slot
                }
            };
            lists[slot as usize].push(e as u32);
            slot_of_endpoint.push(slot);
        }
        idx.endpoints = lists.into_iter().map(Arc::from).collect();
        (idx, slot_of_endpoint)
    }
}

/// Memory accounting snapshot for a [`RouteTable`] (see
/// [`RouteTable::memory`]). `resident_bytes` is a structural estimate —
/// allocator and hash-map overheads are approximated — meant for
/// order-of-magnitude comparison against `dense_equivalent_bytes`, the
/// `endpoint_count² × 4` bytes the pre-shard dense pair table would spend.
#[derive(Debug, Clone, Copy, Default)]
pub struct RouteStateMemory {
    /// Estimated heap bytes held by the table (rows, shared slot
    /// allocations counted once, route store, content and location
    /// indexes).
    pub resident_bytes: usize,
    /// What a dense `endpoint_count²` pair table would spend on the pair
    /// mapping alone.
    pub dense_equivalent_bytes: usize,
    /// Endpoints covered.
    pub endpoint_count: usize,
    /// Distinct spilled row allocations (shared rows counted once).
    pub distinct_row_allocations: usize,
    /// Rows stored inline (no heap allocation).
    pub inline_rows: usize,
    /// Rows with no routable destination at all.
    pub empty_rows: usize,
    /// Distinct interned routes.
    pub route_count: usize,
    /// Bytes spent on interned route content.
    pub route_bytes: usize,
    /// Bytes spent on the content-dedup index.
    pub index_bytes: usize,
}

/// Sharded, copy-on-write route lookup state for one emulation.
#[derive(Debug, Clone, Default)]
pub struct RouteTable {
    /// Each distinct route, stored once, in structurally shared chunks.
    store: RouteStore,
    /// One row shard per source endpoint, page-grouped into shared blocks
    /// of [`BLOCK_ROWS`] rows: `rows[src / BLOCK_ROWS][src % BLOCK_ROWS]`.
    rows: Vec<Arc<[RowShard]>>,
    endpoint_count: usize,
    /// Destination column of each endpoint: the location slot for built
    /// tables (co-located endpoints share a column), the identity mapping
    /// for hand-assembled ones. Page-grouped into shared blocks like the
    /// rows, so a churn publish that adds or rebinds one endpoint copies
    /// at most one [`BLOCK_ROWS`]-entry block instead of the whole map.
    cols: Vec<Arc<[u32]>>,
    /// Content index over the store (pipe sequence → first id with that
    /// content), carried forward structurally so incremental rewires and
    /// rebuilds reuse any retained route — a restored link maps back to its
    /// pre-failure `RouteId` instead of growing the table on every flap.
    by_content: Arc<ContentIndex>,
    /// Endpoint/location geometry, shared across generations.
    locs: Arc<LocationIndex>,
    /// Bumped by every rebuild/rewire, so drivers and tests can observe
    /// that a routing change took effect.
    version: u64,
}

impl RouteTable {
    /// Creates an empty table over `endpoint_count` endpoints (all pairs
    /// unroutable). Routes are added with [`RouteTable::intern`] and wired to
    /// pairs with [`RouteTable::set_pair`].
    pub fn new(endpoint_count: usize) -> Self {
        RouteTable {
            store: RouteStore::default(),
            rows: Self::blocks_from_flat(vec![RowShard::Empty; endpoint_count]),
            endpoint_count,
            cols: Self::col_blocks_from_flat((0..endpoint_count as u32).collect()),
            by_content: Arc::new(ContentIndex::default()),
            locs: Arc::new(LocationIndex::default()),
            version: 0,
        }
    }

    /// Chunks a flat row vector into shared blocks (the last block may be
    /// short).
    fn blocks_from_flat(flat: Vec<RowShard>) -> Vec<Arc<[RowShard]>> {
        flat.chunks(BLOCK_ROWS)
            .map(|chunk| Arc::<[RowShard]>::from(chunk.to_vec()))
            .collect()
    }

    /// Chunks a flat column vector into shared blocks.
    fn col_blocks_from_flat(flat: Vec<u32>) -> Vec<Arc<[u32]>> {
        flat.chunks(BLOCK_ROWS)
            .map(|chunk| Arc::<[u32]>::from(chunk.to_vec()))
            .collect()
    }

    /// The row shard of a source endpoint (`None` out of range).
    #[inline]
    fn row(&self, src: usize) -> Option<&RowShard> {
        self.rows.get(src / BLOCK_ROWS)?.get(src % BLOCK_ROWS)
    }

    /// The destination column of an endpoint (`None` out of range).
    #[inline]
    fn col(&self, endpoint: usize) -> Option<u32> {
        self.cols
            .get(endpoint / BLOCK_ROWS)?
            .get(endpoint % BLOCK_ROWS)
            .copied()
    }

    /// Writes one endpoint's column, copy-on-write on its block.
    fn set_col(&mut self, endpoint: usize, value: u32) {
        let b = endpoint / BLOCK_ROWS;
        if Arc::get_mut(&mut self.cols[b]).is_none() {
            let copy: Vec<u32> = self.cols[b].to_vec();
            self.cols[b] = Arc::from(copy);
        }
        Arc::get_mut(&mut self.cols[b]).expect("block was just unshared")[endpoint % BLOCK_ROWS] =
            value;
    }

    /// Appends one endpoint's column, copying at most the (short) tail
    /// block.
    fn push_col(&mut self, value: u32) {
        match self.cols.last() {
            Some(last) if last.len() < BLOCK_ROWS => {
                let mut copy: Vec<u32> = last.to_vec();
                copy.push(value);
                *self.cols.last_mut().expect("tail block exists") = Arc::from(copy);
            }
            _ => self.cols.push(Arc::from(vec![value])),
        }
    }

    /// Appends one endpoint's row shard, copying at most the (short) tail
    /// block.
    fn push_row(&mut self, shard: RowShard) {
        match self.rows.last() {
            Some(last) if last.len() < BLOCK_ROWS => {
                let mut copy: Vec<RowShard> = last.iter().cloned().collect();
                copy.push(shard);
                *self.rows.last_mut().expect("tail block exists") = Arc::from(copy);
            }
            _ => self.rows.push(Arc::from(vec![shard])),
        }
    }

    /// Mutable access to a source's block, copy-on-write: a block shared
    /// with another table generation is copied once (shard clones — slot
    /// allocations stay shared), an unshared block is patched in place.
    fn block_mut(&mut self, block: usize) -> &mut [RowShard] {
        if Arc::get_mut(&mut self.rows[block]).is_none() {
            let copy: Vec<RowShard> = self.rows[block].iter().cloned().collect();
            self.rows[block] = Arc::from(copy);
        }
        Arc::get_mut(&mut self.rows[block]).expect("block was just unshared")
    }

    /// Flattens a routing matrix for the given endpoint locations:
    /// `locations[i]` is the topology node endpoint `i` is bound to. Each
    /// distinct location pair's route is interned once, and every endpoint
    /// bound to the same location shares **one** row shard whose columns
    /// are location slots — the pair mapping costs O(locations²) plus a
    /// dense per-endpoint column map, not O(endpoints²).
    /// Same-location pairs stay unroutable — callers deliver those locally
    /// without touching a route.
    pub fn build(matrix: &RoutingMatrix, locations: &[NodeId]) -> Self {
        Self::build_preserving(
            RouteStore::default(),
            Arc::new(ContentIndex::default()),
            matrix,
            locations,
            0,
        )
    }

    /// Rebuilds the table against a new matrix while keeping every route id
    /// of `prev` valid: the previous interned routes are retained
    /// structurally (ids are never reassigned, chunks are shared rather
    /// than copied), the content index is carried forward as-is (no
    /// re-interning of retained routes), and the row shards are re-derived,
    /// reusing any retained route whose pipe sequence is unchanged.
    /// Descriptors in flight across a routing change therefore keep
    /// resolving to the exact route they started on — the paper's
    /// semantics, where packets already inside a core finish on pre-failure
    /// routes — while new packets see only the new routes.
    pub fn rebuild(prev: &RouteTable, matrix: &RoutingMatrix, locations: &[NodeId]) -> Self {
        Self::build_preserving(
            prev.store.clone(),
            prev.by_content.clone(),
            matrix,
            locations,
            prev.version + 1,
        )
    }

    fn build_preserving(
        store: RouteStore,
        by_content: Arc<ContentIndex>,
        matrix: &RoutingMatrix,
        locations: &[NodeId],
        version: u64,
    ) -> Self {
        let (locs, slot_of_endpoint) = LocationIndex::build(locations);
        let locs = Arc::new(locs);
        let n = locations.len();
        let mut rows_flat = vec![RowShard::Empty; n];
        let mut table = RouteTable {
            store,
            rows: Vec::new(),
            endpoint_count: n,
            cols: Self::col_blocks_from_flat(slot_of_endpoint),
            by_content,
            locs: Arc::clone(&locs),
            version,
        };
        // Resolve each location once against the matrix index so the
        // per-pair loop below is pure array indexing.
        let matrix_index: Vec<Option<usize>> = locs
            .locations
            .iter()
            .map(|&loc| matrix.vn_index(loc))
            .collect();
        let slots = locs.locations.len();
        let mut ids_by_slot = vec![NO_ROUTE; slots];
        // One reusable pipe buffer: the tree-only matrix walks each route
        // into it on demand, and only a content-index miss copies it out
        // (into the interned store) — no per-pair `Route` clones.
        let mut pipes = Vec::new();
        for (si, &src_slot) in matrix_index.iter().enumerate() {
            ids_by_slot.iter_mut().for_each(|v| *v = NO_ROUTE);
            let mut any = false;
            if let Some(ms) = src_slot {
                for (di, &dst_slot) in matrix_index.iter().enumerate() {
                    if si == di {
                        continue; // same-location pairs stay local, never routed
                    }
                    let Some(md) = dst_slot else { continue };
                    if !matrix.materialize_at(ms, md, &mut pipes) {
                        continue;
                    }
                    let id = match table.by_content.get(&pipes) {
                        Some(id) => id,
                        None => table.intern(Route::new(pipes.clone())),
                    };
                    ids_by_slot[di] = id.0;
                    any = true;
                }
            }
            // Rows are indexed by destination location slot, so the window
            // just computed IS the row — no per-endpoint expansion, and row
            // width is bounded by the location count.
            let row = if any {
                RowShard::from_window(0, &ids_by_slot)
            } else {
                RowShard::Empty
            };
            // Every endpoint at this location shares the one shard.
            for &e in locs.endpoints[si].iter() {
                rows_flat[e as usize] = row.clone();
            }
        }
        table.rows = Self::blocks_from_flat(rows_flat);
        table
    }

    /// Re-wires only the endpoint pairs bound to the given changed location
    /// pairs against the updated matrix, retaining every existing route id —
    /// the incremental counterpart of [`RouteTable::rebuild`] driven by
    /// [`RoutingMatrix::update_pipes`](crate::RoutingMatrix::update_pipes).
    /// A new route whose pipe sequence already exists (e.g. a restored link
    /// bringing back the pre-failure path) resolves to its old id, so
    /// oscillating links do not grow the table. Untouched rows — and the
    /// `RouteId`s of descriptors in flight on them — are not visited at
    /// all, and keep literally the same allocation; touched rows are
    /// patched once per location and shared across co-located sources.
    pub fn rewire_in_place(
        &mut self,
        matrix: &RoutingMatrix,
        locations: &[NodeId],
        changed: &[(NodeId, NodeId)],
    ) {
        assert_eq!(
            locations.len(),
            self.endpoint_count,
            "locations must match the endpoint set the table was built over"
        );
        if changed.is_empty() {
            return;
        }
        if self.locs.locations.is_empty() && self.endpoint_count > 0 {
            // Manually assembled table (RouteTable::new + set_pair): derive
            // the geometry on first rewire and keep it for the next ones.
            // The identity column map is left as-is — hand-wired rows
            // address destinations by endpoint index.
            self.locs = Arc::new(LocationIndex::build(locations).0);
        } else {
            // Established geometry (build, or a prior derivation) is
            // authoritative — callers must pass the same binding every
            // time. The full element-wise check is O(endpoints), which
            // would dominate an otherwise O(changed) rewire at high
            // multiplexing, so it guards debug builds only.
            debug_assert!(
                self.geometry_matches(locations),
                "rewire_in_place locations must match the geometry the table was built over"
            );
        }
        let locs = Arc::clone(&self.locs);
        // Group the changed pairs by source location slot, preserving the
        // deterministic order `RoutingMatrix::update_pipes` reports them in.
        let mut group_of: HashMap<u32, usize> = HashMap::new();
        let mut groups: Vec<(u32, Vec<u32>)> = Vec::new();
        for &(src_loc, dst_loc) in changed {
            if src_loc == dst_loc {
                continue; // same-location pairs stay local, never routed
            }
            let (Some(&ss), Some(&ds)) = (locs.slot_of.get(&src_loc), locs.slot_of.get(&dst_loc))
            else {
                continue; // no endpoint bound there: nothing to rewire
            };
            match group_of.get(&ss) {
                Some(&gi) => groups[gi].1.push(ds),
                None => {
                    group_of.insert(ss, groups.len());
                    groups.push((ss, vec![ds]));
                }
            }
        }
        let mut patches: Vec<(usize, u32)> = Vec::new();
        // Reusable pipe buffer for the on-demand route walks (see
        // `build_preserving`): only content-index misses copy it out.
        let mut pipes = Vec::new();
        for (ss, dst_slots) in groups {
            patches.clear();
            let src_loc = locs.locations[ss as usize];
            let ms = matrix.vn_index(src_loc);
            for &ds in &dst_slots {
                let dst_loc = locs.locations[ds as usize];
                // Resolve the location pair's new route id once.
                let md = matrix.vn_index(dst_loc);
                let raw = match (ms, md) {
                    (Some(ms), Some(md)) if matrix.materialize_at(ms, md, &mut pipes) => {
                        match self.by_content.get(&pipes) {
                            Some(id) => id.0,
                            None => self.intern(Route::new(pipes.clone())).0,
                        }
                    }
                    _ => NO_ROUTE,
                };
                // One patch per destination column: on a built table every
                // endpoint at this location shares one column, so the 16×-
                // multiplexed case costs the same single patch as the
                // unmultiplexed one. Hand-assembled tables map columns to
                // endpoints one-to-one, so the consecutive-dedup degrades
                // to the per-endpoint patches they need.
                let mut last_col = None;
                for &e in locs.endpoints[ds as usize].iter() {
                    let col = self.col(e as usize).expect("endpoint in range");
                    if last_col != Some(col) {
                        patches.push((col as usize, raw));
                        last_col = Some(col);
                    }
                }
            }
            // Patch every source row at this location, computing the new
            // shard once and sharing it across every endpoint whose row
            // shared storage before (co-located sources stay deduped).
            // Only blocks that actually hold a patched row are copied. The
            // cached outcome covers the no-op case too: when the first
            // multiplexed row's window turns out unchanged, its co-located
            // siblings skip the patch scan entirely instead of re-proving
            // the no-op once per endpoint.
            let mut cache: Option<(RowShard, Option<RowShard>)> = None;
            for &se in locs.endpoints[ss as usize].iter() {
                let se = se as usize;
                let row = self.row(se).expect("endpoint in range");
                let replacement = match &cache {
                    Some((old, outcome)) if old.same_storage(row) => outcome.clone(),
                    _ => {
                        let patched = row.patched(&patches);
                        cache = Some((row.clone(), patched.clone()));
                        patched
                    }
                };
                if let Some(replacement) = replacement {
                    self.block_mut(se / BLOCK_ROWS)[se % BLOCK_ROWS] = replacement;
                }
            }
        }
        self.version += 1;
    }

    /// The geometry invariant the rewire path relies on: every endpoint
    /// listed under a location slot is actually bound there. Departed
    /// endpoints are in no list, so they are (correctly) exempt.
    fn geometry_matches(&self, locations: &[NodeId]) -> bool {
        locations.len() == self.endpoint_count
            && self.locs.endpoints.iter().enumerate().all(|(s, list)| {
                list.iter()
                    .all(|&e| locations.get(e as usize) == Some(&self.locs.locations[s]))
            })
    }

    /// Binds `endpoint` at `location` and wires its routes incrementally —
    /// the join half of live endpoint churn. `endpoint` must be either the
    /// next fresh index (`endpoint_count`, growing the table by one row)
    /// or a previously unbound index rejoining.
    ///
    /// Cost is O(affected), never O(endpoints²): a join at a location that
    /// already has a live endpoint **shares its row shard** (one block
    /// copy); a join at a fresh or fully departed location derives one row
    /// from the matrix and refreshes the location's destination column in
    /// the other live locations' rows (O(locations) patches — flat in the
    /// endpoint count). Route ids are append-only throughout, so
    /// descriptors in flight keep resolving.
    ///
    /// Returns `false` (changing nothing) when the endpoint is already
    /// bound, the index is non-contiguous, or the table was hand-assembled
    /// without location geometry.
    pub fn bind_endpoint(
        &mut self,
        matrix: &RoutingMatrix,
        endpoint: usize,
        location: NodeId,
    ) -> bool {
        if endpoint > self.endpoint_count {
            return false;
        }
        if self.endpoint_count > 0 && self.locs.locations.is_empty() {
            return false; // hand-assembled table: no geometry to maintain
        }
        if self.is_endpoint_bound(endpoint) {
            return false;
        }
        // Resolve (or create) the location slot and insert the endpoint
        // into its (shared) ascending list.
        let locs = Arc::make_mut(&mut self.locs);
        let slot = match locs.slot_of.get(&location) {
            Some(&s) => s,
            None => {
                let s = locs.locations.len() as u32;
                locs.slot_of.insert(location, s);
                locs.locations.push(location);
                locs.endpoints.push(Arc::from(Vec::new()));
                s
            }
        };
        let list = &locs.endpoints[slot as usize];
        let sibling = list.first().copied();
        let pos = match list.binary_search(&(endpoint as u32)) {
            Ok(_) => return false, // unreachable: is_endpoint_bound was false
            Err(pos) => pos,
        };
        let mut grown = Vec::with_capacity(list.len() + 1);
        grown.extend_from_slice(&list[..pos]);
        grown.push(endpoint as u32);
        grown.extend_from_slice(&list[pos..]);
        locs.endpoints[slot as usize] = grown.into();
        // The newcomer's row: share a live sibling's shard outright, or
        // derive one fresh from the matrix.
        let locs = Arc::clone(&self.locs);
        let md = matrix.vn_index(location);
        let mut pipes = Vec::new();
        let row = match sibling {
            Some(sib) => self.row(sib as usize).cloned().unwrap_or(RowShard::Empty),
            None => {
                let slots = locs.locations.len();
                let mut ids_by_slot = vec![NO_ROUTE; slots];
                let mut any = false;
                if let Some(ms) = md {
                    for (di, id_slot) in ids_by_slot.iter_mut().enumerate() {
                        if di == slot as usize || locs.endpoints[di].is_empty() {
                            continue;
                        }
                        let Some(mdi) = matrix.vn_index(locs.locations[di]) else {
                            continue;
                        };
                        if !matrix.materialize_at(ms, mdi, &mut pipes) {
                            continue;
                        }
                        let id = match self.by_content.get(&pipes) {
                            Some(id) => id,
                            None => self.intern(Route::new(pipes.clone())),
                        };
                        *id_slot = id.0;
                        any = true;
                    }
                }
                if any {
                    RowShard::from_window(0, &ids_by_slot)
                } else {
                    RowShard::Empty
                }
            }
        };
        if sibling.is_none() {
            // First live endpoint at this location: the other rows'
            // columns toward it are either absent (new slot) or stale
            // (routing changed while it was fully departed) — refresh
            // them from the matrix, one patch per live source location.
            for si in 0..locs.locations.len() {
                if si == slot as usize || locs.endpoints[si].is_empty() {
                    continue;
                }
                let raw = match (matrix.vn_index(locs.locations[si]), md) {
                    (Some(ms), Some(mdi)) if matrix.materialize_at(ms, mdi, &mut pipes) => {
                        match self.by_content.get(&pipes) {
                            Some(id) => id.0,
                            None => self.intern(Route::new(pipes.clone())).0,
                        }
                    }
                    _ => NO_ROUTE,
                };
                let patches = [(slot as usize, raw)];
                let mut cache: Option<(RowShard, Option<RowShard>)> = None;
                for &se in locs.endpoints[si].iter() {
                    let se = se as usize;
                    let src_row = self.row(se).expect("endpoint in range");
                    let replacement = match &cache {
                        Some((old, outcome)) if old.same_storage(src_row) => outcome.clone(),
                        _ => {
                            let patched = src_row.patched(&patches);
                            cache = Some((src_row.clone(), patched.clone()));
                            patched
                        }
                    };
                    if let Some(replacement) = replacement {
                        self.block_mut(se / BLOCK_ROWS)[se % BLOCK_ROWS] = replacement;
                    }
                }
            }
        }
        if endpoint == self.endpoint_count {
            self.push_row(row);
            self.push_col(slot);
            self.endpoint_count += 1;
        } else {
            self.block_mut(endpoint / BLOCK_ROWS)[endpoint % BLOCK_ROWS] = row;
            self.set_col(endpoint, slot);
        }
        self.version += 1;
        true
    }

    /// Unbinds `endpoint` — the leave half of live endpoint churn. Its row
    /// shard is cleared (new lookups from it fail) and it leaves its
    /// location's endpoint list, so later rewires cannot resurrect the
    /// row; everything else — including every interned route a descriptor
    /// in flight may still reference — is retained, which is what makes
    /// the departure drain deterministic. O(1) blocks touched.
    ///
    /// Returns `false` when the endpoint is out of range or not bound.
    pub fn unbind_endpoint(&mut self, endpoint: usize) -> bool {
        if endpoint >= self.endpoint_count {
            return false;
        }
        let Some(slot) = self.col(endpoint) else {
            return false;
        };
        let slot = slot as usize;
        let Some(list) = self.locs.endpoints.get(slot) else {
            return false; // hand-assembled table: no geometry
        };
        let Ok(pos) = list.binary_search(&(endpoint as u32)) else {
            return false; // already departed
        };
        let locs = Arc::make_mut(&mut self.locs);
        let list = &locs.endpoints[slot];
        let mut shrunk = Vec::with_capacity(list.len() - 1);
        shrunk.extend_from_slice(&list[..pos]);
        shrunk.extend_from_slice(&list[pos + 1..]);
        locs.endpoints[slot] = shrunk.into();
        self.block_mut(endpoint / BLOCK_ROWS)[endpoint % BLOCK_ROWS] = RowShard::Empty;
        self.version += 1;
        true
    }

    /// `true` when the endpoint is currently bound at some location (it
    /// appears in its location slot's live list).
    pub fn is_endpoint_bound(&self, endpoint: usize) -> bool {
        let Some(slot) = self.col(endpoint) else {
            return false;
        };
        self.locs
            .endpoints
            .get(slot as usize)
            .is_some_and(|list| list.binary_search(&(endpoint as u32)).is_ok())
    }

    /// `true` when at least one live endpoint is bound at `location`.
    pub fn has_endpoints_at(&self, location: NodeId) -> bool {
        self.location_endpoint_count(location) > 0
    }

    /// Number of live endpoints bound at `location`.
    pub fn location_endpoint_count(&self, location: NodeId) -> usize {
        self.locs
            .slot_of
            .get(&location)
            .map_or(0, |&s| self.locs.endpoints[s as usize].len())
    }

    /// Stores a route and returns its handle; the content index keeps the
    /// first id interned for any given pipe sequence, so later rewires
    /// dedup against it. Callers wiring pairs by hand are still responsible
    /// for reusing ids where they want sharing (see [`RouteTable::build`]).
    pub fn intern(&mut self, route: Route) -> RouteId {
        assert!(self.store.len() < NO_ROUTE as usize, "route table overflow");
        let id = RouteId(self.store.len() as u32);
        self.index_insert(route.pipes.clone(), id);
        self.store.push(route);
        id
    }

    /// First-id-wins insert into the persistent content index: a shared
    /// index gets a thin overlay (flattened once the chain grows deep), an
    /// unshared one is updated in place.
    fn index_insert(&mut self, pipes: Vec<PipeId>, id: RouteId) {
        if self.by_content.get(&pipes).is_some() {
            return;
        }
        if let Some(top) = Arc::get_mut(&mut self.by_content) {
            top.entries.insert(pipes, id);
            return;
        }
        if self.by_content.depth >= INDEX_FLATTEN_DEPTH {
            let mut flat: HashMap<Vec<PipeId>, RouteId> = HashMap::new();
            let mut layer = Some(Arc::clone(&self.by_content));
            while let Some(l) = layer {
                for (k, &v) in &l.entries {
                    flat.entry(k.clone()).or_insert(v);
                }
                layer = l.parent.clone();
            }
            flat.insert(pipes, id);
            self.by_content = Arc::new(ContentIndex {
                entries: flat,
                parent: None,
                depth: 0,
            });
        } else {
            self.by_content = Arc::new(ContentIndex {
                entries: HashMap::from([(pipes, id)]),
                parent: Some(Arc::clone(&self.by_content)),
                depth: self.by_content.depth + 1,
            });
        }
    }

    /// Monotonic change counter, bumped by every rewire.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Wires an ordered endpoint pair to an interned route, growing the
    /// source row's window as needed (copy-on-write if its shard is
    /// shared — other sources sharing the allocation are unaffected). The
    /// destination resolves to its column, so on a built table the wire
    /// covers every endpoint co-located with `dst`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint or the route id is out of range.
    pub fn set_pair(&mut self, src: usize, dst: usize, id: RouteId) {
        assert!(src < self.endpoint_count, "src endpoint out of range");
        assert!(dst < self.endpoint_count, "dst endpoint out of range");
        assert!(id.index() < self.store.len(), "route id out of range");
        let dst = self.col(dst).expect("dst in range") as usize;
        let patched = self.row(src).expect("src in range").patched(&[(dst, id.0)]);
        if let Some(patched) = patched {
            self.block_mut(src / BLOCK_ROWS)[src % BLOCK_ROWS] = patched;
        }
    }

    /// The route for an ordered endpoint pair, or `None` if the pair is
    /// unroutable or either index is out of range. This is the per-packet
    /// lookup: a fixed chain of indexed loads — destination column, block,
    /// row shard, slot (inline rows resolve the slot inside the
    /// already-loaded shard) — with no hashing and no allocation.
    #[inline]
    pub fn route_id(&self, src: usize, dst: usize) -> Option<RouteId> {
        let col = self.col(dst)?;
        let row = self.row(src)?;
        match row.raw(col as usize) {
            NO_ROUTE => None,
            id => Some(RouteId(id)),
        }
    }

    /// The interned route behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if the id did not come from this table.
    #[inline]
    pub fn route(&self, id: RouteId) -> &Route {
        self.store.get(id.index())
    }

    /// The pipe sequence of an interned route (the per-hop access).
    #[inline]
    pub fn pipes(&self, id: RouteId) -> &[PipeId] {
        &self.store.get(id.index()).pipes
    }

    /// Number of distinct routes stored.
    pub fn route_count(&self) -> usize {
        self.store.len()
    }

    /// Number of endpoints the row shards cover.
    pub fn endpoint_count(&self) -> usize {
        self.endpoint_count
    }

    /// `true` when `src`'s row in `self` and `other` is literally the same
    /// storage: a shared heap allocation for spilled rows, a bit-identical
    /// allocation-free form for inline/empty rows. Diagnostic for the
    /// copy-on-write publish tests.
    pub fn row_storage_shared(&self, other: &RouteTable, src: usize) -> bool {
        match (self.row(src), other.row(src)) {
            (Some(a), Some(b)) => a.same_storage(b),
            _ => false,
        }
    }

    /// The shared slot allocation backing `src`'s row when it spilled to
    /// the heap (`None` for inline/empty rows). Diagnostic: lets tests pin
    /// `Arc` identity across rewires and across co-located endpoints.
    pub fn spilled_row_ptr(&self, src: usize) -> Option<*const u32> {
        match self.row(src)? {
            RowShard::Spilled { slots, .. } => Some(slots.as_ptr()),
            _ => None,
        }
    }

    /// Entries in the content-dedup index, across every overlay.
    #[doc(hidden)]
    pub fn content_index_entries(&self) -> usize {
        self.by_content.total_entries()
    }

    /// Copy-on-write overlays currently stacked on the content index.
    #[doc(hidden)]
    pub fn content_index_depth(&self) -> u32 {
        self.by_content.depth
    }

    /// Serialises the table for a checkpoint: the interned route store in
    /// id order, every row shard verbatim (window geometry included, so a
    /// restored row patches exactly like the captured one), the column map,
    /// the location geometry and the version. The content-dedup index is
    /// not written — it is a pure function of the store and is rebuilt
    /// first-id-wins on decode.
    pub fn encode(&self, w: &mut mn_util::ByteWriter) {
        w.put_usize(self.endpoint_count);
        w.put_u64(self.version);
        w.put_len(self.store.len());
        for route in self.store.iter() {
            w.put_len(route.pipes.len());
            for &p in &route.pipes {
                w.put_usize(p.index());
            }
        }
        for src in 0..self.endpoint_count {
            match self.row(src).expect("endpoint in range") {
                RowShard::Empty => w.put_u8(0),
                RowShard::Inline { base, len, slots } => {
                    w.put_u8(1);
                    w.put_u32(*base);
                    w.put_u8(*len);
                    for &s in &slots[..*len as usize] {
                        w.put_u32(s);
                    }
                }
                RowShard::Spilled { base, slots } => {
                    w.put_u8(2);
                    w.put_u32(*base);
                    w.put_len(slots.len());
                    for &s in slots.iter() {
                        w.put_u32(s);
                    }
                }
            }
        }
        for e in 0..self.endpoint_count {
            w.put_u32(self.col(e).expect("endpoint in range"));
        }
        w.put_len(self.locs.locations.len());
        for &loc in &self.locs.locations {
            w.put_usize(loc.index());
        }
        for list in &self.locs.endpoints {
            w.put_len(list.len());
            for &e in list.iter() {
                w.put_u32(e);
            }
        }
    }

    /// Rebuilds a table from bytes produced by [`RouteTable::encode`].
    /// Route ids are reassigned in the original interning order, so every
    /// stored id — including the ones descriptors in flight carry — keeps
    /// resolving to the same route, and re-encoding the result reproduces
    /// the input byte for byte.
    pub fn decode(r: &mut mn_util::ByteReader) -> Result<Self, mn_util::CodecError> {
        let endpoint_count = r.get_usize()?;
        let version = r.get_u64()?;
        let mut table = RouteTable::new(0);
        let route_count = r.get_len()?;
        for _ in 0..route_count {
            let hops = r.get_len()?;
            let mut pipes = Vec::with_capacity(hops);
            for _ in 0..hops {
                pipes.push(PipeId(r.get_usize()?));
            }
            table.intern(Route::new(pipes));
        }
        let mut rows_flat = Vec::with_capacity(endpoint_count);
        // Co-located endpoints shared one spilled allocation before the
        // checkpoint; share rows with identical content again on restore.
        let mut spill_cache: HashMap<Vec<u32>, Arc<[u32]>> = HashMap::new();
        for _ in 0..endpoint_count {
            rows_flat.push(match r.get_u8()? {
                0 => RowShard::Empty,
                1 => {
                    let base = r.get_u32()?;
                    let len = r.get_u8()?;
                    if len as usize > INLINE_ROW_CAP {
                        return Err(mn_util::CodecError::Invalid("inline row too wide"));
                    }
                    let mut slots = [NO_ROUTE; INLINE_ROW_CAP];
                    for s in slots.iter_mut().take(len as usize) {
                        *s = r.get_u32()?;
                    }
                    RowShard::Inline { base, len, slots }
                }
                2 => {
                    let base = r.get_u32()?;
                    let width = r.get_len()?;
                    let mut slots = Vec::with_capacity(width);
                    for _ in 0..width {
                        slots.push(r.get_u32()?);
                    }
                    let shared = spill_cache
                        .entry(slots.clone())
                        .or_insert_with(|| Arc::from(slots))
                        .clone();
                    RowShard::Spilled {
                        base,
                        slots: shared,
                    }
                }
                _ => return Err(mn_util::CodecError::Invalid("unknown row shard tag")),
            });
        }
        table.rows = Self::blocks_from_flat(rows_flat);
        let mut cols_flat = Vec::with_capacity(endpoint_count);
        for _ in 0..endpoint_count {
            cols_flat.push(r.get_u32()?);
        }
        table.cols = Self::col_blocks_from_flat(cols_flat);
        let slots = r.get_len()?;
        let mut locs = LocationIndex::default();
        for _ in 0..slots {
            let loc = NodeId(r.get_usize()?);
            locs.slot_of.insert(loc, locs.locations.len() as u32);
            locs.locations.push(loc);
        }
        for _ in 0..slots {
            let n = r.get_len()?;
            let mut list = Vec::with_capacity(n);
            for _ in 0..n {
                list.push(r.get_u32()?);
            }
            locs.endpoints.push(Arc::from(list));
        }
        table.locs = Arc::new(locs);
        table.endpoint_count = endpoint_count;
        table.version = version;
        Ok(table)
    }

    /// Memory accounting for the route state (see [`RouteStateMemory`]).
    /// Walks the structure, counting shared allocations once; intended for
    /// benchmarks and reports, not the hot path.
    pub fn memory(&self) -> RouteStateMemory {
        let mut mem = RouteStateMemory {
            endpoint_count: self.endpoint_count,
            dense_equivalent_bytes: self.endpoint_count * self.endpoint_count * 4,
            route_count: self.store.len(),
            ..RouteStateMemory::default()
        };
        // Row shards: the block table, the blocks themselves (each counted
        // once — generations share them, but one table owns each at least
        // once), and each distinct spilled slot allocation.
        const ARC_HEADER: usize = 16; // strong + weak counts
        mem.resident_bytes += self.rows.capacity() * std::mem::size_of::<Arc<[RowShard]>>();
        let mut seen: HashSet<*const u32> = HashSet::new();
        for block in &self.rows {
            mem.resident_bytes += block.len() * std::mem::size_of::<RowShard>() + ARC_HEADER;
            for row in block.iter() {
                match row {
                    RowShard::Empty => mem.empty_rows += 1,
                    RowShard::Inline { .. } => mem.inline_rows += 1,
                    RowShard::Spilled { slots, .. } => {
                        if seen.insert(slots.as_ptr()) {
                            mem.resident_bytes += slots.len() * 4 + ARC_HEADER;
                        }
                    }
                }
            }
        }
        mem.distinct_row_allocations = seen.len();
        // Route store: chunk table plus per-route content.
        mem.route_bytes += self.store.sealed.capacity() * std::mem::size_of::<Arc<[Route]>>();
        for route in self.store.iter() {
            mem.route_bytes +=
                std::mem::size_of::<Route>() + route.pipes.len() * std::mem::size_of::<PipeId>();
        }
        // Content index: keys duplicate the pipe sequences, plus per-entry
        // map overhead (approximate).
        let mut layer: Option<&ContentIndex> = Some(&self.by_content);
        while let Some(l) = layer {
            for k in l.entries.keys() {
                mem.index_bytes += std::mem::size_of::<Vec<PipeId>>()
                    + k.len() * std::mem::size_of::<PipeId>()
                    + std::mem::size_of::<RouteId>()
                    + 16;
            }
            layer = l.parent.as_deref();
        }
        // Destination column map (blocked and shared like the rows).
        mem.resident_bytes += self.cols.capacity() * std::mem::size_of::<Arc<[u32]>>();
        for block in &self.cols {
            mem.resident_bytes += block.len() * 4 + ARC_HEADER;
        }
        // Location geometry.
        let locs_bytes = self.locs.locations.capacity() * std::mem::size_of::<NodeId>()
            + self
                .locs
                .endpoints
                .iter()
                .map(|v| v.len() * 4 + ARC_HEADER + std::mem::size_of::<Arc<[u32]>>())
                .sum::<usize>()
            + self.locs.slot_of.len() * (std::mem::size_of::<NodeId>() + 4 + 16);
        mem.resident_bytes += mem.route_bytes + mem.index_bytes + locs_bytes;
        mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mn_distill::{distill, DistillationMode};
    use mn_topology::generators::{ring_topology, RingParams};

    fn ring_table() -> (RouteTable, usize) {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let locations = d.vns().to_vec();
        let n = locations.len();
        (RouteTable::build(&matrix, &locations), n)
    }

    #[test]
    fn codec_round_trip_is_byte_stable_and_preserves_lookups() {
        // A multiplexed table (two endpoints per location) exercises shared
        // rows, the column map and the location geometry; a rewire before
        // the checkpoint exercises patched windows and a bumped version.
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 1,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let mut matrix = RoutingMatrix::build(&d);
        let mut locations = d.vns().to_vec();
        locations.extend(d.vns().to_vec());
        let mut table = RouteTable::build(&matrix, &locations);
        let mut d2 = d.clone();
        let victim = table.pipes(table.route_id(0, 1).unwrap())[0];
        d2.pipe_attrs_mut(victim).unwrap().bandwidth = mn_util::DataRate::ZERO;
        let update = matrix.update_pipes(&d2, &[victim]);
        table.rewire_in_place(&matrix, &locations, &update.changed_pairs);

        let mut w = mn_util::ByteWriter::new();
        table.encode(&mut w);
        let bytes = w.into_bytes();
        let mut restored =
            RouteTable::decode(&mut mn_util::ByteReader::new(&bytes)).expect("decodes");

        let mut w2 = mn_util::ByteWriter::new();
        restored.encode(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "snapshot → restore → snapshot");

        assert_eq!(restored.endpoint_count(), table.endpoint_count());
        assert_eq!(restored.route_count(), table.route_count());
        assert_eq!(restored.version(), table.version());
        let n = table.endpoint_count();
        for s in 0..n {
            for t in 0..n {
                assert_eq!(restored.route_id(s, t), table.route_id(s, t), "{s}->{t}");
                if let Some(id) = table.route_id(s, t) {
                    assert_eq!(restored.pipes(id), table.pipes(id));
                }
            }
        }
        // The restored table rewires identically: restore the failed link
        // and apply the update to both tables.
        let update = matrix.update_pipes(&d, &[victim]);
        table.rewire_in_place(&matrix, &locations, &update.changed_pairs);
        restored.rewire_in_place(&matrix, &locations, &update.changed_pairs);
        assert_eq!(restored.version(), table.version());
        assert_eq!(restored.route_count(), table.route_count());
        for s in 0..n {
            for t in 0..n {
                assert_eq!(restored.route_id(s, t), table.route_id(s, t), "{s}->{t}");
            }
        }
    }

    #[test]
    fn covers_every_distinct_pair() {
        let (table, n) = ring_table();
        assert_eq!(table.endpoint_count(), n);
        for s in 0..n {
            for d in 0..n {
                let id = table.route_id(s, d);
                if s == d {
                    assert!(id.is_none(), "diagonal pairs are local, not routed");
                } else {
                    let id = id.expect("connected ring has all-pairs routes");
                    assert!(table.pipes(id).len() >= 2);
                }
            }
        }
    }

    #[test]
    fn routes_are_interned_not_duplicated() {
        let (table, n) = ring_table();
        // At most one stored route per ordered pair, and strictly fewer than
        // the pair count whenever any two pairs share a location pair (here
        // locations are unique per VN, so it is exactly n*(n-1)).
        assert_eq!(table.route_count(), n * (n - 1));
        // Distinct pairs resolve to distinct interned routes at most once:
        // the same id is returned for repeated lookups, with no copy.
        let a = table.route_id(0, 1).unwrap();
        let b = table.route_id(0, 1).unwrap();
        assert_eq!(a, b);
        assert!(std::ptr::eq(table.route(a), table.route(b)));
    }

    #[test]
    fn shared_locations_share_one_route_and_one_row() {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 1,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        // Bind two endpoints to every location: 12 endpoints over 6 locations.
        let mut locations = d.vns().to_vec();
        locations.extend(d.vns().to_vec());
        let table = RouteTable::build(&matrix, &locations);
        let n = d.vns().len();
        // Endpoint i and i+n share a location, so (i, j) and (i+n, j) must
        // resolve to the same interned route — and so must (i, j + n),
        // since co-located destinations share a column.
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                assert_eq!(table.route_id(i, j), table.route_id(i + n, j));
                assert_eq!(table.route_id(i, j), table.route_id(i, j + n));
            }
        }
        // Co-located endpoints share one row shard: same allocation, not a
        // copy (6-column rows -> spilled, so pointers are visible).
        for i in 0..n {
            assert!(table.row_storage_shared(&table, i));
            assert_eq!(table.spilled_row_ptr(i), table.spilled_row_ptr(i + n));
            assert!(table.spilled_row_ptr(i).is_some(), "wide rows spill");
        }
        // Same-location pairs are unroutable (handled as local delivery).
        for i in 0..n {
            assert!(table.route_id(i, i + n).is_none());
        }
        // 6 locations -> 30 distinct ordered location pairs, stored once each.
        assert_eq!(table.route_count(), 30);
    }

    #[test]
    fn unbind_then_bind_round_trips_and_keeps_drain_routes() {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let locations = d.vns().to_vec();
        let mut table = RouteTable::build(&matrix, &locations);
        let n = locations.len();
        let fresh = RouteTable::build(&matrix, &locations);
        let departed = 3;
        let inbound_before = table.route_id(0, departed).unwrap();
        assert!(table.is_endpoint_bound(departed));
        assert!(table.unbind_endpoint(departed));
        assert!(!table.is_endpoint_bound(departed));
        assert!(!table.unbind_endpoint(departed), "double-leave refused");
        // New lookups *from* the departed endpoint fail; routes *toward*
        // it survive so in-flight descriptors drain on pre-departure ids.
        for t in 0..n {
            assert!(table.route_id(departed, t).is_none());
        }
        assert_eq!(table.route_id(0, departed), Some(inbound_before));
        assert_eq!(table.pipes(inbound_before), fresh.pipes(inbound_before));
        // Rejoin at the same (now empty) location: sibling-less path.
        assert!(table.bind_endpoint(&matrix, departed, locations[departed]));
        assert!(!table.bind_endpoint(&matrix, departed, locations[departed]));
        for s in 0..n {
            for t in 0..n {
                let a = table.route_id(s, t).map(|id| table.pipes(id).to_vec());
                let b = fresh.route_id(s, t).map(|id| fresh.pipes(id).to_vec());
                assert_eq!(a, b, "{s}->{t}");
            }
        }
    }

    #[test]
    fn join_with_a_live_sibling_shares_its_row_shard() {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 1,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let mut locations = d.vns().to_vec();
        locations.extend(d.vns().to_vec());
        let mut table = RouteTable::build(&matrix, &locations);
        let n = d.vns().len();
        assert!(table.unbind_endpoint(0));
        // Endpoint n stays live at the same location: the rejoin shares
        // its spilled row allocation instead of deriving a fresh one.
        assert!(table.bind_endpoint(&matrix, 0, locations[0]));
        assert_eq!(table.spilled_row_ptr(0), table.spilled_row_ptr(n));
        assert!(table.spilled_row_ptr(0).is_some());
        for j in 0..2 * n {
            assert_eq!(table.route_id(0, j), table.route_id(n, j), "->{j}");
        }
    }

    #[test]
    fn bind_grows_the_table_by_one_fresh_endpoint() {
        let (mut table, n) = ring_table();
        let fresh = table.clone();
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let home = d.vns()[0];
        assert!(
            !table.bind_endpoint(&matrix, n + 1, home),
            "non-contiguous fresh index refused"
        );
        assert!(table.bind_endpoint(&matrix, n, home));
        assert_eq!(table.endpoint_count(), n + 1);
        // The newcomer is co-located with endpoint 0: identical routes,
        // and nothing about the pre-existing pairs moved.
        for t in 0..n {
            assert_eq!(table.route_id(n, t), table.route_id(0, t));
            assert_eq!(table.route_id(t, n), table.route_id(t, 0));
            for s in 0..n {
                assert_eq!(table.route_id(s, t), fresh.route_id(s, t));
            }
        }
    }

    #[test]
    fn rejoin_after_reroute_refreshes_stale_columns() {
        // The stale-column hazard: while a location is fully departed, the
        // matrix drops its source tree and reroutes report no pairs toward
        // it, so other rows' columns toward that slot go stale. A rejoin
        // must refresh them from the matrix, not trust the old ids.
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let mut matrix = RoutingMatrix::build(&d);
        let locations = d.vns().to_vec();
        let mut table = RouteTable::build(&matrix, &locations);
        let n = locations.len();
        let departed = 0;
        let home = locations[departed];
        assert!(table.unbind_endpoint(departed));
        assert!(matrix.remove_source(home));
        // Fail a pipe the old inbound routes used, reroute the survivors.
        let victim = d.out_pipes(home)[0];
        let original = d.pipe(victim).attrs;
        d.pipe_attrs_mut(victim).unwrap().bandwidth = mn_util::DataRate::ZERO;
        let update = matrix.update_pipes(&d, &[victim]);
        table.rewire_in_place(&matrix, &locations, &update.changed_pairs);
        *d.pipe_attrs_mut(victim).unwrap() = original;
        let update = matrix.update_pipes(&d, &[victim]);
        table.rewire_in_place(&matrix, &locations, &update.changed_pairs);
        // Rejoin: matrix source first, then the table bind.
        assert!(matrix.add_source(&d, home));
        assert!(table.bind_endpoint(&matrix, departed, home));
        let fresh = RouteTable::build(&matrix, &locations);
        for s in 0..n {
            for t in 0..n {
                let a = table.route_id(s, t).map(|id| table.pipes(id).to_vec());
                let b = fresh.route_id(s, t).map(|id| fresh.pipes(id).to_vec());
                assert_eq!(a, b, "{s}->{t}");
            }
        }
    }

    #[test]
    fn rebuild_preserves_ids_and_reuses_unchanged_routes() {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let locations = d.vns().to_vec();
        let first = RouteTable::build(&matrix, &locations);
        // Rebuilding against an unchanged matrix must not grow the table:
        // every pair resolves to the same retained route id.
        let rebuilt = RouteTable::rebuild(&first, &matrix, &locations);
        assert_eq!(rebuilt.route_count(), first.route_count());
        let n = locations.len();
        for s in 0..n {
            for t in 0..n {
                assert_eq!(rebuilt.route_id(s, t), first.route_id(s, t));
                if let Some(id) = first.route_id(s, t) {
                    assert_eq!(rebuilt.pipes(id), first.pipes(id));
                }
            }
        }
        // Ten no-op rebuilds still do not grow it — and, because the
        // content index is carried forward structurally, they re-intern
        // nothing and stack no overlays.
        let entries = rebuilt.content_index_entries();
        let mut table = rebuilt;
        for _ in 0..10 {
            table = RouteTable::rebuild(&table, &matrix, &locations);
        }
        assert_eq!(table.route_count(), first.route_count());
        assert_eq!(table.content_index_entries(), entries);
        assert_eq!(table.content_index_depth(), 0, "no-op rebuilds add layers");
    }

    #[test]
    fn rewire_preserves_untouched_ids_and_dedups_restored_routes() {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 2,
            ..RingParams::default()
        });
        let mut d = distill(&topo, DistillationMode::HopByHop);
        let mut matrix = RoutingMatrix::build(&d);
        let locations = d.vns().to_vec();
        let mut table = RouteTable::build(&matrix, &locations);
        let baseline: Vec<Option<RouteId>> = (0..locations.len() * locations.len())
            .map(|i| table.route_id(i / locations.len(), i % locations.len()))
            .collect();
        let count_after_build = table.route_count();
        // Fail one transit pipe both ways, rewire only the changed pairs.
        let victim = matrix.lookup(locations[0], locations[6]).unwrap().pipes[1];
        let reverse = {
            let p = d.pipe(victim);
            d.find_pipe(p.dst, p.src).expect("duplex link")
        };
        let original = d.pipe(victim).attrs;
        let flap = |d: &mut mn_distill::DistilledTopology,
                    matrix: &mut RoutingMatrix,
                    table: &mut RouteTable,
                    attrs: mn_distill::PipeAttrs| {
            *d.pipe_attrs_mut(victim).unwrap() = attrs;
            *d.pipe_attrs_mut(reverse).unwrap() = attrs;
            let update = matrix.update_pipes(d, &[victim, reverse]);
            assert!(!update.is_empty());
            table.rewire_in_place(matrix, &locations, &update.changed_pairs);
            update
        };
        let failed = mn_distill::PipeAttrs {
            bandwidth: mn_util::DataRate::ZERO,
            ..original
        };
        let before_down = table.clone();
        let down = flap(&mut d, &mut matrix, &mut table, failed);
        let count_after_down = table.route_count();
        // Untouched pairs keep their exact RouteId; changed pairs resolve to
        // routes avoiding the failed pipe.
        let n = locations.len();
        let changed: std::collections::HashSet<(usize, usize)> = down
            .changed_pairs
            .iter()
            .map(|&(a, b)| {
                let si = locations.iter().position(|&l| l == a).unwrap();
                let di = locations.iter().position(|&l| l == b).unwrap();
                (si, di)
            })
            .collect();
        let changed_sources: std::collections::HashSet<usize> =
            changed.iter().map(|&(s, _)| s).collect();
        for s in 0..n {
            for t in 0..n {
                if changed.contains(&(s, t)) {
                    if let Some(id) = table.route_id(s, t) {
                        assert!(!table.pipes(id).contains(&victim));
                        assert!(!table.pipes(id).contains(&reverse));
                    }
                } else {
                    assert_eq!(
                        table.route_id(s, t),
                        baseline[s * n + t],
                        "untouched pair ({s},{t}) must keep its RouteId"
                    );
                }
            }
            // Copy-on-write publish: untouched sources keep literally the
            // same row allocation; rewired sources get a fresh one.
            assert_eq!(
                table.row_storage_shared(&before_down, s),
                !changed_sources.contains(&s),
                "row storage of source {s}"
            );
        }
        // Restore: every pair maps back to its original id, and a second
        // full flap cycle does not grow the table (oscillation-safe dedup).
        flap(&mut d, &mut matrix, &mut table, original);
        for s in 0..n {
            for t in 0..n {
                assert_eq!(table.route_id(s, t), baseline[s * n + t]);
            }
        }
        assert_eq!(table.route_count(), count_after_down);
        flap(&mut d, &mut matrix, &mut table, failed);
        flap(&mut d, &mut matrix, &mut table, original);
        assert_eq!(table.route_count(), count_after_down);
        assert!(
            count_after_down > count_after_build,
            "detour routes interned"
        );
        assert_eq!(table.version(), 4, "one bump per rewire");
    }

    #[test]
    fn out_of_range_lookups_are_none() {
        let (table, n) = ring_table();
        assert!(table.route_id(n, 0).is_none());
        assert!(table.route_id(0, n + 100).is_none());
        assert!(table.route_id(usize::MAX, usize::MAX).is_none());
    }

    #[test]
    fn manual_construction_for_tests() {
        let mut table = RouteTable::new(2);
        let id = table.intern(Route::new(vec![PipeId(3), PipeId(5)]));
        table.set_pair(0, 1, id);
        assert_eq!(table.route_id(0, 1), Some(id));
        assert_eq!(table.route_id(1, 0), None);
        assert_eq!(table.pipes(id), &[PipeId(3), PipeId(5)]);
    }

    #[test]
    fn set_pair_grows_windows_inline_then_spills() {
        let mut table = RouteTable::new(16);
        let ids: Vec<RouteId> = (0..8)
            .map(|i| table.intern(Route::new(vec![PipeId(i)])))
            .collect();
        // Scattered writes on one row: window grows, stays inline while
        // narrow (no allocation to share), spills once it widens.
        table.set_pair(0, 5, ids[0]);
        assert!(table.spilled_row_ptr(0).is_none(), "1-wide row is inline");
        table.set_pair(0, 7, ids[1]);
        assert!(table.spilled_row_ptr(0).is_none(), "3-wide row is inline");
        assert_eq!(table.route_id(0, 6), None, "window gap is unroutable");
        table.set_pair(0, 12, ids[2]);
        assert!(table.spilled_row_ptr(0).is_some(), "8-wide row spills");
        assert_eq!(table.route_id(0, 5), Some(ids[0]));
        assert_eq!(table.route_id(0, 7), Some(ids[1]));
        assert_eq!(table.route_id(0, 12), Some(ids[2]));
        assert_eq!(table.route_id(0, 4), None);
        assert_eq!(table.route_id(0, 13), None);
        // Overwrites do not move the window; other rows are untouched.
        table.set_pair(0, 7, ids[3]);
        assert_eq!(table.route_id(0, 7), Some(ids[3]));
        for s in 1..16 {
            for t in 0..16 {
                assert!(table.route_id(s, t).is_none());
            }
        }
    }

    #[test]
    fn set_pair_on_a_shared_row_copies_on_write() {
        // Two endpoints per location share one shard; diverging one of them
        // by hand must not leak into its co-located peer.
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 1,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let mut locations = d.vns().to_vec();
        locations.extend(d.vns().to_vec());
        let mut table = RouteTable::build(&matrix, &locations);
        let n = d.vns().len();
        let donor = table.route_id(1, 2).unwrap();
        let before = table.route_id(n, 2);
        assert_eq!(table.spilled_row_ptr(0), table.spilled_row_ptr(n));
        table.set_pair(0, 2, donor);
        assert_eq!(table.route_id(0, 2), Some(donor));
        assert_eq!(table.route_id(n, 2), before, "peer row must not change");
        assert_ne!(table.spilled_row_ptr(0), table.spilled_row_ptr(n));
    }

    #[test]
    fn memory_is_sub_dense_for_multiplexed_endpoints() {
        // 512 endpoints over 8 locations: rows dedup to 8 allocations and
        // the route state stays far below the dense n² pair table.
        let topo = ring_topology(&RingParams {
            routers: 8,
            clients_per_router: 1,
            ..RingParams::default()
        });
        let d = distill(&topo, DistillationMode::HopByHop);
        let matrix = RoutingMatrix::build(&d);
        let base = d.vns().to_vec();
        let locations: Vec<NodeId> = (0..512).map(|i| base[i % base.len()]).collect();
        let table = RouteTable::build(&matrix, &locations);
        let mem = table.memory();
        assert_eq!(mem.endpoint_count, 512);
        assert_eq!(mem.dense_equivalent_bytes, 512 * 512 * 4);
        assert_eq!(mem.distinct_row_allocations, 8, "one shard per location");
        assert!(
            mem.resident_bytes * 10 < mem.dense_equivalent_bytes,
            "resident {} vs dense {}",
            mem.resident_bytes,
            mem.dense_equivalent_bytes
        );
        // And the lookups still resolve: cross-location pairs route,
        // co-located pairs stay local.
        assert!(table.route_id(0, 1).is_some());
        assert!(table.route_id(0, base.len()).is_none());
    }

    #[test]
    fn clearing_patch_outside_the_final_window_is_a_noop() {
        // A patch batch can clear a destination a diverged row never held
        // while another patch genuinely changes the row: the clearing patch
        // lands outside the computed window and must be skipped, not
        // indexed (regression: this used to walk off the scratch buffer).
        let mut table = RouteTable::new(16);
        let id = table.intern(Route::new(vec![PipeId(1)]));
        table.set_pair(0, 3, id);
        assert_eq!(table.route_id(0, 3), Some(id));
        // Simulate the mixed batch through the public surface: clear a far
        // destination (already unroutable on this row) and rewire dst 3.
        let other = table.intern(Route::new(vec![PipeId(2)]));
        let empty_row = RowShard::Empty;
        let patched = empty_row
            .patched(&[(10, NO_ROUTE), (3, other.0)])
            .expect("the routable patch changes the row");
        assert_eq!(patched.raw(3), other.0);
        assert_eq!(patched.raw(10), NO_ROUTE);
        let narrow = RowShard::from_window(3, &[id.0]);
        let patched = narrow
            .patched(&[(12, NO_ROUTE), (3, other.0)])
            .expect("the routable patch changes the row");
        assert_eq!(patched.raw(3), other.0);
        assert_eq!(patched.raw(12), NO_ROUTE);
    }

    #[test]
    fn route_store_chunks_survive_sealing() {
        let mut table = RouteTable::new(4);
        let count = ROUTE_CHUNK * 2 + 7;
        let ids: Vec<RouteId> = (0..count)
            .map(|i| table.intern(Route::new(vec![PipeId(i), PipeId(i + 1)])))
            .collect();
        assert_eq!(table.route_count(), count);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(table.pipes(id), &[PipeId(i), PipeId(i + 1)]);
        }
        // Cloning shares the sealed chunks; interning into the clone leaves
        // the original untouched.
        let mut clone = table.clone();
        let extra = clone.intern(Route::new(vec![PipeId(999_999)]));
        assert_eq!(clone.route_count(), count + 1);
        assert_eq!(table.route_count(), count);
        assert_eq!(clone.pipes(extra), &[PipeId(999_999)]);
    }
}
