//! Hash-based route cache with on-demand shortest-path computation.
//!
//! The paper's alternative to the O(n²) matrix for very large VN counts: keep
//! a cache of routes for *active flows* of size O(n lg n); on the rare cache
//! miss, compute the route on the fly with Dijkstra (an O(n lg n) operation)
//! from the internal representation of the topology.
//!
//! The implementation keeps per-source shortest-path trees rather than
//! individual pairs when a source shows locality, and evicts in FIFO order
//! once the configured capacity is exceeded.

use std::collections::{HashMap, VecDeque};

use mn_distill::DistilledTopology;
use mn_topology::NodeId;

use crate::dijkstra::{route_from_tree, shortest_route_tree, Route};
use crate::RouteProvider;

/// A bounded route cache backed by on-demand Dijkstra over the pipe graph.
#[derive(Debug, Clone)]
pub struct RouteCache {
    topo: DistilledTopology,
    capacity: usize,
    cache: HashMap<(NodeId, NodeId), Option<Route>>,
    insertion_order: VecDeque<(NodeId, NodeId)>,
    hits: u64,
    misses: u64,
}

impl RouteCache {
    /// Creates a cache over the pipe graph with space for `capacity` routes.
    ///
    /// The conventional sizing is `n * lg(n)` entries for `n` VNs, which
    /// [`RouteCache::with_default_capacity`] computes.
    pub fn new(topo: DistilledTopology, capacity: usize) -> Self {
        RouteCache {
            topo,
            capacity: capacity.max(1),
            cache: HashMap::new(),
            insertion_order: VecDeque::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Creates a cache sized to `n·⌈lg n⌉` entries as the paper suggests.
    pub fn with_default_capacity(topo: DistilledTopology) -> Self {
        let n = topo.vns().len().max(2);
        let lg = usize::BITS - (n - 1).leading_zeros();
        Self::new(topo, n * lg as usize)
    }

    /// Cache hits since construction.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Cache misses (on-demand computations) since construction.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Current number of cached entries.
    pub fn len(&self) -> usize {
        self.cache.len()
    }

    /// Returns `true` if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.cache.is_empty()
    }

    /// Maximum number of cached entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Drops all cached routes (used after the pipe graph changes, e.g. on
    /// fault injection).
    pub fn invalidate(&mut self) {
        self.cache.clear();
        self.insertion_order.clear();
    }

    /// Replaces the underlying pipe graph and invalidates the cache.
    pub fn update_topology(&mut self, topo: DistilledTopology) {
        self.topo = topo;
        self.invalidate();
    }

    /// Access to the underlying pipe graph.
    pub fn topology(&self) -> &DistilledTopology {
        &self.topo
    }

    fn insert(&mut self, key: (NodeId, NodeId), route: Option<Route>) {
        if self.cache.len() >= self.capacity {
            // FIFO eviction keeps the structure simple and predictable; the
            // paper only requires that stale entries eventually leave.
            if let Some(old) = self.insertion_order.pop_front() {
                self.cache.remove(&old);
            }
        }
        self.insertion_order.push_back(key);
        self.cache.insert(key, route);
    }
}

impl RouteProvider for RouteCache {
    fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Route> {
        if src == dst {
            return Some(Route::default());
        }
        if let Some(cached) = self.cache.get(&(src, dst)) {
            self.hits += 1;
            return cached.clone();
        }
        self.misses += 1;
        // Compute the whole tree for this source and prime the cache with the
        // destinations most likely to be asked next (other VNs), up to the
        // remaining capacity.
        let pred = shortest_route_tree(&self.topo, src);
        let route = route_from_tree(&self.topo, &pred, src, dst);
        self.insert((src, dst), route.clone());
        let vns = self.topo.vns().to_vec();
        for vn in vns {
            if vn == src || vn == dst {
                continue;
            }
            if self.cache.len() >= self.capacity {
                break;
            }
            if !self.cache.contains_key(&(src, vn)) {
                let r = route_from_tree(&self.topo, &pred, src, vn);
                self.insert((src, vn), r);
            }
        }
        route
    }

    fn stored_routes(&self) -> usize {
        self.cache.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RoutingMatrix;
    use mn_distill::{distill, DistillationMode};
    use mn_topology::generators::{ring_topology, RingParams};

    fn pipe_graph() -> DistilledTopology {
        let topo = ring_topology(&RingParams {
            routers: 6,
            clients_per_router: 3,
            ..RingParams::default()
        });
        distill(&topo, DistillationMode::HopByHop)
    }

    #[test]
    fn cache_routes_match_matrix_routes() {
        let d = pipe_graph();
        let matrix = RoutingMatrix::build(&d);
        let mut cache = RouteCache::with_default_capacity(d);
        let vns = matrix.vns().to_vec();
        for &a in &vns {
            for &b in &vns {
                let via_cache = cache.route(a, b).unwrap();
                let via_matrix = matrix.lookup(a, b).unwrap();
                assert_eq!(via_cache.hop_count(), via_matrix.hop_count());
            }
        }
    }

    #[test]
    fn repeated_lookups_hit_the_cache() {
        let d = pipe_graph();
        let vns = d.vns().to_vec();
        let mut cache = RouteCache::with_default_capacity(d);
        let _ = cache.route(vns[0], vns[1]);
        assert_eq!(cache.misses(), 1);
        let _ = cache.route(vns[0], vns[1]);
        let _ = cache.route(vns[0], vns[2]);
        assert_eq!(
            cache.hits(),
            2,
            "tree priming should have cached vns[0] -> vns[2]"
        );
    }

    #[test]
    fn capacity_bounds_storage() {
        let d = pipe_graph();
        let vns = d.vns().to_vec();
        let mut cache = RouteCache::new(d, 4);
        for &a in &vns {
            for &b in &vns {
                let _ = cache.route(a, b);
            }
        }
        assert!(cache.stored_routes() <= 4);
        assert_eq!(cache.capacity(), 4);
    }

    #[test]
    fn default_capacity_is_n_log_n() {
        let d = pipe_graph();
        let n = d.vns().len();
        let cache = RouteCache::with_default_capacity(d);
        assert_eq!(cache.capacity(), n * 5); // 18 VNs -> ceil(lg 18) = 5.
        assert!(cache.is_empty());
    }

    #[test]
    fn invalidate_clears_entries() {
        let d = pipe_graph();
        let vns = d.vns().to_vec();
        let mut cache = RouteCache::with_default_capacity(d);
        let _ = cache.route(vns[0], vns[1]);
        assert!(!cache.is_empty());
        cache.invalidate();
        assert!(cache.is_empty());
        let _ = cache.route(vns[0], vns[1]);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn same_node_route_is_empty_and_uncached() {
        let d = pipe_graph();
        let vns = d.vns().to_vec();
        let mut cache = RouteCache::with_default_capacity(d);
        let r = cache.route(vns[0], vns[0]).unwrap();
        assert!(r.is_empty());
        assert_eq!(cache.stored_routes(), 0);
    }

    #[test]
    fn update_topology_invalidates() {
        let d = pipe_graph();
        let vns = d.vns().to_vec();
        let mut cache = RouteCache::with_default_capacity(d.clone());
        let _ = cache.route(vns[0], vns[1]);
        cache.update_topology(d);
        assert!(cache.is_empty());
        assert_eq!(cache.topology().vns().len(), vns.len());
    }
}
