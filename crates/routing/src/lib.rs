//! Route computation and lookup for the ModelNet core (§2.2 of the paper).
//!
//! During the Binding phase ModelNet pre-computes shortest-path routes among
//! all pairs of VNs in the distilled topology and installs them in a routing
//! matrix on each core node. Each route is an ordered list of pipes a packet
//! traverses from source to destination. The paper's dense matrix gives O(1)
//! lookup but consumes O(n²) space; this reproduction keeps the all-pairs
//! interface while storing only one shortest-route *tree* per source
//! (predecessor + distance rows, O(vns × nodes)) and materialising routes on
//! demand. The paper also sketches two alternatives for larger target
//! networks — hierarchical tables that exploit the clustering of VNs on stub
//! domains, and a hash-based cache of routes for active flows with on-demand
//! Dijkstra on a miss. All three are implemented here behind the
//! [`RouteProvider`] trait:
//!
//! * [`RoutingMatrix`] — per-source shortest-route trees with a per-pipe
//!   reverse index for output-sensitive reconfiguration (the default).
//! * [`RouteCache`] — bounded cache + on-demand shortest-path computation.
//! * [`HierarchicalRouter`] — two-level tables: per-gateway routes between
//!   first-hop routers composed with the preserved first/last hops.
//!
//! The paper assumes a "perfect" routing protocol that instantaneously
//! recomputes shortest paths after a failure; [`RoutingMatrix::rebuild`]
//! provides exactly that, and `mn-dynamics` calls it when links fail.

pub mod cache;
pub mod dijkstra;
pub mod hierarchical;
pub mod matrix;
pub mod table;

pub use cache::RouteCache;
pub use dijkstra::{
    pipe_cost, route_between, route_from_tree, shortest_route_tree, shortest_route_tree_with_dist,
    Route, UNUSABLE_COST,
};
pub use hierarchical::HierarchicalRouter;
pub use matrix::{RouteUpdate, RoutingMatrix};
pub use table::{RouteId, RouteStateMemory, RouteTable};

use mn_topology::NodeId;

/// Uniform interface over the route lookup structures.
pub trait RouteProvider {
    /// Returns the route (ordered pipe list) from `src` to `dst`, or `None`
    /// if no path exists. `src == dst` yields an empty route.
    fn route(&mut self, src: NodeId, dst: NodeId) -> Option<Route>;

    /// Approximate memory footprint of the structure in route entries, used
    /// by the routing-scheme comparison micro-benchmarks.
    fn stored_routes(&self) -> usize;
}
