//! Offline stand-in for the `rand` 0.8 API surface this workspace uses.
//!
//! The repository must build without network access, so the crates.io `rand`
//! is replaced by this deterministic implementation: an xoshiro256++ PRNG
//! behind the `StdRng` name, the `Rng`/`SeedableRng` traits with the
//! `gen`/`gen_range`/`gen_bool` methods, and `seq::SliceRandom::shuffle`.
//!
//! Streams are fully deterministic functions of the seed, which is the only
//! property the emulator relies on (every experiment is reproducible from a
//! single `u64` seed). The exact values differ from crates.io `StdRng` — no
//! workspace code depends on specific draws.

pub mod rngs {
    /// The standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64_seed(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the xoshiro state, as
            // recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let mut s = [next(), next(), next(), next()];
            if s == [0, 0, 0, 0] {
                s = [0xDEAD_BEEF, 1, 2, 3];
            }
            StdRng { s }
        }

        /// The raw xoshiro256++ state, for checkpoint/restore of a stream
        /// mid-run. Restoring via [`StdRng::from_state`] continues the
        /// stream exactly where [`StdRng::state`] observed it.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by [`StdRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        pub(crate) fn next(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.next()
        }
    }
}

/// Low-level entropy source.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64_seed(seed)
    }
}

/// Types samplable uniformly from all 64-bit entropy (`rng.gen::<T>()`).
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by `rng.gen_range(range)`.
pub trait SampleRange<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Rejection-free (modulo-bias-negligible) integer sampling helper over an
/// inclusive span of size `span` (0 means the full 2^64 span).
fn sample_span<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Lemire-style widening multiply keeps the draw unbiased enough for
    // simulation seeding; exact uniformity is not load-bearing here.

    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(sample_span(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128 + 1) as u64;
                start.wrapping_add(sample_span(rng, span) as $t)
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        start + f64::sample(rng) * (end - start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (f64::sample(rng) as f32) * (self.end - self.start)
    }
}

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Samples a value of `T` from its full uniform distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use crate::RngCore;

    /// Slice operations driven by a generator.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::sample_span(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[crate::sample_span(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..10);
            assert!((3..10).contains(&x));
            let y = rng.gen_range(0.25f64..=0.5);
            assert!((0.25..=0.5).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 100-element shuffle virtually never fixes all points"
        );
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits {hits}");
    }
}
