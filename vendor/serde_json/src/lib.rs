//! Offline stand-in for the parts of `serde_json` this workspace uses: the
//! dynamic [`Value`] type, [`from_str`] parsing, and index-based access.
//!
//! Serialisation is *not* provided — producers in this workspace (e.g.
//! `mn_bench::report`) render JSON by hand — but parsing is real, so tests
//! can verify that emitted documents are well formed.

use std::fmt;
use std::ops::Index;

/// A parsed JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The bool if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&Value::Null)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(v) => v.get(idx).unwrap_or(&Value::Null),
            _ => &Value::Null,
        }
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    at: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for Error {}

/// Parses a JSON document.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("bad \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let v = from_str(
            r#"{"name": "fig4", "ok": true, "series": [{"points": [[1, 2.5], [3, -4e2]]}, null]}"#,
        )
        .unwrap();
        assert_eq!(v["name"], "fig4");
        assert_eq!(v["ok"], true);
        assert_eq!(v["series"].as_array().unwrap().len(), 2);
        assert_eq!(v["series"][0]["points"][1][1], -400.0);
        assert_eq!(v["series"][1], Value::Null);
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn parses_escapes() {
        let v = from_str(r#"{"s": "a\"b\\c\ndA"}"#).unwrap();
        assert_eq!(v["s"], "a\"b\\c\ndA");
    }

    #[test]
    fn rejects_malformed() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("[1] trailing").is_err());
        assert!(from_str("'single'").is_err());
    }
}
