//! Offline stand-in for the `criterion` API surface this workspace's benches
//! use. It actually measures: each benchmark runs a warm-up pass, then a
//! timed pass, and the mean wall-clock time per iteration is printed as
//!
//! ```text
//! bench_name              123.45 ns/iter (N iters)
//! ```
//!
//! Statistical analysis (outlier rejection, regressions, HTML reports) is out
//! of scope — the numbers are for PR-to-PR trajectory tracking, which only
//! needs a stable mean on quiet hardware.

use std::time::{Duration, Instant};

/// How to batch per-iteration setup state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The per-benchmark measurement driver.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    mean_ns: f64,
    iters: u64,
    measure_for: Duration,
}

impl Bencher {
    fn new(measure_for: Duration) -> Self {
        Bencher {
            mean_ns: f64::NAN,
            iters: 0,
            measure_for,
        }
    }

    /// Benchmarks `routine` back to back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate a single-iteration cost.
        let start = Instant::now();
        std::hint::black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let target = self
            .measure_for
            .as_nanos()
            .checked_div(once.as_nanos())
            .unwrap_or(1)
            .clamp(1, 5_000_000) as u64;
        let start = Instant::now();
        for _ in 0..target {
            std::hint::black_box(routine());
        }
        let total = start.elapsed();
        self.iters = target;
        self.mean_ns = total.as_nanos() as f64 / target as f64;
    }

    /// Benchmarks `routine` over fresh state from `setup`, excluding the
    /// setup cost from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        std::hint::black_box(routine(input));
        let once = start.elapsed().max(Duration::from_nanos(20));
        let target = self
            .measure_for
            .as_nanos()
            .checked_div(once.as_nanos())
            .unwrap_or(1)
            .clamp(1, 1_000_000) as u64;
        let inputs: Vec<I> = (0..target).map(|_| setup()).collect();
        let mut measured = Duration::ZERO;
        for input in inputs {
            let start = Instant::now();
            std::hint::black_box(routine(input));
            measured += start.elapsed();
        }
        self.iters = target;
        self.mean_ns = measured.as_nanos() as f64 / target as f64;
    }
}

fn report(name: &str, b: &Bencher) {
    let (value, unit) = if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "us")
    } else {
        (b.mean_ns, "ns")
    };
    println!("{name:<48} {value:>10.2} {unit}/iter ({} iters)", b.iters);
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Registers and runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        let mut b = Bencher::new(self.criterion.measure_for);
        f(&mut b);
        report(&name, &b);
        self
    }

    /// Accepted for API compatibility; the stand-in sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure_for = d.min(Duration::from_secs(2));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep the whole suite to seconds: each benchmark measures for a
        // fixed slice of wall time after one warm-up iteration.
        Criterion {
            measure_for: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.measure_for);
        f(&mut b);
        report(id, &b);
        self
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Accepted for API compatibility with `criterion_group!` configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test --benches` passes
            // test-harness flags. Only run measurements under `cargo bench`
            // (or a bare invocation) so `cargo test` stays fast.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.mean_ns.is_finite());
        assert!(b.iters >= 1);
    }

    #[test]
    fn batched_excludes_setup() {
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter_batched(
            || vec![0u8; 64],
            |v| std::hint::black_box(v.len()),
            BatchSize::SmallInput,
        );
        assert!(b.mean_ns.is_finite());
    }
}
