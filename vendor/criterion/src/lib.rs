//! Offline stand-in for the `criterion` API surface this workspace's benches
//! use. It actually measures: each benchmark runs a warm-up pass, then a
//! timed pass, and the mean wall-clock time per iteration is printed as
//!
//! ```text
//! bench_name              123.45 ns/iter (N iters)
//! ```
//!
//! Statistical analysis (outlier rejection, regressions, HTML reports) is out
//! of scope — the numbers are for PR-to-PR trajectory tracking, which only
//! needs a stable mean on quiet hardware.

use std::time::{Duration, Instant};

/// How to batch per-iteration setup state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// The per-benchmark measurement driver.
pub struct Bencher {
    /// Mean nanoseconds per iteration, filled in by `iter`/`iter_batched`.
    mean_ns: f64,
    iters: u64,
    measure_for: Duration,
}

impl Bencher {
    fn new(measure_for: Duration) -> Self {
        Bencher {
            mean_ns: f64::NAN,
            iters: 0,
            measure_for,
        }
    }

    /// Upper bound on iterations run between clock reads. The chunk grows
    /// geometrically from 1 to this, so ms-scale routines hit the deadline
    /// check after every iteration while ns-scale routines amortise the
    /// `Instant::now` cost. Measuring against a wall-clock deadline (rather
    /// than a count precomputed from one warm-up call) keeps every benchmark
    /// inside the same measurement window — stateful benches often have a
    /// degenerate-cheap first iteration that would wildly overshoot a
    /// precomputed count.
    const MAX_CHUNK: u64 = 64;
    /// Hard cap on iterations per benchmark, for sub-nanosecond routines.
    const MAX_ITERS: u64 = 5_000_000;

    /// Benchmarks `routine` back to back until the measurement budget is
    /// spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up.
        std::hint::black_box(routine());
        let start = Instant::now();
        let mut iters = 0u64;
        let mut chunk = 1u64;
        loop {
            for _ in 0..chunk {
                std::hint::black_box(routine());
            }
            iters += chunk;
            if start.elapsed() >= self.measure_for || iters >= Self::MAX_ITERS {
                break;
            }
            chunk = (chunk * 2).min(Self::MAX_CHUNK);
        }
        let total = start.elapsed();
        self.iters = iters;
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
    }

    /// Benchmarks `routine` over fresh state from `setup`, excluding the
    /// setup cost from the measurement. Inputs are generated chunk by chunk
    /// until the measurement budget is spent.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        // Warm up.
        std::hint::black_box(routine(setup()));
        let mut measured = Duration::ZERO;
        let mut iters = 0u64;
        let mut chunk = 1u64;
        loop {
            let inputs: Vec<I> = (0..chunk).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            measured += start.elapsed();
            iters += chunk;
            if measured >= self.measure_for || iters >= Self::MAX_ITERS {
                break;
            }
            chunk = (chunk * 2).min(Self::MAX_CHUNK);
        }
        self.iters = iters;
        self.mean_ns = measured.as_nanos() as f64 / iters as f64;
    }
}

/// One finished benchmark measurement, collected so harness `main`s can
/// serialise the whole run (e.g. as a `BENCH_<name>.json` artifact).
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function` or bare function name).
    pub name: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub mean_ns: f64,
    /// Iterations measured.
    pub iters: u64,
}

fn report(name: &str, b: &Bencher) -> BenchResult {
    let (value, unit) = if b.mean_ns >= 1e6 {
        (b.mean_ns / 1e6, "ms")
    } else if b.mean_ns >= 1e3 {
        (b.mean_ns / 1e3, "us")
    } else {
        (b.mean_ns, "ns")
    };
    println!("{name:<48} {value:>10.2} {unit}/iter ({} iters)", b.iters);
    BenchResult {
        name: name.to_string(),
        mean_ns: b.mean_ns,
        iters: b.iters,
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Registers and runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        let mut b = Bencher::new(self.criterion.measure_for);
        f(&mut b);
        let result = report(&name, &b);
        self.criterion.results.push(result);
        self
    }

    /// Accepted for API compatibility; the stand-in sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.criterion.measure_for = d.min(Duration::from_secs(2));
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
pub struct Criterion {
    measure_for: Duration,
    results: Vec<BenchResult>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Keep the whole suite to seconds: each benchmark measures for a
        // fixed slice of wall time after one warm-up iteration.
        Criterion {
            measure_for: Duration::from_millis(300),
            results: Vec::new(),
        }
    }
}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.measure_for);
        f(&mut b);
        let result = report(id, &b);
        self.results.push(result);
        self
    }

    /// Takes the collected measurements out of the harness.
    pub fn take_results(&mut self) -> Vec<BenchResult> {
        std::mem::take(&mut self.results)
    }

    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        BenchmarkGroup {
            criterion: self,
            name,
        }
    }

    /// Accepted for API compatibility with `criterion_group!` configuration.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Returns `true` when the binary is being driven by `cargo test` rather
/// than `cargo bench` (the test harness passes `--test`), in which case
/// measurements should be skipped so `cargo test` stays fast.
pub fn invoked_as_test() -> bool {
    std::env::args().any(|a| a == "--test")
}

/// Declares a group of benchmark functions. The generated function runs the
/// group and returns its measurements so harness `main`s can serialise them.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() -> Vec<$crate::BenchResult> {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
            criterion.take_results()
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test --benches` passes
            // test-harness flags. Only run measurements under `cargo bench`
            // (or a bare invocation) so `cargo test` stays fast.
            if $crate::invoked_as_test() {
                return;
            }
            $(let _ = $group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter(|| std::hint::black_box(1 + 1));
        assert!(b.mean_ns.is_finite());
        assert!(b.iters >= 1);
    }

    #[test]
    fn batched_excludes_setup() {
        let mut b = Bencher::new(Duration::from_millis(10));
        b.iter_batched(
            || vec![0u8; 64],
            |v| std::hint::black_box(v.len()),
            BatchSize::SmallInput,
        );
        assert!(b.mean_ns.is_finite());
    }
}
