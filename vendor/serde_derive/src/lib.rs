//! Offline stand-in for `serde_derive`.
//!
//! The real serde ecosystem is not vendored in this repository (builds must
//! work without network access), and no crate in the workspace actually
//! serialises through serde — the derives only mark types as
//! serialisation-ready for future use. This proc macro therefore emits an
//! empty marker-trait impl per derive. If a type ever needs real
//! serialisation, replace the `vendor/serde*` crates with the crates.io
//! versions; no call sites change.

use proc_macro::{TokenStream, TokenTree};

/// Extracts `(name, generics)` from a `struct`/`enum` item, where `generics`
/// is the raw token text between `<` and its matching `>` (empty when the
/// type is not generic).
fn type_name_and_generics(input: TokenStream) -> (String, String) {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(id) = &tt {
            let kw = id.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("expected type name after `{kw}`, found {other:?}"),
                };
                let mut generics = String::new();
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        tokens.next();
                        let mut depth = 1usize;
                        for tt in tokens.by_ref() {
                            if let TokenTree::Punct(p) = &tt {
                                match p.as_char() {
                                    '<' => depth += 1,
                                    '>' => {
                                        depth -= 1;
                                        if depth == 0 {
                                            break;
                                        }
                                    }
                                    _ => {}
                                }
                            }
                            generics.push_str(&tt.to_string());
                            generics.push(' ');
                        }
                    }
                }
                return (name, generics);
            }
        }
    }
    panic!("serde derive: input is not a struct or enum");
}

fn marker_impl(input: TokenStream, trait_path: &str) -> TokenStream {
    let (name, generics) = type_name_and_generics(input);
    let code = if generics.is_empty() {
        format!("impl {trait_path} for {name} {{}}")
    } else {
        // Strip default values (`T = Foo`) which are not legal in impls, and
        // bound the simple single-ident type params. Sufficient for the
        // simple generic types this workspace derives on.
        let params: Vec<String> = split_top_level(&generics);
        let decl = params.join(", ");
        let args: Vec<String> = params
            .iter()
            .map(|p| p.split([':', '=']).next().unwrap_or(p).trim().to_string())
            .collect();
        format!(
            "impl<{decl}> {trait_path} for {name}<{}> {{}}",
            args.join(", ")
        )
    };
    code.parse().expect("generated marker impl parses")
}

/// Splits a generics token string on top-level commas.
fn split_top_level(generics: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut cur = String::new();
    for c in generics.chars() {
        match c {
            '<' | '(' | '[' => depth += 1,
            '>' | ')' | ']' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
                continue;
            }
            _ => {}
        }
        cur.push(c);
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Serialize")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl(input, "::serde::Deserialize")
}
