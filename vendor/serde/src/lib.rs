//! Offline stand-in for `serde`.
//!
//! This workspace builds without network access, so the real serde is not
//! available. Nothing in the workspace serialises through serde yet — the
//! `#[derive(Serialize, Deserialize)]` annotations mark types as
//! serialisation-ready — so marker traits are all that is required. Swapping
//! in the crates.io serde later requires no source changes outside `vendor/`.

/// Marker for types that can be serialised.
///
/// The crates.io trait's methods are intentionally omitted: no workspace
/// code calls them, and omitting them lets the derive emit an empty impl.
pub trait Serialize {}

/// Marker for types that can be deserialised.
pub trait Deserialize {}

pub use serde_derive::{Deserialize, Serialize};
