//! Offline stand-in for the `proptest` API surface this workspace's property
//! tests use: the [`proptest!`] macro, [`Strategy`] with `prop_map`, range
//! and tuple strategies, [`any`], `collection::vec`, and the `prop_assert*`
//! macros.
//!
//! Each test runs `ProptestConfig::cases` deterministic random cases (seeded
//! by the case index, so failures are reproducible). Unlike the crates.io
//! proptest there is no shrinking: a failing case reports its inputs via the
//! ordinary assertion message. That trade keeps the dependency buildable
//! offline; swapping the real proptest back in requires no test changes.

/// Deterministic generator driving the strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case; `case` indexes the run.
    pub fn deterministic(case: u64) -> Self {
        TestRng {
            state: 0x9E3779B97F4A7C15u64.wrapping_mul(case.wrapping_add(1)),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// Run-count configuration for a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values of `Self::Value`.
pub trait Strategy: Sized {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps drawn values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }
}

/// A strategy that always yields a clone of one value
/// (`proptest::strategy::Just` upstream, re-exported from the prelude).
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty strategy range");
                let span = (end as i128 - start as i128 + 1) as u64;
                start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.next_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// The canonical strategy for `T` ([`any`]).
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// One erased [`prop_oneof!`] arm: a weight and a draw closure.
pub type OneOfArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

/// A weighted union of strategies producing the same value type — the result
/// of [`prop_oneof!`]. Arms are erased to closures so heterogeneous strategy
/// types can share one union.
pub struct OneOf<V> {
    arms: Vec<OneOfArm<V>>,
    total: u64,
}

impl<V> OneOf<V> {
    /// Builds a union from `(weight, draw)` arms.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or every weight is zero.
    pub fn new(arms: Vec<OneOfArm<V>>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof needs at least one positive weight");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (weight, draw) in &self.arms {
            if pick < *weight as u64 {
                return draw(rng);
            }
            pick -= *weight as u64;
        }
        unreachable!("weighted pick below total always lands in an arm")
    }
}

/// Erases one [`prop_oneof!`] arm to a weighted draw closure.
pub fn oneof_arm<S: Strategy + 'static>(weight: u32, strategy: S) -> OneOfArm<S::Value> {
    (
        weight,
        Box::new(move |rng: &mut TestRng| strategy.generate(rng)),
    )
}

/// Picks among strategies, optionally weighted (`w => strategy`), matching
/// the crates.io `prop_oneof!` forms this workspace uses.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $($crate::oneof_arm($weight as u32, $strat)),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy producing vectors of values from `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start).max(1) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors whose length is drawn from `len` and whose elements are drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Asserts a property holds, reporting the failing case via panic.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts two values are equal within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts two values differ within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases as u64 {
                let mut __rng = $crate::TestRng::deterministic(case);
                $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
}

/// Declares property tests: each `fn name(x in strategy, ...) { ... }` runs
/// `cases` times over deterministic random inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Arbitrary, Just, OneOf, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1e3f64..1e3) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1e3..1e3).contains(&y));
        }

        #[test]
        fn tuples_and_maps_compose((a, b) in (0u64..5, 5u64..10).prop_map(|(a, b)| (a, b))) {
            prop_assert!(a < 5 && (5..10).contains(&b));
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u64..100, 1..20)) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn oneof_draws_from_every_arm(v in prop::collection::vec(
            prop_oneof![4 => 0u64..10, 1 => 1_000u64..1_010], 64..65,
        )) {
            prop_assert!(v.iter().all(|&x| x < 10 || (1_000..1_010).contains(&x)));
        }
    }

    #[test]
    fn oneof_respects_weights() {
        let strategy = prop_oneof![9 => 0u64..1, 1 => 100u64..101];
        let mut rng = crate::TestRng::deterministic(1);
        let draws: Vec<u64> = (0..1_000).map(|_| strategy.generate(&mut rng)).collect();
        let high = draws.iter().filter(|&&x| x == 100).count();
        assert!((50..200).contains(&high), "~10% expected, got {high}/1000");
    }

    #[test]
    fn cases_are_deterministic() {
        let draw = |case| {
            let mut rng = crate::TestRng::deterministic(case);
            (0u64..1000).generate(&mut rng)
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!((0..64).map(draw).collect::<Vec<_>>(), vec![draw(0); 64]);
    }
}
