//! Workspace umbrella crate.
//!
//! This crate exists so the repository-level `tests/` (cross-crate
//! integration and property tests) and `examples/` build as workspace
//! targets; all functionality lives in the `crates/` members. Start with the
//! [`modelnet`] façade crate.
