//! ACDC adaptive overlay reacting to injected delay changes.
//!
//! A small overlay self-organises over a transit–stub topology; midway
//! through the run the example raises the delay of a quarter of the links and
//! prints how the overlay's worst-case delay and cost evolve — the dynamic
//! the paper's Figure 12 shows.
//!
//! Run with: `cargo run --release -p mn-bench --example adaptive_overlay`

use mn_apps::acdc::summary;
use mn_apps::{AcdcConfig, AcdcNode};
use mn_dynamics::{FaultInjector, FaultKind, LinkPerturbation};
use mn_topology::generators::{transit_stub_topology, TransitStubParams};
use mn_topology::paths::{shortest_path, PathMetric};
use modelnet::{DistillationMode, Experiment, SimDuration, SimTime, VnId};

fn main() {
    let ts = transit_stub_topology(&TransitStubParams::sized_for(150, 29));
    let (mut runner, distilled) = Experiment::new(ts.topology.clone())
        .distillation(DistillationMode::HopByHop)
        .cores(1)
        .edge_nodes(6)
        .unconstrained_hardware()
        .seed(29)
        .build_with_distilled()
        .expect("experiment builds");
    let binding = runner.binding().clone();

    // 20 overlay members spread over the stub domains.
    let member_nodes: Vec<_> = ts
        .clients_by_domain
        .iter()
        .filter_map(|d| d.first().copied())
        .take(20)
        .collect();
    let members: Vec<VnId> = member_nodes
        .iter()
        .filter_map(|&n| binding.vn_at(n))
        .collect();
    let cost: Vec<Vec<f64>> = member_nodes
        .iter()
        .map(|&a| {
            member_nodes
                .iter()
                .map(|&b| {
                    shortest_path(&ts.topology, a, b, PathMetric::Latency)
                        .map(|p| p.hop_count() as f64)
                        .unwrap_or(f64::INFINITY)
                })
                .collect()
        })
        .collect();
    let config = AcdcConfig {
        members: members.clone(),
        root: members[0],
        delay_target_s: 1.5,
        probe_period: SimDuration::from_secs(5),
        probe_fanout: 4,
        cost,
        seed: 29,
    };
    for &vn in &members {
        runner.add_application(vn, Box::new(AcdcNode::new(vn, config.clone())));
    }

    let mut injector = FaultInjector::new(&distilled, 29);
    for step in 1..=8 {
        let t = step * 30;
        runner.run_until(SimTime::from_secs(t)).unwrap();
        if step == 4 {
            println!("-- injecting +0..25% delay on 25% of links --");
            for ev in injector.perturb(
                SimTime::from_secs(t),
                &LinkPerturbation {
                    fraction: 0.25,
                    kind: FaultKind::DelayIncrease {
                        min: 0.0,
                        max: 0.25,
                    },
                },
            ) {
                runner.emulator_mut().update_pipe_attrs(ev.pipe, ev.attrs);
            }
        }
        if step == 6 {
            println!("-- restoring original link delays --");
            for ev in injector.restore_all(SimTime::from_secs(t)) {
                runner.emulator_mut().update_pipe_attrs(ev.pipe, ev.attrs);
            }
        }
        let nodes: Vec<&AcdcNode> = members
            .iter()
            .filter_map(|&vn| runner.app_as::<AcdcNode>(vn))
            .collect();
        let (max_delay, attached) = summary::max_delay(nodes.iter().copied());
        println!(
            "t={:>4}s attached {:>2}/{} worst delay {:>7.1} ms tree cost {:>5.1}",
            t,
            attached,
            members.len(),
            max_delay * 1e3,
            summary::tree_cost(nodes.iter().copied())
        );
    }
}
