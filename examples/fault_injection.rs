//! Fault injection: watch TCP goodput react to a mid-run link failure and
//! recovery on a dumbbell topology.
//!
//! Run with: `cargo run --release -p mn-bench --example fault_injection`

use mn_distill::PipeAttrs;
use mn_topology::generators::{dumbbell_topology, DumbbellParams};
use modelnet::{DataRate, DistillationMode, Experiment, SimDuration, SimTime};

fn main() {
    let (topo, left, right) = dumbbell_topology(&DumbbellParams::default());
    let (mut runner, distilled) = Experiment::new(topo)
        .distillation(DistillationMode::HopByHop)
        .cores(1)
        .edge_nodes(2)
        .unconstrained_hardware()
        .seed(5)
        .build_with_distilled()
        .expect("experiment builds");
    let binding = runner.binding().clone();
    let src = binding.vn_at(left[0]).unwrap();
    let dst = binding.vn_at(right[0]).unwrap();
    let flow = runner.add_bulk_flow(src, dst, None, SimTime::ZERO);

    // The bottleneck is the first link of the dumbbell (pipes 0 and 1).
    let bottleneck = mn_distill::PipeId(0);
    let original = distilled.pipe(bottleneck).attrs;

    let mut last_acked = 0;
    for step in 1..=12u64 {
        let t = step * 2;
        runner.run_until(SimTime::from_secs(t)).unwrap();
        if t == 8 {
            println!("-- degrading the bottleneck to 1 Mb/s --");
            runner.emulator_mut().update_pipe_attrs(
                bottleneck,
                PipeAttrs {
                    bandwidth: DataRate::from_mbps(1),
                    ..original
                },
            );
        }
        if t == 16 {
            println!("-- restoring the bottleneck to 10 Mb/s --");
            runner
                .emulator_mut()
                .update_pipe_attrs(bottleneck, original);
        }
        let acked = runner.flow_bytes_acked(flow);
        let rate_mbps = (acked - last_acked) as f64 * 8.0 / 2.0 / 1e6;
        last_acked = acked;
        println!("t={t:>3}s goodput over last 2s: {rate_mbps:>5.2} Mb/s");
        let _ = SimDuration::from_secs(1);
    }
}
