//! CFS over a wide-area mesh: download a striped 1 MB file through Chord.
//!
//! Reproduces the structure of the paper's §5.1 case study at example scale:
//! 12 wide-area sites (the synthetic RON-like mesh), a CFS server on each,
//! and one client downloading a 1 MB file striped across the ring with a
//! configurable prefetch window.
//!
//! Run with: `cargo run --release -p mn-bench --example cfs_download [window_kb]`

use mn_apps::{CfsClient, CfsConfig, CfsServer, ChordRing};
use mn_topology::ron::{ron_mesh, RonMeshParams};
use modelnet::{DistillationMode, Experiment, SimDuration};

fn main() {
    let window_kb: u64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(40);

    let mesh = ron_mesh(&RonMeshParams::default());
    println!(
        "RON-like mesh: {} sites, {} end-to-end paths",
        mesh.sites.len(),
        mesh.topology.link_count()
    );
    let mut runner = Experiment::new(mesh.topology)
        .distillation(DistillationMode::HopByHop)
        .cores(1)
        .edge_nodes(12)
        .unconstrained_hardware()
        .seed(2002)
        .build()
        .expect("experiment builds");

    let vns = runner.vn_ids();
    let ring = ChordRing::new(vns.iter().copied());
    let config = CfsConfig {
        prefetch_window: window_kb * 1024,
        ..CfsConfig::default()
    };
    for (i, &vn) in vns.iter().enumerate() {
        if i == 0 {
            runner.add_application(vn, Box::new(CfsClient::new(vn, ring.clone(), config)));
        } else {
            runner.add_application(vn, Box::new(CfsServer::new(vn, ring.clone())));
        }
    }

    runner.run_for(SimDuration::from_secs(120)).unwrap();
    let client = runner
        .app_as::<CfsClient>(vns[0])
        .expect("client installed");
    println!(
        "prefetch window {window_kb} KB: {} of {} blocks in {:?}",
        client.blocks_completed(),
        config.block_count(),
        client.download_time()
    );
    match client.download_speed_kbytes_per_sec() {
        Some(speed) => println!("download speed: {speed:.1} kB/s"),
        None => println!("download did not finish"),
    }
}
