//! Live topology dynamics: a link failover with CBR cross traffic, driven
//! entirely by a declarative schedule.
//!
//! Two disjoint paths join the clients — a fast 10 Mb/s primary and a slow
//! 2 Mb/s detour. The schedule fails the primary mid-run (the emulation
//! reroutes incrementally; in-flight packets drain on their old route),
//! restores it later, and along the way runs a CBR cross-traffic episode on
//! the primary's second hop. The TCP flow's goodput timeline shows all
//! three regimes.
//!
//! Run with: `cargo run --release --example link_failover`

use mn_topology::{LinkAttrs, NodeKind, Topology};
use modelnet::{CbrConfig, DataRate, DistillationMode, Experiment, Schedule, SimDuration, SimTime};

fn main() {
    // Create: clients a, b joined by a fast path (via r1) and a detour
    // (via r2).
    let mut topo = Topology::new();
    let a = topo.add_node(NodeKind::Client);
    let b = topo.add_node(NodeKind::Client);
    let r1 = topo.add_node(NodeKind::Stub);
    let r2 = topo.add_node(NodeKind::Stub);
    let fast = LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(1));
    let slow = LinkAttrs::new(DataRate::from_mbps(2), SimDuration::from_millis(6));
    topo.add_link(a, r1, fast).unwrap();
    topo.add_link(
        r1,
        b,
        LinkAttrs::new(DataRate::from_mbps(10), SimDuration::from_millis(2)),
    )
    .unwrap();
    topo.add_link(a, r2, slow).unwrap();
    topo.add_link(
        r2,
        b,
        LinkAttrs::new(DataRate::from_mbps(2), SimDuration::from_millis(7)),
    )
    .unwrap();

    // The schedule speaks distilled PipeIds; hop-by-hop distillation keeps
    // them 1:1 with target links, so look them up on an identical
    // distillation.
    let d = modelnet::distill(&topo, DistillationMode::HopByHop);
    let duplex = |x, y| (d.find_pipe(x, y).unwrap(), d.find_pipe(y, x).unwrap());
    let (ar1, r1a) = duplex(a, r1);
    let (r1b, _) = duplex(r1, b);
    let schedule = Schedule::new()
        // t=4s: the primary's access link fails — the route falls back to
        // the 2 Mb/s detour without restarting anything.
        .duplex_down(SimTime::from_secs(4), ar1, r1a)
        // t=8s: the link recovers; traffic returns to the fast path.
        .duplex_up(SimTime::from_secs(8), ar1, r1a)
        // t=10s..14s: 6 Mb/s of CBR cross traffic on the restored primary's
        // second hop — the flow now competes for the remaining headroom.
        .cbr_start(
            SimTime::from_secs(10),
            r1b,
            CbrConfig::new(DataRate::from_mbps(6), mn_util::ByteSize::from_bytes(1000)),
        )
        .cbr_stop(SimTime::from_secs(14), r1b);

    let mut runner = Experiment::new(topo)
        .distillation(DistillationMode::HopByHop)
        .cores(1)
        .edge_nodes(2)
        .unconstrained_hardware()
        .seed(7)
        .with_schedule(schedule)
        .build()
        .expect("experiment builds");
    let binding = runner.binding().clone();
    let src = binding.vn_at(a).unwrap();
    let dst = binding.vn_at(b).unwrap();
    let flow = runner.add_bulk_flow(src, dst, None, SimTime::ZERO);

    println!("t[s]  goodput[Mb/s]  regime");
    let mut last_acked = 0u64;
    for step in 1..=16u64 {
        runner.run_until(SimTime::from_secs(step)).unwrap();
        let acked = runner.flow_bytes_acked(flow);
        let mbps = (acked - last_acked) as f64 * 8.0 / 1e6;
        last_acked = acked;
        let regime = match step {
            1..=4 => "fast path",
            5..=8 => "FAILED OVER to the 2 Mb/s detour",
            9..=10 => "recovered",
            11..=14 => "competing with 6 Mb/s CBR cross traffic",
            _ => "clear again",
        };
        println!("{step:>4}  {mbps:>13.2}  {regime}");
    }
    let stats = runner.backend().total_stats();
    println!(
        "\n{} packets delivered, {} CBR packets injected, schedule {}",
        stats.packets_delivered,
        stats.cbr_injected,
        if runner.dynamics().unwrap().finished() {
            "fully applied"
        } else {
            "still pending"
        }
    );
}
