//! Flash crowd: a million bulk clients modelled at flow level, one
//! packet-accurate foreground transfer riding the residual.
//!
//! The hybrid model's division of labour in one scene: a server behind a
//! 10 Mb/s access spoke serves a long-running TCP download (packet-level,
//! full transport fidelity) while a flash crowd of 1 048 576 bulk clients —
//! 32 fluid flows of 32 768 modelled clients each — arrives, swells past
//! the spoke's capacity, and departs. The crowd is a rate process solved
//! by weighted max-min fair share at each epoch; its share of every pipe
//! shows up to the foreground's packets as consumed capacity, so the
//! download's goodput tracks the residual bandwidth phase by phase without
//! a single crowd packet being scheduled.
//!
//! Run with: `cargo run --release -p mn-bench --example flash_crowd`

use mn_topology::generators::{star_topology, StarParams};
use modelnet::{DataRate, DistillationMode, Experiment, SimDuration, SimTime};

/// Fluid flows standing in for the crowd.
const CROWD_FLOWS: u64 = 32;
/// Modelled clients behind each flow (32 × 32 768 = 1 048 576).
const CLIENTS_PER_FLOW: u32 = 32_768;
/// Virtual seconds per phase.
const PHASE_SECS: u64 = 4;

fn main() {
    // 40 clients on the default 10 Mb/s, 5 ms spokes: one server, one
    // foreground client, 32 crowd sources.
    let topology = star_topology(&StarParams {
        clients: 40,
        ..StarParams::default()
    });
    let mut runner = Experiment::new(topology)
        .distillation(DistillationMode::HopByHop)
        .cores(1)
        .edge_nodes(4)
        .unconstrained_hardware()
        .seed(7)
        .build()
        .expect("experiment builds");
    let vns = runner.vn_ids();
    let (server, fg_client) = (vns[0], vns[1]);
    let crowd_src = |i: u64| vns[2 + i as usize];

    // The packet-accurate foreground: an unbounded netperf-style TCP
    // download running for the whole experiment.
    let flow = runner.add_bulk_flow(fg_client, server, None, SimTime::ZERO);

    let mut acked_at_phase_start = 0u64;
    let mut phase = |runner: &mut modelnet::Runner, label: &str| {
        runner.run_for(SimDuration::from_secs(PHASE_SECS)).unwrap();
        let acked = runner.flow_bytes_acked(flow);
        let fg_mbps = (acked - acked_at_phase_start) as f64 * 8.0 / (PHASE_SECS as f64 * 1e6);
        acked_at_phase_start = acked;
        let crowd_bps: u64 = (0..CROWD_FLOWS)
            .filter_map(|tag| runner.fluid_flow_rate(tag))
            .map(|r| r.as_bps())
            .sum();
        println!(
            "{label:<28} foreground {fg_mbps:>5.2} Mb/s   crowd share {:>5.2} Mb/s   \
             modelled clients {:>7}",
            crowd_bps as f64 / 1e6,
            runner.emulator().fluid().modelled_clients(),
        );
    };

    phase(&mut runner, "baseline (no crowd)");

    // The crowd arrives: 6.4 Mb/s aggregate offered against the server's
    // 10 Mb/s spoke — the foreground keeps the 3.6 Mb/s residual.
    for tag in 0..CROWD_FLOWS {
        assert!(runner.add_fluid_flow(
            tag,
            crowd_src(tag),
            server,
            DataRate::from_kbps(200),
            CLIENTS_PER_FLOW,
        ));
    }
    phase(&mut runner, "crowd arrives (6.4 Mb/s)");

    // The crowd swells to 9 Mb/s offered; the download is squeezed to the
    // ~1 Mb/s residual but stays packet-accurate throughout.
    for tag in 0..CROWD_FLOWS {
        assert!(runner.resize_fluid_flow(tag, DataRate::from_kbps(280), CLIENTS_PER_FLOW));
    }
    phase(&mut runner, "crowd swells (9 Mb/s)");

    // The crowd drains; the residual — and the download — recover.
    for tag in 0..CROWD_FLOWS {
        assert!(runner.remove_fluid_flow(tag));
    }
    phase(&mut runner, "crowd departs");

    // The event economy: the crowd moved gigabytes without one scheduled
    // packet — only the foreground paid per-packet cost.
    let stats = runner.emulator().total_stats();
    println!(
        "\ncrowd traffic modelled at flow level: {:.1} MB across the pipes it crossed \
         (~{} MTU packets a pure-packet run would have scheduled)",
        stats.fluid_modelled_bytes as f64 / 1e6,
        stats.fluid_modelled_bytes / 1_500,
    );
    println!(
        "packets actually scheduled: {} admitted, {} delivered — all foreground",
        stats.packets_admitted, stats.packets_delivered
    );
}
