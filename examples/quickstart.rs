//! Quickstart: emulate a small star network and run one TCP transfer.
//!
//! This walks the five ModelNet phases explicitly: a synthetic topology
//! (Create), hop-by-hop distillation (Distill), a single core (Assign), VNs
//! bound to two edge machines (Bind), and a 256 KB netperf-style transfer
//! between two VNs (Run).
//!
//! Run with: `cargo run --release -p mn-bench --example quickstart`

use mn_topology::generators::{star_topology, StarParams};
use modelnet::{ByteSize, DistillationMode, Experiment, SimDuration, SimTime};

fn main() {
    // Create: 8 clients on 10 Mb/s, 5 ms spokes.
    let topology = star_topology(&StarParams {
        clients: 8,
        ..StarParams::default()
    });
    println!(
        "target topology: {} nodes, {} links",
        topology.node_count(),
        topology.link_count()
    );

    // Distill + Assign + Bind.
    let mut runner = Experiment::new(topology)
        .distillation(DistillationMode::HopByHop)
        .cores(1)
        .edge_nodes(2)
        .seed(42)
        .build()
        .expect("experiment builds");
    let vns = runner.vn_ids();
    println!(
        "bound {} VNs across {} edge nodes",
        vns.len(),
        runner.binding().edge_count()
    );

    // Run: one 256 KB transfer.
    let flow = runner.add_bulk_flow(vns[0], vns[1], Some(ByteSize::from_kb(256)), SimTime::ZERO);
    runner.run_for(SimDuration::from_secs(10)).unwrap();

    match runner.flow_completed_at(flow) {
        Some(done) => println!(
            "transfer completed at {done} ({:.1} kbit/s goodput over two 10 Mb/s hops)",
            runner.flow_goodput_kbps(flow)
        ),
        None => println!("transfer did not complete within 10 virtual seconds"),
    }
    let stats = runner.emulator().total_stats();
    println!(
        "core stats: {} packets admitted, {} delivered, {} physical drops",
        stats.packets_admitted,
        stats.packets_delivered,
        stats.physical_drops()
    );
    let accuracy = runner.emulator().cores()[0].accuracy();
    println!(
        "emulation accuracy: mean error {:.1} us over {} deliveries (max per-hop {:.1} us)",
        accuracy.mean_error_us(),
        accuracy.delivered(),
        accuracy.max_per_hop_error().as_micros_f64()
    );
}
