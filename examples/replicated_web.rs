//! Replicated web service over a transit–stub topology.
//!
//! Clients in several stub domains play back a synthetic request trace
//! against one or more server replicas; the example prints the latency
//! distribution for each replica count, the shape Figure 11 of the paper
//! reports.
//!
//! Run with: `cargo run --release -p mn-bench --example replicated_web`

use mn_apps::{WebClient, WebServer, WorkloadTrace};
use mn_topology::generators::{transit_stub_topology, TransitStubParams};
use modelnet::{DistillationMode, Experiment, SimDuration, VnId};

fn run_with_replicas(replicas: usize) {
    let ts = transit_stub_topology(&TransitStubParams::sized_for(160, 17));
    let mut runner = Experiment::new(ts.topology.clone())
        .distillation(DistillationMode::HopByHop)
        .cores(1)
        .edge_nodes(6)
        .unconstrained_hardware()
        .seed(17)
        .build()
        .expect("experiment builds");
    let binding = runner.binding().clone();

    let n = ts.clients_by_domain.len();
    let server_vns: Vec<VnId> = [n / 8, 3 * n / 8, 7 * n / 8]
        .iter()
        .take(replicas)
        .filter_map(|&d| ts.clients_by_domain[d].first())
        .filter_map(|&node| binding.vn_at(node))
        .collect();
    for &s in &server_vns {
        runner.add_application(s, Box::new(WebServer::new()));
    }

    let trace = WorkloadTrace::synthetic(SimDuration::from_secs(30), 40.0, 12_000.0, 17);
    let mut clients = Vec::new();
    for (site, &d) in [0, n / 4, n / 2, 3 * n / 4].iter().enumerate() {
        for &node in ts.clients_by_domain[d].iter().take(5) {
            if let Some(vn) = binding.vn_at(node) {
                if !server_vns.contains(&vn) {
                    clients.push((vn, site));
                }
            }
        }
    }
    let parts = trace.split(clients.len());
    for (i, &(vn, site)) in clients.iter().enumerate() {
        let server = server_vns[site % server_vns.len()];
        runner.add_application(vn, Box::new(WebClient::new(server, parts[i].clone())));
    }

    runner.run_for(SimDuration::from_secs(45)).unwrap();

    let mut latencies: Vec<f64> = clients
        .iter()
        .filter_map(|&(vn, _)| runner.app_as::<WebClient>(vn))
        .flat_map(|c| c.latencies().iter().copied())
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p) as usize];
    println!(
        "{replicas} replica(s): {} requests, median {:.0} ms, p90 {:.0} ms, p99 {:.0} ms",
        latencies.len(),
        pct(0.5) * 1e3,
        pct(0.9) * 1e3,
        pct(0.99) * 1e3
    );
}

fn main() {
    for replicas in 1..=3 {
        run_with_replicas(replicas);
    }
}
